"""Deterministic alerting over the SLO, regression, and breaker signals.

The rule engine is deliberately boring: an :class:`AlertRule` maps an
evaluation context (built by ``admin.SloMonitor`` from the tracker's
statuses, the regression detector, and the resilient executor's
breakers) to the set of *active instances* — ``{key: context}`` — and
the :class:`AlertManager` diffs that set against what is currently
firing.  New keys **fire**, vanished keys **resolve**, and every
transition lands in a bounded ring buffer with its severity and
structured context.  Keys are iterated sorted and time comes off the
shared virtual clock, so two identical runs produce identical alert
histories.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.simtime import SimClock

#: severities, least to most urgent
SEVERITIES = ("info", "warning", "critical")

#: an evaluation pass's input: whatever the monitor snapshots
EvaluationContext = dict[str, Any]

#: a rule's output: active instance key -> structured context
ActiveInstances = dict[str, dict[str, Any]]


@dataclass(frozen=True)
class AlertRule:
    """One named condition evaluated every alerting pass."""

    name: str
    condition: Callable[[EvaluationContext], ActiveInstances]
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; pick from {SEVERITIES}"
            )


@dataclass
class Alert:
    """One rule instance's lifecycle: fired, maybe later resolved."""

    rule: str
    key: str
    severity: str
    state: str  # "firing" | "resolved"
    fired_at_ms: float
    resolved_at_ms: float | None = None
    context: dict[str, Any] = field(default_factory=dict)

    @property
    def active(self) -> bool:
        return self.state == "firing"

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "key": self.key,
            "severity": self.severity,
            "state": self.state,
            "fired_at_ms": self.fired_at_ms,
            "resolved_at_ms": self.resolved_at_ms,
            "context": dict(self.context),
        }


class AlertManager:
    """Holds the rules, tracks firing instances, keeps the history ring.

    :meth:`evaluate` is idempotent for an unchanged context: an
    already-firing instance refreshes its context but produces no new
    transition, so polling the manager on every console refresh is
    free of duplicate alerts.
    """

    def __init__(self, clock: SimClock, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.clock = clock
        self.rules: list[AlertRule] = []
        self._firing: dict[tuple[str, str], Alert] = {}
        self.history: deque[Alert] = deque(maxlen=capacity)
        self.total_fired = 0
        self.total_resolved = 0

    def add_rule(self, rule: AlertRule) -> AlertRule:
        if any(existing.name == rule.name for existing in self.rules):
            raise ValueError(f"duplicate alert rule name {rule.name!r}")
        self.rules.append(rule)
        return rule

    # -- the evaluation pass --------------------------------------------------

    def evaluate(self, context: EvaluationContext) -> list[Alert]:
        """Run every rule; returns this pass's fire/resolve transitions."""
        transitions: list[Alert] = []
        now = self.clock.now
        for rule in self.rules:
            active = rule.condition(context) or {}
            for key in sorted(active):
                handle = (rule.name, key)
                alert = self._firing.get(handle)
                if alert is None:
                    alert = Alert(
                        rule=rule.name,
                        key=key,
                        severity=rule.severity,
                        state="firing",
                        fired_at_ms=now,
                        context=dict(active[key]),
                    )
                    self._firing[handle] = alert
                    self.history.append(alert)
                    self.total_fired += 1
                    transitions.append(alert)
                else:
                    alert.context.update(active[key])
            stale = [
                handle for handle in sorted(self._firing)
                if handle[0] == rule.name and handle[1] not in active
            ]
            for handle in stale:
                alert = self._firing.pop(handle)
                alert.state = "resolved"
                alert.resolved_at_ms = now
                self.total_resolved += 1
                transitions.append(alert)
        return transitions

    # -- reading -------------------------------------------------------------

    def active(self, severity: str | None = None) -> list[Alert]:
        """Currently firing alerts, sorted by (rule, key)."""
        alerts = [
            self._firing[handle] for handle in sorted(self._firing)
        ]
        if severity is not None:
            alerts = [a for a in alerts if a.severity == severity]
        return alerts

    def summary(self) -> dict[str, Any]:
        return {
            "rules": len(self.rules),
            "firing": len(self._firing),
            "total_fired": self.total_fired,
            "total_resolved": self.total_resolved,
            "history_retained": len(self.history),
        }


# -- the built-in rules ------------------------------------------------------


def slo_breach_rule(name: str = "slo_breach",
                    severity: str = "critical") -> AlertRule:
    """Fires per breached policy (non-empty window, objective missed)."""

    def condition(context: EvaluationContext) -> ActiveInstances:
        return {
            status.policy.name: {
                "objective": status.policy.objective,
                "compliance": status.compliance,
                "target": status.policy.target,
                "observed_ms": status.observed_ms,
                "window_queries": status.window_queries,
            }
            for status in context.get("slo_statuses", ())
            if status.window_queries > 0 and not status.met
        }

    return AlertRule(name, condition, severity)


def error_budget_rule(threshold: float = 0.25,
                      name: str = "error_budget_low",
                      severity: str = "warning") -> AlertRule:
    """Fires when a policy's remaining error budget dips below ``threshold``."""

    def condition(context: EvaluationContext) -> ActiveInstances:
        return {
            status.policy.name: {
                "budget_remaining_fraction": status.budget_remaining_fraction,
                "budget_burned": status.budget_burned,
                "budget_allowed": status.budget_allowed,
                "threshold": threshold,
            }
            for status in context.get("slo_statuses", ())
            if status.window_queries > 0
            and status.budget_remaining_fraction < threshold
        }

    return AlertRule(name, condition, severity)


def latency_regression_rule(name: str = "latency_regression",
                            severity: str = "warning") -> AlertRule:
    """Fires per regressed ``query_hash`` with the suspected causes."""

    def condition(context: EvaluationContext) -> ActiveInstances:
        return {
            regression.query_hash: {
                "baseline_ms": regression.baseline_ms,
                "current_ms": regression.current_ms,
                "factor": regression.factor,
                "suspected_causes": list(regression.suspected_causes),
                **regression.context,
            }
            for regression in context.get("regressions", ())
        }

    return AlertRule(name, condition, severity)


def breaker_open_rule(name: str = "breaker_open",
                      severity: str = "critical") -> AlertRule:
    """Fires per source whose circuit breaker is not closed."""

    def condition(context: EvaluationContext) -> ActiveInstances:
        return {
            source: {"state": state}
            for source, state in context.get("breakers", {}).items()
            if state != "closed"
        }

    return AlertRule(name, condition, severity)


def overload_shedding_rule(name: str = "overload_shedding",
                           severity: str = "warning") -> AlertRule:
    """Fires while the brownout ladder is off its NORMAL rung.

    The context's ``overload`` key is the
    :meth:`~repro.resilience.overload.LoadShedder.snapshot` dict the
    monitor collects from the engine's shedder.  The instance key is
    fixed (``"fleet"``) so walking between degraded rungs updates the
    firing alert's context instead of churning fire/resolve pairs; the
    alert resolves only when the ladder returns to NORMAL.
    """

    def condition(context: EvaluationContext) -> ActiveInstances:
        shedder = context.get("overload")
        if not shedder or shedder.get("level", 0) <= 0:
            return {}
        return {
            "fleet": {
                "level": shedder["level"],
                "level_name": shedder.get("level_name", ""),
                "budget_remaining": shedder.get("budget_remaining"),
                "shed_queries": shedder.get("shed_queries", 0),
            }
        }

    return AlertRule(name, condition, severity)


def default_rules() -> list[AlertRule]:
    """The stock rule set the monitor installs when given none."""
    return [
        slo_breach_rule(),
        error_budget_rule(),
        latency_regression_rule(),
        breaker_open_rule(),
        overload_shedding_rule(),
    ]

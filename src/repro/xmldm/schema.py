"""The structured-schema layer: record types and the element bridge.

Relational and hierarchical sources describe their data with
:class:`RecordType`; the functions here convert losslessly between the
structured representation (:class:`~repro.xmldm.values.Record`,
:class:`~repro.xmldm.values.Collection`) and element trees, so the same
physical algebra processes both shapes (paper, section 3.1).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.xmldm.nodes import Element, Text
from repro.xmldm.values import NULL, Collection, Null, Record

#: Names of atomic field types understood by :class:`Field`.
ATOMIC_TYPE_NAMES = ("string", "number", "boolean", "date", "datetime", "any")


@dataclass(frozen=True)
class Field:
    """One field of a record type."""

    name: str
    type: str = "any"
    nullable: bool = True

    def __post_init__(self) -> None:
        if self.type not in ATOMIC_TYPE_NAMES:
            raise ValueError(f"unknown field type {self.type!r}")


@dataclass(frozen=True)
class RecordType:
    """A named, ordered set of fields (a relation schema in model terms)."""

    name: str
    fields: tuple[Field, ...] = ()

    @classmethod
    def of(cls, type_name: str, /, **field_types: str) -> "RecordType":
        """Shorthand: ``RecordType.of('customer', id='number', name='string')``.

        The positional-only first argument keeps ``name`` free for use as
        a field name.
        """
        return cls(
            type_name,
            tuple(Field(fname, ftype) for fname, ftype in field_types.items()),
        )

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(name)

    def validate(self, record: Record) -> list[str]:
        """Return a list of violations (empty when the record conforms)."""
        problems: list[str] = []
        for f in self.fields:
            value = record.get(f.name, NULL)
            if isinstance(value, Null):
                if not f.nullable:
                    problems.append(f"field {f.name!r} is not nullable")
                continue
            if f.type != "any" and _atomic_typename(value) != f.type:
                problems.append(
                    f"field {f.name!r}: expected {f.type}, got {_atomic_typename(value)}"
                )
        extra = set(record.fields) - set(self.field_names)
        for name in sorted(extra):
            problems.append(f"unexpected field {name!r}")
        return problems


def _atomic_typename(value: Any) -> str:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, datetime.datetime):
        return "datetime"
    if isinstance(value, datetime.date):
        return "date"
    return "other"


# -- element bridge ---------------------------------------------------------


def atomic_to_text(value: Any) -> str:
    """Canonical text form of an atomic value (dates in ISO form)."""
    if isinstance(value, Null):
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    return str(value)


def text_to_atomic(text: str, type_name: str) -> Any:
    """Parse canonical text back into an atomic of ``type_name``."""
    if type_name == "string" or type_name == "any":
        return text
    if text == "":
        return NULL
    if type_name == "number":
        number = float(text)
        return int(number) if number.is_integer() else number
    if type_name == "boolean":
        return text == "true"
    if type_name == "date":
        return datetime.date.fromisoformat(text)
    if type_name == "datetime":
        return datetime.datetime.fromisoformat(text)
    raise ValueError(f"unknown type {type_name!r}")


def record_to_element(record: Record, tag: str = "record") -> Element:
    """Render a record as ``<tag><field>value</field>...</tag>``.

    Nested records and collections recurse; NULL fields become empty
    elements with a ``null="true"`` attribute so the reverse direction
    can distinguish NULL from empty string.
    """
    element = Element(tag)
    for name, value in record.items():
        element.append(_value_to_element(value, name))
    return element


def collection_to_element(collection: Collection, tag: str = "collection", item_tag: str = "record") -> Element:
    """Render a collection as ``<tag><item/>...</tag>``."""
    element = Element(tag)
    for item in collection:
        element.append(_value_to_element(item, item_tag))
    return element


def _value_to_element(value: Any, tag: str) -> Element:
    if isinstance(value, Record):
        return record_to_element(value, tag)
    if isinstance(value, Collection):
        return collection_to_element(value, tag)
    if isinstance(value, Element):
        wrapper = Element(tag)
        wrapper.append(value.copy())
        return wrapper
    child = Element(tag)
    if isinstance(value, Null):
        child.attributes["null"] = "true"
    else:
        text = atomic_to_text(value)
        if text:
            child.append(Text(text))
    return child


def element_to_record(element: Element, record_type: RecordType | None = None) -> Record:
    """Inverse of :func:`record_to_element`.

    With a ``record_type``, field text is parsed back to typed atomics;
    without one, every field comes back as a string (or NULL).
    """
    fields: dict[str, Any] = {}
    for child in element.child_elements():
        if child.attributes.get("null") == "true":
            fields[child.tag] = NULL
            continue
        if any(True for _ in child.child_elements()):
            fields[child.tag] = element_to_record(child)
            continue
        text = child.text_content()
        if record_type is not None:
            try:
                fields[child.tag] = text_to_atomic(text, record_type.field(child.tag).type)
                continue
            except KeyError:
                pass
        fields[child.tag] = text
    return Record(fields)


def records_from_rows(
    rows: Iterable[Iterable[Any]], record_type: RecordType
) -> Collection:
    """Build a typed Collection of Records from positional rows."""
    names = record_type.field_names
    collection = Collection(record_type=record_type)
    for row in rows:
        values = tuple(row)
        if len(values) != len(names):
            raise ValueError(
                f"row width {len(values)} does not match {record_type.name} "
                f"({len(names)} fields)"
            )
        collection.append(Record(zip(names, values)))
    return collection

"""Serialize node trees back to XML text."""

from __future__ import annotations

from repro.xmldm.document import Document
from repro.xmldm.nodes import Comment, Element, Node, ProcessingInstruction, Text


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def serialize(node: Node | Document, indent: int | None = None) -> str:
    """Serialize a node or document to XML text.

    With ``indent=None`` (the default) the output is byte-faithful to the
    tree: text nodes appear exactly as stored, so
    ``parse -> serialize -> parse`` is the identity.  With an integer
    ``indent``, element-only content is pretty-printed (this changes
    whitespace and is for human consumption).
    """
    parts: list[str] = []
    if isinstance(node, Document):
        for item in node.prolog:
            _write(item, parts, indent, 0)
            if indent is not None:
                parts.append("\n")
        node = node.root
    _write(node, parts, indent, 0)
    return "".join(parts)


def _write(node: Node, parts: list[str], indent: int | None, depth: int) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    if isinstance(node, Text):
        parts.append(escape_text(node.value))
    elif isinstance(node, Comment):
        parts.append(f"{pad}<!--{node.value}-->")
    elif isinstance(node, ProcessingInstruction):
        body = f" {node.value}" if node.value else ""
        parts.append(f"{pad}<?{node.target}{body}?>")
    elif isinstance(node, Element):
        attrs = "".join(
            f' {name}="{escape_attribute(value)}"'
            for name, value in node.attributes.items()
        )
        if not node.children:
            parts.append(f"{pad}<{node.tag}{attrs}/>")
            return
        element_only = indent is not None and all(
            isinstance(child, (Element, Comment, ProcessingInstruction))
            for child in node.children
        )
        parts.append(f"{pad}<{node.tag}{attrs}>")
        if element_only:
            for child in node.children:
                parts.append("\n")
                _write(child, parts, indent, depth + 1)
            parts.append(f"\n{pad}</{node.tag}>")
        else:
            for child in node.children:
                _write(child, parts, None, 0)
            parts.append(f"</{node.tag}>")
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot serialize {node!r}")

"""The hybrid XML data model at the core of the integration system.

The paper (section 3.1) describes a data model that "allows for the
semi-structured aspects of XML, but is slightly more structured than
models described for XML, thus accommodating relational and hierarchical
data more naturally".  This package provides exactly that hybrid:

* ordered, attribute-bearing element trees with global document order
  (:mod:`repro.xmldm.nodes`, :mod:`repro.xmldm.document`);
* a from-scratch XML 1.0 (subset) parser and serializer
  (:mod:`repro.xmldm.parser`, :mod:`repro.xmldm.serializer`);
* structured values — :class:`Record` and :class:`Collection` — that map
  relational rows and tables into the model without element-wrapping
  overhead (:mod:`repro.xmldm.values`, :mod:`repro.xmldm.schema`);
* navigation along the up/down/sideways axes the paper calls out
  (:mod:`repro.xmldm.path`).
"""

from repro.xmldm.document import Document
from repro.xmldm.nodes import Comment, Element, Node, ProcessingInstruction, Text
from repro.xmldm.parser import parse_document, parse_element
from repro.xmldm.path import Path, evaluate_path
from repro.xmldm.schema import Field, RecordType, element_to_record, record_to_element
from repro.xmldm.serializer import serialize
from repro.xmldm.values import (
    NULL,
    Collection,
    Null,
    Record,
    compare_values,
    typename,
    values_equal,
)

__all__ = [
    "Collection",
    "Comment",
    "Document",
    "Element",
    "Field",
    "NULL",
    "Node",
    "Null",
    "Path",
    "ProcessingInstruction",
    "Record",
    "RecordType",
    "Text",
    "compare_values",
    "element_to_record",
    "evaluate_path",
    "parse_document",
    "parse_element",
    "record_to_element",
    "serialize",
    "typename",
    "values_equal",
]

"""Query workloads: Zipf-weighted templates with hot-set drift.

Experiment E2 needs a query load whose popular queries *change over
time* — the paper's "adjust the set of materialized views over time
depending on the query load".  A workload is a set of query templates;
draws follow a Zipf distribution over a template ordering that rotates
every ``drift_every`` queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a drifting Zipf workload."""

    zipf_s: float = 1.2       # Zipf exponent: higher = more skew
    drift_every: int = 100    # queries between hot-set rotations
    drift_step: int = 3       # how many positions the ranking rotates
    seed: int = 21


@dataclass
class QueryWorkload:
    """Draws query texts from templates under a drifting Zipf law."""

    templates: list[str]
    spec: WorkloadSpec = field(default_factory=WorkloadSpec)

    def __post_init__(self) -> None:
        if not self.templates:
            raise ValueError("a workload needs at least one template")
        self._rng = random.Random(self.spec.seed)
        self._drawn = 0
        self._rotation = 0
        weights = [
            1.0 / (rank ** self.spec.zipf_s)
            for rank in range(1, len(self.templates) + 1)
        ]
        total = sum(weights)
        self._weights = [w / total for w in weights]

    def _current_order(self) -> list[int]:
        n = len(self.templates)
        shift = self._rotation % n
        return [(i + shift) % n for i in range(n)]

    def draw(self) -> str:
        """Draw the next query text."""
        if self._drawn and self._drawn % self.spec.drift_every == 0:
            self._rotation += self.spec.drift_step
        self._drawn += 1
        order = self._current_order()
        index = self._rng.choices(range(len(order)), weights=self._weights)[0]
        return self.templates[order[index]]

    def draw_many(self, count: int) -> Iterator[str]:
        for _ in range(count):
            yield self.draw()

    @property
    def drawn(self) -> int:
        return self._drawn

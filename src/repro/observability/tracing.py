"""Query tracing: deterministic span trees over virtual and wall time.

The paper's administrator needs to "monitor, and understand, the
system" (section 4); with three interacting performance layers
(resilience ladder, prefetch waves, fragment cache) a flat counter set
cannot explain *where* a federated query's time went.  A
:class:`Tracer` records one span tree per query:

* every span carries **two** durations — virtual milliseconds read off
  the engine's :class:`~repro.simtime.SimClock` (deterministic, the
  modelled cost) and wall seconds from ``time.perf_counter()``
  (non-deterministic, the mediator's own CPU time);
* spans nest by call structure: ``query`` -> ``parse``/``bind``/
  ``decompose``/``plan``/``execute`` -> ``wave`` -> ``fetch``, with
  ``batch`` probes, ``view`` sub-queries, and nested ``query`` spans
  for mediated views;
* structured :class:`SpanEvent`\\ s mark the interesting instants:
  retries, breaker trips, stale serves, cache hits/misses, containment
  serves, single-flight joins.

Tracing is strictly observational: no method advances the clock, so
results, completeness, and the determinism-checked ``counters()`` are
identical with tracing on or off.  The default is :data:`NULL_TRACER`,
whose spans are inert singletons — the off path costs two no-op calls
per span and nothing else.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.simtime import SimClock


@dataclass
class SpanEvent:
    """One instant on a span's timeline (a retry, a cache hit, ...)."""

    name: str
    at_virtual_ms: float
    at_wall_s: float
    attrs: dict[str, Any] = field(default_factory=dict)


class Span:
    """One timed region of a query's execution.

    ``recording`` distinguishes a live span from the inert null span:
    callers guard *expensive* attribute computation behind it
    (``if span.recording: span.set(fragment=frag.describe())``) so the
    off path never pays for string building.
    """

    recording = True

    __slots__ = ("kind", "name", "trace_id", "span_id", "parent_id",
                 "start_virtual_ms", "end_virtual_ms", "start_wall_s",
                 "end_wall_s", "attrs", "events", "children")

    def __init__(self, kind: str, name: str, trace_id: str, span_id: int,
                 parent_id: int | None, start_virtual_ms: float,
                 start_wall_s: float, attrs: dict[str, Any]):
        self.kind = kind
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_virtual_ms = start_virtual_ms
        self.end_virtual_ms: float | None = None
        self.start_wall_s = start_wall_s
        self.end_wall_s: float | None = None
        self.attrs = attrs
        self.events: list[SpanEvent] = []
        self.children: list["Span"] = []

    # -- reading -------------------------------------------------------------

    @property
    def virtual_ms(self) -> float:
        """Virtual duration; 0.0 while the span is still open."""
        if self.end_virtual_ms is None:
            return 0.0
        return self.end_virtual_ms - self.start_virtual_ms

    @property
    def wall_ms(self) -> float:
        if self.end_wall_s is None:
            return 0.0
        return (self.end_wall_s - self.start_wall_s) * 1000.0

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> list["Span"]:
        """Every descendant span (including self) of one kind."""
        return [span for span in self.walk() if span.kind == kind]

    def event_names(self) -> list[str]:
        return [event.name for event in self.events]

    # -- writing -------------------------------------------------------------

    def set(self, **attrs: Any) -> None:
        """Merge attributes into the span."""
        self.attrs.update(attrs)

    def add_event(self, name: str, virtual_now: float, wall_now: float,
                  attrs: dict[str, Any]) -> None:
        self.events.append(SpanEvent(name, virtual_now, wall_now, attrs))

    def to_dict(self) -> dict[str, Any]:
        """Recursive plain-dict form (the JSON trace dump)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_virtual_ms": self.start_virtual_ms,
            "virtual_ms": self.virtual_ms,
            "wall_ms": self.wall_ms,
            "attrs": dict(self.attrs),
            "events": [
                {"name": e.name, "at_virtual_ms": e.at_virtual_ms,
                 "attrs": dict(e.attrs)}
                for e in self.events
            ],
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (f"Span({self.kind}:{self.name or '-'} "
                f"{self.virtual_ms:.2f}ms v, {len(self.children)} children)")


class Tracer:
    """Records span trees for queries run on one engine.

    Span ids and trace ids are deterministic sequence numbers — no
    randomness, so two identical runs produce byte-identical trace
    dumps (modulo wall-clock fields).  Completed root spans are kept in
    ``traces``, bounded to the last ``max_traces``.
    """

    enabled = True

    def __init__(self, clock: SimClock, max_traces: int = 64):
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.clock = clock
        self.max_traces = max_traces
        self.traces: list[Span] = []
        self._stack: list[Span] = []
        self._next_span_id = 0
        self._next_trace = 0

    @contextmanager
    def span(self, kind: str, name: str = "", **attrs: Any) -> Iterator[Span]:
        """Open one span; nests under the currently open span, if any."""
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            trace_id = f"t{self._next_trace:04d}"
            self._next_trace += 1
        else:
            trace_id = parent.trace_id
        span = Span(
            kind, name, trace_id, self._next_span_id,
            parent.span_id if parent is not None else None,
            self.clock.now, time.perf_counter(), attrs,
        )
        self._next_span_id += 1
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as error:
            span.attrs.setdefault("error", type(error).__name__)
            raise
        finally:
            span.end_virtual_ms = self.clock.now
            span.end_wall_s = time.perf_counter()
            popped = self._stack.pop()
            assert popped is span, "span stack corrupted"
            if parent is None:
                self.traces.append(span)
                while len(self.traces) > self.max_traces:
                    self.traces.pop(0)

    def event(self, name: str, **attrs: Any) -> None:
        """Attach an instant event to the innermost open span."""
        if self._stack:
            self._stack[-1].add_event(
                name, self.clock.now, time.perf_counter(), attrs
            )

    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def last_trace(self) -> Span | None:
        return self.traces[-1] if self.traces else None

    def clear(self) -> None:
        self.traces.clear()


class _NullSpan:
    """The inert span: accepts everything, records nothing."""

    recording = False
    kind = ""
    name = ""
    trace_id = ""
    span_id = -1
    parent_id = None
    start_virtual_ms = 0.0
    end_virtual_ms = 0.0
    virtual_ms = 0.0
    wall_ms = 0.0
    attrs: dict[str, Any] = {}
    events: tuple = ()
    children: tuple = ()

    def set(self, **attrs: Any) -> None:
        pass

    def add_event(self, name: str, virtual_now: float, wall_now: float,
                  attrs: dict[str, Any]) -> None:
        pass

    def walk(self):
        return iter(())

    def find(self, kind: str) -> list:
        return []

    def event_names(self) -> list[str]:
        return []

    def to_dict(self) -> dict[str, Any]:
        return {}


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable, reentrant context manager yielding the null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """The zero-overhead default: every operation is a no-op."""

    enabled = False
    traces: tuple = ()
    last_trace = None

    def span(self, kind: str, name: str = "", **attrs: Any) -> _NullSpanContext:
        return _NULL_CONTEXT

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def current(self) -> None:
        return None

    def clear(self) -> None:
        pass


#: the shared no-op tracer every component defaults to
NULL_TRACER = NullTracer()


def format_trace(span: Span, indent: int = 0) -> str:
    """Render a span tree as indented text (virtual + wall durations)."""
    pad = "  " * indent
    label = f"{span.kind}" + (f":{span.name}" if span.name else "")
    extras = ""
    if span.attrs:
        extras = " " + " ".join(
            f"{key}={value}" for key, value in sorted(span.attrs.items())
        )
    lines = [
        f"{pad}{label}  [{span.virtual_ms:.2f} ms virtual, "
        f"{span.wall_ms:.3f} ms wall]{extras}"
    ]
    for event in span.events:
        attrs = ""
        if event.attrs:
            attrs = " " + " ".join(
                f"{key}={value}" for key, value in sorted(event.attrs.items())
            )
        lines.append(
            f"{pad}  ! {event.name} @ {event.at_virtual_ms:.2f} ms{attrs}"
        )
    for child in span.children:
        lines.append(format_trace(child, indent + 1))
    return "\n".join(lines)

"""Direct translation from bound XML-QL queries to physical plans.

This is the baseline compilation path ("we translate a query into an
internal representation, and from there directly to query execution
plans in the physical algebra", section 3.1): pattern clauses become
scan+match operators joined left-to-right on shared variables,
conditions become selections placed as early as their variables allow,
and CONSTRUCT/ORDER BY finish the plan.  The cost-based decomposition
into remote fragments lives in :mod:`repro.optimizer`, which builds on
the same pieces.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol

from repro.algebra import (
    CallbackScan,
    Construct,
    ConstructTemplate,
    HashJoin,
    NestedLoopJoin,
    Operator,
    PatternMatch,
    Plan,
    Select,
    Sort,
    TemplateText,
    TemplateVar,
    TreePattern,
)
from repro.algebra.construct import TemplateAggregate
from repro.algebra.operators import Limit
from repro.algebra.pattern import AttributePattern
from repro.query import ast
from repro.query.binder import BoundQuery, bind_query
from repro.query.exprs import compile_predicate, compile_sort_key
from repro.query.parser import parse_query


class SourceResolver(Protocol):
    """Resolves a source name to the items a scan should iterate."""

    def __call__(self, source_name: str) -> Iterable[Any]: ...


def pattern_to_tree(pattern: ast.PatternElement) -> TreePattern:
    """Convert syntactic patterns to the algebra's tree patterns."""
    return TreePattern(
        tag=pattern.tag,
        attributes=tuple(
            AttributePattern(a.name, var=a.var, literal=a.literal)
            for a in pattern.attributes
        ),
        children=tuple(pattern_to_tree(child) for child in pattern.children),
        text_var=pattern.text_var,
        text_literal=pattern.text_literal,
        element_var=pattern.element_var,
        descendant=pattern.descendant,
    )


def template_to_construct(template: ast.TemplateElement) -> ConstructTemplate:
    """Convert syntactic templates to the algebra's construct templates."""
    children: list[Any] = []
    for child in template.children:
        if isinstance(child, ast.TemplateElement):
            children.append(template_to_construct(child))
        elif isinstance(child, ast.Var):
            children.append(TemplateVar(child.name))
        elif isinstance(child, ast.AggregateRef):
            children.append(TemplateAggregate(child.kind, child.var))
        else:
            children.append(TemplateText(child))
    return ConstructTemplate(
        tag=template.tag,
        attributes=tuple(
            (name, TemplateVar(value.name) if isinstance(value, ast.Var) else value)
            for name, value in template.attributes
        ),
        children=tuple(children),
    )


def translate_query(
    query: ast.Query | str,
    resolver: SourceResolver,
    output_var: str = "result",
) -> Plan:
    """Build an executable plan for ``query`` over ``resolver``'s sources."""
    if isinstance(query, str):
        query = parse_query(query)
    bound = bind_query(query)
    root = build_binding_tree(bound, resolver)
    if query.order_by:
        keys = [
            (compile_sort_key(spec.expr), spec.descending) for spec in query.order_by
        ]
        root = Sort(root, keys, label=", ".join(str(s.expr) for s in query.order_by))
    root = Construct(root, template_to_construct(query.construct), output_var)
    if query.limit is not None:
        root = Limit(root, query.limit)
    return Plan(root, output_var)


def build_binding_tree(bound: BoundQuery, resolver: SourceResolver) -> Operator:
    """The WHERE part only: joins of matched patterns plus conditions.

    Conditions are applied as soon as all their variables are bound —
    the translation-time equivalent of predicate pushdown.
    """
    query = bound.query
    pending = list(zip(query.condition_clauses, bound.condition_vars))
    root: Operator | None = None
    bound_so_far: set[str] = set()
    for index, clause in enumerate(query.pattern_clauses):
        step = clause_operator(clause, index, resolver)
        step_vars = set(bound.clause_vars[index])
        if root is None:
            root = step
        else:
            shared = tuple(sorted(bound_so_far & step_vars))
            if shared:
                root = HashJoin(root, step, shared)
            else:
                root = NestedLoopJoin(root, step)
        bound_so_far |= step_vars
        root = _apply_ready_conditions(root, pending, bound_so_far)
    assert root is not None
    # Any leftover conditions (shouldn't happen for safe queries).
    for condition, _ in pending:
        root = Select(root, compile_predicate(condition.expr), label=str(condition.expr))
    return root


def clause_operator(
    clause: ast.PatternClause, index: int, resolver: SourceResolver
) -> Operator:
    """Scan a source and match the clause's pattern against its items."""
    context_var = f"__src{index}"
    scan = CallbackScan(
        context_var, lambda name=clause.source: resolver(name), label=clause.source
    )
    return PatternMatch(scan, context_var, pattern_to_tree(clause.pattern))


def _apply_ready_conditions(
    root: Operator,
    pending: list[tuple[ast.ConditionClause, frozenset[str]]],
    bound_so_far: set[str],
) -> Operator:
    ready = [item for item in pending if item[1] <= bound_so_far]
    for item in ready:
        pending.remove(item)
        condition, _ = item
        root = Select(
            root, compile_predicate(condition.expr), label=str(condition.expr)
        )
    return root

"""Observed fragment cardinalities fed back into the cost model.

Section 3.3 laments that "we do not have good cost estimates for
querying over remote data sources"; once a fragment has actually run,
there is no reason to keep guessing.  :class:`StatisticsFeedback` keeps
an exponentially-weighted row count per fragment key (the same key the
fragment cache uses) so repeated queries plan with real cardinalities
instead of the folklore selectivities in
:data:`repro.optimizer.costs._SELECTIVITY`.
"""

from __future__ import annotations

from repro.materialize.matching import fragment_key
from repro.sources.base import Fragment


class StatisticsFeedback:
    """Per-fragment observed row counts, keyed like the fragment cache.

    For parameterized fragments the observation is per *probe* (one
    parameter set), matching what ``estimate_rows`` predicts for them.
    ``alpha`` is the EWMA weight of the newest observation; 1.0 means
    "always trust the last run".
    """

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._rows: dict[str, float] = {}
        self.updates = 0

    def observe(self, fragment: Fragment, rows: int) -> None:
        """Record one execution's actual row count."""
        key = fragment_key(fragment)
        previous = self._rows.get(key)
        if previous is None:
            self._rows[key] = float(rows)
        else:
            self._rows[key] = previous + self.alpha * (rows - previous)
        self.updates += 1

    def rows_for(self, fragment: Fragment) -> float | None:
        """The observed row count for a fragment, or None if never run."""
        return self._rows.get(fragment_key(fragment))

    def clear(self) -> None:
        self._rows.clear()

    def __len__(self) -> int:
        return len(self._rows)

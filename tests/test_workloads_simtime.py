"""Unit tests for workload generators and the virtual clock."""

import pytest

from repro.simtime import SimClock, Stopwatch
from repro.workloads import (
    DirtMachine,
    QueryWorkload,
    WorkloadSpec,
    make_customer_universe,
    make_website_workload,
)


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now == 7.5

    def test_no_time_travel(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)  # already passed: no-op
        assert clock.now == 10.0
        clock.advance_to(20.0)
        assert clock.now == 20.0

    def test_stopwatch(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(3.0)
        assert watch.elapsed == 3.0
        watch.restart()
        assert watch.elapsed == 0.0


class TestDirtMachine:
    def test_typo_changes_string(self):
        machine = DirtMachine(seed=1)
        value = "jonathan"
        mutated = machine.typo(value)
        assert mutated != value or len(mutated) != len(value)

    def test_deterministic_per_seed(self):
        a = DirtMachine(seed=5)
        b = DirtMachine(seed=5)
        assert [a.typo("hello") for _ in range(5)] == [
            b.typo("hello") for _ in range(5)
        ]

    def test_truncate_keeps_minimum(self):
        machine = DirtMachine(seed=2)
        assert len(machine.truncate("abcdefgh", keep_at_least=3)) >= 3
        assert machine.truncate("ab") == "ab"

    def test_abbreviate(self):
        machine = DirtMachine()
        assert machine.abbreviate("fairview avenue north") == "fairview Ave N"

    def test_swap_name_order(self):
        machine = DirtMachine()
        assert machine.swap_name_order("john smith") == "smith, john"
        assert machine.swap_name_order("cher") == "cher"

    def test_legacy_code_shape(self):
        code = DirtMachine(seed=3).legacy_code("ACCT")
        assert code.startswith("ACCT-")
        assert code.split("-")[1].isdigit()


class TestCustomerUniverse:
    def test_deterministic(self):
        a = make_customer_universe(40, seed=9)
        b = make_customer_universe(40, seed=9)
        assert a.records["billing"] == b.records["billing"]
        assert a.identity == b.identity

    def test_overlap_controls_sizes(self):
        low = make_customer_universe(100, overlap=0.1, seed=1)
        high = make_customer_universe(100, overlap=0.9, seed=1)
        assert len(low.records["billing"]) < len(high.records["billing"])

    def test_identity_covers_all_records(self):
        universe = make_customer_universe(30, seed=2)
        for source, records in universe.records.items():
            for record in records:
                assert (source, record["id"]) in universe.identity

    def test_true_pairs_cross_source(self):
        universe = make_customer_universe(30, seed=2)
        for ref_a, ref_b in universe.true_match_pairs():
            assert universe.identity[ref_a] == universe.identity[ref_b]

    def test_as_databases_loads_rows(self):
        universe = make_customer_universe(25, seed=4)
        dbs = universe.as_databases()
        assert dbs["crm"].row_count("customers") == 25
        assert dbs["billing"].row_count("accounts") == len(
            universe.records["billing"]
        )

    def test_duplicates_inside_billing(self):
        universe = make_customer_universe(200, duplicate_rate=0.5, seed=6)
        keys = [universe.identity[("billing", r["id"])]
                for r in universe.records["billing"]]
        assert len(keys) > len(set(keys))  # some customer appears twice


class TestWebsiteWorkload:
    def test_structure(self):
        workload = make_website_workload(12)
        assert len(workload.skus) == 12
        assert set(workload.registry.names()) == {"content", "erp", "reviews"}
        assert workload.catalog.is_view("product_page")

    def test_inventory_loaded(self):
        workload = make_website_workload(8)
        erp = workload.registry.get("erp")
        assert erp.cardinality("stock") == 8


class TestQueryWorkload:
    def test_zipf_skew(self):
        workload = QueryWorkload(
            ["hot", "warm", "cold", "frozen"],
            WorkloadSpec(zipf_s=1.5, drift_every=10_000, seed=3),
        )
        draws = list(workload.draw_many(2000))
        assert draws.count("hot") > draws.count("frozen") * 2

    def test_drift_rotates_hot_set(self):
        workload = QueryWorkload(
            ["a", "b", "c", "d"],
            WorkloadSpec(zipf_s=2.0, drift_every=200, drift_step=1, seed=3),
        )
        first = list(workload.draw_many(200))
        second = list(workload.draw_many(200))
        assert max(set(first), key=first.count) != max(set(second), key=second.count)

    def test_deterministic(self):
        spec = WorkloadSpec(seed=8)
        a = QueryWorkload(["x", "y"], spec)
        b = QueryWorkload(["x", "y"], spec)
        assert list(a.draw_many(50)) == list(b.draw_many(50))

    def test_empty_templates_rejected(self):
        with pytest.raises(ValueError):
            QueryWorkload([])

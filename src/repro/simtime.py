"""A deterministic virtual clock for the simulated distributed system.

All "remote" behaviour in the reproduction — source latency, transfer
time, engine service time, outage windows — advances a :class:`SimClock`
instead of sleeping.  Benchmarks therefore measure the *modelled* cost
(milliseconds of virtual time) deterministically and instantly, which is
what makes the latency experiments (E1, E4, E6) reproducible run to run.
"""

from __future__ import annotations


class SimClock:
    """Virtual time in milliseconds."""

    def __init__(self, start_ms: float = 0.0):
        self._now = float(start_ms)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance(self, delta_ms: float) -> float:
        """Move time forward; negative deltas are rejected."""
        if delta_ms < 0:
            raise ValueError(f"cannot move time backwards ({delta_ms} ms)")
        self._now += delta_ms
        return self._now

    def advance_to(self, timestamp_ms: float) -> float:
        """Move time forward to an absolute timestamp (no-op if passed)."""
        if timestamp_ms > self._now:
            self._now = timestamp_ms
        return self._now

    def elapsed_since(self, timestamp_ms: float) -> float:
        return self._now - timestamp_ms

    def __repr__(self) -> str:
        return f"SimClock({self._now:.3f} ms)"


class Stopwatch:
    """Measures spans of virtual time on a clock."""

    def __init__(self, clock: SimClock):
        self.clock = clock
        self._start = clock.now

    def restart(self) -> None:
        self._start = self.clock.now

    @property
    def elapsed(self) -> float:
        return self.clock.now - self._start

"""The resilient call path: retry -> breaker -> deadline accounting.

:class:`ResilientExecutor` wraps every remote source call the engine
makes.  One executor lives on the engine (breakers persist *across*
queries — that is what makes failing fast useful); per-query counters
are charged to the query's ``EngineStats`` by the caller passing it in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import (
    CircuitOpenError,
    SourceTimeoutError,
    SourceUnavailableError,
)
from repro.observability.tracing import NULL_TRACER, Tracer
from repro.resilience.breaker import BreakerConfig, CircuitBreaker
from repro.resilience.retry import RetryPolicy
from repro.simtime import SimClock


@dataclass
class ResiliencePolicy:
    """Everything the engine needs to survive a misbehaving source.

    The degraded-read ladder is: retry (``retry``) -> fail fast once the
    breaker opens (``breaker``) -> serve a stale materialized fragment
    or registered replica (``allow_stale``) -> SKIP with annotation.
    ``call_deadline_ms`` bounds one source call; ``query_deadline_ms``
    bounds the whole query's remote budget — overruns surface as
    :class:`~repro.errors.SourceTimeoutError`.
    """

    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    breaker: BreakerConfig | None = field(default_factory=BreakerConfig)
    call_deadline_ms: float | None = None
    query_deadline_ms: float | None = None
    allow_stale: bool = True


class ResilientExecutor:
    """Applies a :class:`ResiliencePolicy` to individual source calls."""

    def __init__(self, clock: SimClock, policy: ResiliencePolicy):
        self.clock = clock
        self.policy = policy
        self.breakers: dict[str, CircuitBreaker] = {}
        self.total_retries = 0
        self.total_deadline_misses = 0
        #: set by the owning engine's ``use_tracer``; events land on
        #: whichever span is open at the call site (usually a fetch span)
        self.tracer: Tracer = NULL_TRACER

    def breaker_for(self, source_name: str) -> CircuitBreaker | None:
        if self.policy.breaker is None:
            return None
        breaker = self.breakers.get(source_name)
        if breaker is None:
            breaker = CircuitBreaker(self.policy.breaker, source_name)
            self.breakers[source_name] = breaker
        return breaker

    def call(
        self,
        source_name: str,
        attempt_fn: Callable[[], Any],
        stats: Any = None,
        deadline_at_ms: float | None = None,
    ) -> Any:
        """Run one logical source call under the policy.

        ``stats`` is the query's ``EngineStats`` (duck-typed: ``retries``,
        ``breaker_trips``, ``deadline_misses`` counters); ``deadline_at_ms``
        is the absolute virtual time at which the query's budget runs out.
        """
        policy = self.policy
        breaker = self.breaker_for(source_name)
        attempts = policy.retry.max_attempts if policy.retry is not None else 1
        for attempt in range(attempts):
            if deadline_at_ms is not None and self.clock.now >= deadline_at_ms:
                self._count_deadline_miss(stats)
                self.tracer.event("deadline_miss", source=source_name,
                                  kind="query_budget")
                raise SourceTimeoutError(source_name, "query deadline exhausted")
            if breaker is not None:
                try:
                    breaker.check(self.clock.now)
                except CircuitOpenError:
                    self.tracer.event("breaker_open", source=source_name)
                    raise
            started = self.clock.now
            try:
                result = attempt_fn()
            except SourceUnavailableError:
                self._record_failure(breaker, stats, source_name)
                wait = self._backoff(attempt, attempts, deadline_at_ms, stats,
                                     source_name)
                if wait is None:
                    raise
                self.tracer.event("retry", source=source_name,
                                  attempt=attempt + 1, backoff_ms=wait)
                continue
            elapsed = self.clock.now - started
            if (policy.call_deadline_ms is not None
                    and elapsed > policy.call_deadline_ms):
                # the call "timed out": the result arrived past its budget
                self._count_deadline_miss(stats)
                self.tracer.event("deadline_miss", source=source_name,
                                  kind="call_budget", elapsed_ms=elapsed)
                self._record_failure(breaker, stats, source_name)
                wait = self._backoff(attempt, attempts, deadline_at_ms, stats,
                                     source_name)
                if wait is None:
                    raise SourceTimeoutError(
                        source_name,
                        f"call took {elapsed:.0f} ms "
                        f"(budget {policy.call_deadline_ms:.0f} ms)",
                    )
                self.tracer.event("retry", source=source_name,
                                  attempt=attempt + 1, backoff_ms=wait)
                continue
            if breaker is not None:
                breaker.record_success(self.clock.now)
            return result
        raise AssertionError("unreachable: retry loop must raise or return")

    # -- helpers ------------------------------------------------------------

    def _backoff(self, attempt: int, attempts: int,
                 deadline_at_ms: float | None, stats: Any,
                 source_name: str | None = None) -> float | None:
        """Charge backoff; the wait charged, or None when attempts ran out."""
        if attempt + 1 >= attempts or self.policy.retry is None:
            return None
        wait = self.policy.retry.backoff_ms(attempt, source=source_name)
        if deadline_at_ms is not None:
            # never sleep past the query deadline; the next loop
            # iteration converts an exhausted budget into a timeout
            wait = min(wait, max(0.0, deadline_at_ms - self.clock.now))
        self.clock.advance(wait)
        self.total_retries += 1
        if stats is not None:
            stats.retries += 1
        return wait

    def _record_failure(self, breaker: CircuitBreaker | None,
                        stats: Any, source_name: str = "") -> None:
        if breaker is not None and breaker.record_failure(self.clock.now):
            if stats is not None:
                stats.breaker_trips += 1
            self.tracer.event("breaker_trip", source=source_name)

    def _count_deadline_miss(self, stats: Any) -> None:
        self.total_deadline_misses += 1
        if stats is not None:
            stats.deadline_misses += 1

    def summary(self) -> dict[str, Any]:
        return {
            "retries": self.total_retries,
            "deadline_misses": self.total_deadline_misses,
            "breakers_open": sum(
                1 for b in self.breakers.values() if b.opened_at_ms is not None
            ),
            "breaker_trips": sum(
                b.times_opened for b in self.breakers.values()
            ),
        }

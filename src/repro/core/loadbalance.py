"""Load balancing: multiple engine instances on one or more servers.

"Load balancing is provided; multiple instances of the integration
engine can be run simultaneously on one or more servers" (section 2.1).
The cluster is a discrete-event queueing simulation over virtual time:
each instance serves one query at a time, dispatch strategies choose the
instance, and benchmark E6 measures throughput and tail latency as the
instance count grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.engine import NimbleEngine, QueryResult
from repro.core.partial import PartialResultPolicy
from repro.errors import PlanningError, QueryRejected
from repro.observability.aggregate import merge_registries
from repro.observability.metrics import MetricsRegistry, percentile
from repro.observability.querylog import query_hash
from repro.observability.slo import SloTracker
from repro.observability.tracing import NULL_TRACER
from repro.resilience.admission import AdmissionController, Priority
from repro.resilience.overload import LoadShedder


@dataclass
class EngineInstance:
    """One engine process in the cluster."""

    name: str
    free_at_ms: float = 0.0
    queries_served: int = 0
    busy_ms: float = 0.0
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


@dataclass
class CompletedQuery:
    """Timing of one dispatched query."""

    instance: str
    arrival_ms: float
    start_ms: float
    completion_ms: float
    result: QueryResult
    priority: Priority = Priority.NORMAL

    @property
    def latency_ms(self) -> float:
        return self.completion_ms - self.arrival_ms

    @property
    def queue_ms(self) -> float:
        return self.start_ms - self.arrival_ms

    @property
    def rejected(self) -> bool:
        return False


@dataclass
class RejectedQuery:
    """A query the overload gate refused at dispatch."""

    arrival_ms: float
    priority: Priority
    error: QueryRejected

    @property
    def retry_after_ms(self) -> float:
        return self.error.retry_after_ms

    @property
    def rejected(self) -> bool:
        return True


class EngineCluster:
    """Dispatches queries across engine instances.

    All instances share one :class:`NimbleEngine` for actual evaluation
    (they are processes over the same catalog); what differs per
    instance is queueing.  Service time for a query is its measured
    virtual execution time on the shared engine.
    """

    STRATEGIES = ("round_robin", "least_loaded", "random", "consistent_hash")

    def __init__(self, engine: NimbleEngine, instances: int = 1,
                 strategy: str = "least_loaded", seed: int = 11,
                 admission: AdmissionController | None = None,
                 shedder: LoadShedder | None = None,
                 slo: SloTracker | None = None):
        if instances < 1:
            raise PlanningError("a cluster needs at least one instance")
        if strategy not in self.STRATEGIES:
            raise PlanningError(f"unknown dispatch strategy {strategy!r}")
        self.engine = engine
        self.instances = [EngineInstance(f"{engine.name}-{i}") for i in range(instances)]
        self.strategy = strategy
        #: the overload gate at dispatch.  ``admission`` sees the chosen
        #: instance's projected queue wait; ``shedder`` applies its
        #: brownout rung fleet-wide.  ``slo`` (if given) is fed the
        #: *end-to-end* latency — arrival to completion, queueing
        #: included — which is what an arrival storm actually degrades;
        #: wire the tracker here OR on the engine, never both, or every
        #: query is observed twice.
        self.admission = admission
        self.shedder = shedder
        self.slo = slo
        self._next = 0
        import random

        self._rng = random.Random(seed)
        self.completed: list[CompletedQuery] = []
        self.rejected: list[RejectedQuery] = []
        self.rerouted = 0

    # -- dispatch -------------------------------------------------------------

    def _choose(self, arrival_ms: float | None = None,
                priority: Priority = Priority.NORMAL,
                query_text: str | None = None) -> EngineInstance:
        if self.strategy == "round_robin":
            instance = self.instances[self._next % len(self.instances)]
            self._next += 1
        elif self.strategy == "random":
            instance = self._rng.choice(self.instances)
        elif self.strategy == "consistent_hash":
            # same query text -> same instance, every time: repeated
            # queries land where their plan/fragment caches are warm.
            # Unkeyed dispatches (no text) degrade to round-robin.
            if query_text is None:
                instance = self.instances[self._next % len(self.instances)]
                self._next += 1
            else:
                bucket = int(query_hash(query_text), 16) % len(self.instances)
                instance = self.instances[bucket]
        else:
            return min(self.instances, key=lambda i: (i.free_at_ms, i.name))
        if arrival_ms is not None and self.admission is not None:
            # route around a shedding instance: if the strategy's pick
            # would refuse this priority on queue wait but a less-loaded
            # instance would accept, take the detour instead of shedding
            bound = self.admission.queue_bound_ms(priority)
            if max(0.0, instance.free_at_ms - arrival_ms) > bound:
                fallback = min(self.instances,
                               key=lambda i: (i.free_at_ms, i.name))
                if (fallback is not instance
                        and max(0.0, fallback.free_at_ms - arrival_ms)
                        <= bound):
                    self.rerouted += 1
                    return fallback
        return instance

    def submit(
        self,
        query_text: str,
        arrival_ms: float,
        policy: PartialResultPolicy | None = None,
        priority: Priority = Priority.NORMAL,
    ) -> CompletedQuery:
        """Dispatch one query arriving at ``arrival_ms`` (virtual time).

        Raises :class:`~repro.errors.QueryRejected` when the overload
        gate refuses it; use :meth:`offer` to get a
        :class:`RejectedQuery` record instead of an exception.
        """
        priority = Priority(priority)
        if self.shedder is not None:
            self.shedder.refresh()
            self.shedder.check_admit(priority)
        instance = self._choose(arrival_ms, priority, query_text)
        projected_wait = max(0.0, instance.free_at_ms - arrival_ms)
        admission = None
        if self.admission is not None:
            resilience = self.engine.resilience
            admission = self.admission.admit(
                priority,
                projected_wait_ms=projected_wait,
                deadline_ms=(resilience.query_deadline_ms
                             if resilience is not None else None),
            )
        start = max(arrival_ms, instance.free_at_ms)
        tracer = getattr(self.engine, "tracer", None) or NULL_TRACER
        try:
            # the dispatch span parents the engine's query span, so one
            # trace stitches cluster routing to shard/source fetches
            with tracer.span("dispatch", name=instance.name,
                             instance=instance.name,
                             queue_ms=projected_wait):
                result = self.engine.query(query_text, policy=policy,
                                           priority=priority)
        except BaseException:
            if admission is not None:
                self.admission.cancel(admission)
            raise
        if admission is not None:
            self.admission.started(admission)
            self.admission.complete(admission)
        service = result.stats.elapsed_virtual_ms
        completion = start + service
        instance.free_at_ms = completion
        instance.queries_served += 1
        instance.busy_ms += service
        record = CompletedQuery(instance.name, arrival_ms, start, completion,
                                result, priority=priority)
        self.completed.append(record)
        instance.metrics.counter("queries_total").inc()
        if not result.completeness.complete:
            instance.metrics.counter("queries_incomplete").inc()
        instance.metrics.histogram("query.latency_ms").observe(record.latency_ms)
        instance.metrics.histogram("query.queue_ms").observe(record.queue_ms)
        instance.metrics.gauge("busy_ms").set(instance.busy_ms)
        if self.slo is not None:
            self.slo.observe_query(
                query_hash(query_text),
                record.latency_ms,
                result.completeness,
                counters=result.stats.counters(),
                cache_counters=result.stats.cache_counters(),
                plan_epoch=self.engine.catalog.version,
            )
        return record

    def offer(
        self,
        query_text: str,
        arrival_ms: float,
        policy: PartialResultPolicy | None = None,
        priority: Priority = Priority.NORMAL,
    ) -> CompletedQuery | RejectedQuery:
        """Like :meth:`submit`, but a refusal returns a record instead
        of raising — the natural interface for open-loop drivers that
        must keep the arrival process going."""
        try:
            return self.submit(query_text, arrival_ms, policy, priority)
        except QueryRejected as error:
            record = RejectedQuery(arrival_ms, Priority(priority), error)
            self.rejected.append(record)
            return record

    def run_schedule(
        self, queries: list[tuple[float, str]], policy=None
    ) -> list[CompletedQuery]:
        """Dispatch a (arrival_ms, query_text) schedule in arrival order."""
        return [
            self.submit(text, arrival, policy)
            for arrival, text in sorted(queries, key=lambda q: q[0])
        ]

    # -- reporting -----------------------------------------------------------------

    def latencies(self) -> list[float]:
        return [record.latency_ms for record in self.completed]

    def percentile_latency(self, fraction: float) -> float:
        """Nearest-rank latency percentile.

        Delegates to the canonical :func:`repro.observability.metrics.
        percentile` so the cluster, the metrics registry, and the
        benchmark tables all report the same statistic.  (The previous
        truncating-index version was off by one at exact rank
        boundaries — the p50 of two values came back as the max.)
        """
        return percentile(self.latencies(), fraction)

    def latency_summary(self) -> dict[str, float]:
        """Canonical latency digest for the whole cluster."""
        values = self.latencies()
        return {
            "count": len(values),
            "p50_ms": percentile(values, 0.50),
            "p95_ms": percentile(values, 0.95),
            "p99_ms": percentile(values, 0.99),
            "max_ms": max(values) if values else 0.0,
        }

    def merged_metrics(self) -> MetricsRegistry:
        """Per-instance registries folded into one fleet registry."""
        return merge_registries(
            instance.metrics for instance in self.instances
        )

    def fleet_snapshot(self) -> dict[str, Any]:
        """Deterministic fleet view: merged metrics plus instance count."""
        return {
            "instances": len(self.instances),
            "merged": self.merged_metrics().snapshot(),
        }

    def fleet_queue_depth(self, now_ms: float | None = None) -> int:
        """How many instances are busy past ``now_ms`` (default: the
        engine clock's now) — the fleet's instantaneous backlog width."""
        now = now_ms if now_ms is not None else self.engine.clock.now
        return sum(1 for i in self.instances if i.free_at_ms > now)

    def fleet_queue_wait_ms(self, now_ms: float | None = None) -> float:
        """Total backlog depth in virtual milliseconds across instances."""
        now = now_ms if now_ms is not None else self.engine.clock.now
        return sum(max(0.0, i.free_at_ms - now) for i in self.instances)

    def overload_snapshot(self, now_ms: float | None = None) -> dict[str, Any]:
        """The cluster's overload-protection view (monitoring)."""
        snapshot: dict[str, Any] = {
            "completed": len(self.completed),
            "rejected": len(self.rejected),
            "rerouted": self.rerouted,
            "queue_depth": self.fleet_queue_depth(now_ms),
            "queue_wait_ms": self.fleet_queue_wait_ms(now_ms),
        }
        if self.admission is not None:
            snapshot["admission"] = self.admission.snapshot()
        if self.shedder is not None:
            snapshot["shedder"] = self.shedder.snapshot()
        return snapshot

    def makespan_ms(self) -> float:
        if not self.completed:
            return 0.0
        start = min(record.arrival_ms for record in self.completed)
        end = max(record.completion_ms for record in self.completed)
        return end - start

    def throughput_qps(self) -> float:
        span = self.makespan_ms()
        if span <= 0:
            return 0.0
        return len(self.completed) / (span / 1000.0)

"""E13 — fleet SLOs: error budgets, alerting, and regression detection.

The observability subsystem's operational layer makes three promises,
each demonstrated deterministically under the virtual clock:

* **regression detection** — slowing one source (the erp backend of
  the ``stock`` relation) fires a latency-regression alert naming the
  affected ``query_hash`` while queries over other sources stay green;
* **error budgets** — injected faults trip a circuit breaker, burn the
  availability error budget, and drive ``breaker_open``/``slo_breach``
  alerts through full fire -> resolve transitions once the source
  recovers and the bad observations age out of the SLO window;
* **zero overhead** — with SLO tracking disabled the engine runs
  byte-identically; with it enabled, results, virtual time, and the
  determinism counters are all unchanged (evaluation reads the clock,
  never advances it).

Artifacts: ``BENCH_e13_slo_alerting.json`` plus the JSON SLO report
``SLO_e13_slo_alerting.json`` (written via ``SloMonitor.write_report``)
— CI uploads both next to the ``BENCH``/``TRACE`` files.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import RESULTS_DIR, BenchStats, print_table, write_bench_json

from repro import (
    BreakerConfig,
    Catalog,
    FaultModel,
    NetworkModel,
    NimbleEngine,
    RegressionDetector,
    ResiliencePolicy,
    RetryPolicy,
    SimClock,
    SloPolicy,
    SloTracker,
    SourceRegistry,
    XMLSource,
)
from repro.admin import SloMonitor
from repro.observability import query_hash
from repro.workloads import make_website_workload

STOCK_QUERY = (
    'WHERE <s><sku>$s</sku><price>$p</price></s> IN "stock" '
    "CONSTRUCT <r sku=$s>$p</r>"
)
SHIPPING_QUERY = (
    'WHERE <t><sku>$s</sku><ship_days>$d</ship_days></t> '
    'IN "shipping_estimate" CONSTRUCT <r sku=$s>$d</r>'
)

#: queries for the on/off equivalence section (the E12 mix)
EQUIVALENCE_QUERIES = [STOCK_QUERY, SHIPPING_QUERY] * 5

BASELINE_RUNS = 8
REGRESSED_RUNS = 4
SLOWDOWN_FACTOR = 6.0

BENCH_STATS = BenchStats()


# -- (a) latency regression names the affected query hash --------------------


def run_regression_section() -> dict:
    workload = make_website_workload(40, seed=23, extended=True)
    clock = workload.registry.clock
    detector = RegressionDetector(
        clock, factor=2.0, window_ms=30_000.0, min_baseline=6, min_current=3
    )
    tracker = SloTracker(clock, detector=detector)
    engine = NimbleEngine(workload.catalog, slo=tracker)
    monitor = SloMonitor(engine)

    stock_hash = query_hash(STOCK_QUERY)
    shipping_hash = query_hash(SHIPPING_QUERY)

    for _ in range(BASELINE_RUNS):
        BENCH_STATS.absorb(engine.query(STOCK_QUERY))
        BENCH_STATS.absorb(engine.query(SHIPPING_QUERY))
        clock.advance(250.0)
    quiet = detector.regressions()

    # slow only the erp source (the "stock" relation's backend)
    workload.registry.get("erp").network.latency_ms *= SLOWDOWN_FACTOR
    for _ in range(REGRESSED_RUNS):
        BENCH_STATS.absorb(engine.query(STOCK_QUERY))
        BENCH_STATS.absorb(engine.query(SHIPPING_QUERY))
        clock.advance(250.0)

    regressions = detector.regressions()
    transitions = monitor.evaluate()
    return {
        "quiet_before_slowdown": len(quiet),
        "regressed_hashes": [r.query_hash for r in regressions],
        "stock_hash": stock_hash,
        "shipping_hash": shipping_hash,
        "suspected_causes": [
            cause for r in regressions for cause in r.suspected_causes
        ],
        "alert_keys": [
            t.key for t in transitions if t.rule == "latency_regression"
        ],
    }


# -- (b) faults burn the budget; breaker alerts fire and resolve -------------

N_SOURCES = 3
WINDOW_MS = 20_000.0


def build_resilient_engine() -> tuple[NimbleEngine, SloMonitor, str]:
    clock = SimClock()
    registry = SourceRegistry(clock)
    catalog = Catalog(registry)
    for index in range(N_SOURCES):
        doc = (
            f"<feed><item><v>x{index}</v></item>"
            f"<item><v>y{index}</v></item></feed>"
        )
        registry.register(
            XMLSource(
                f"s{index}",
                {"data": doc},
                network=NetworkModel(latency_ms=8.0 + index, per_row_ms=0.2),
            )
        )
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=2, base_backoff_ms=5.0, seed=41),
        breaker=BreakerConfig(window=8, failure_threshold=0.5,
                              min_calls=4, cooldown_ms=2_000.0),
    )
    tracker = SloTracker(clock, policies=[
        SloPolicy("availability", "availability", 0.9, window_ms=WINDOW_MS),
    ])
    engine = NimbleEngine(catalog, resilience=resilience, slo=tracker)
    clauses = ", ".join(
        f'<item><v>$v{i}</v></item> IN "s{i}.data"' for i in range(N_SOURCES)
    )
    template = "".join(f"<c{i}>$v{i}</c{i}>" for i in range(N_SOURCES))
    query = f"WHERE {clauses} CONSTRUCT <all>{template}</all>"
    return engine, SloMonitor(engine), query


def run_budget_section() -> dict:
    engine, monitor, query = build_resilient_engine()
    clock = engine.clock
    registry = engine.catalog.registry
    events: list[tuple[str, str, str]] = []

    def step(n: int, advance_ms: float = 500.0) -> None:
        for _ in range(n):
            clock.advance(advance_ms)
            BENCH_STATS.absorb(engine.query(query))
            events.extend(
                (t.rule, t.key, t.state) for t in monitor.evaluate()
            )

    def availability_status():
        return next(
            s for s in engine.slo.evaluate()
            if s.policy.name == "availability"
        )

    step(5)
    healthy = availability_status()

    registry.get("s0").faults = FaultModel(failure_rate=1.0, seed=900)
    step(6)
    burned = availability_status()
    firing = {(a.rule, a.key) for a in monitor.alerts.active()}

    # recovery: clear the faults, let the breaker cool down and close,
    # then age the bad observations out of the SLO window
    registry.get("s0").faults = None
    clock.advance(2_500.0)
    step(2)
    clock.advance(WINDOW_MS + 1_000.0)
    step(3)
    recovered = availability_status()
    return {
        "healthy_budget": healthy.budget_remaining_fraction,
        "healthy_met": healthy.met,
        "burned_budget": burned.budget_remaining_fraction,
        "burned_met": burned.met,
        "recovered_met": recovered.met,
        "fired_while_degraded": sorted(
            f"{rule}/{key}" for rule, key in firing
        ),
        "events": events,
        "still_firing": [
            f"{a.rule}/{a.key}" for a in monitor.alerts.active()
        ],
        "monitor": monitor,
    }


# -- (c) SLO tracking is free: identical simulation on and off ---------------


def run_equivalence_section() -> dict:
    def _run(enabled: bool):
        workload = make_website_workload(40, seed=23, extended=True)
        clock = workload.registry.clock
        slo = None
        if enabled:
            slo = SloTracker(clock, policies=[
                SloPolicy("availability", "availability", 0.99),
                SloPolicy("p95", "latency_p95", 500.0),
            ], detector=RegressionDetector(clock, min_baseline=3))
        engine = NimbleEngine(workload.catalog, slo=slo)
        started_virtual = clock.now
        started_wall = time.perf_counter()
        results = []
        for text in EQUIVALENCE_QUERIES:
            results.append(BENCH_STATS.absorb(engine.query(text)))
            if slo is not None:
                # evaluation mid-stream must not advance virtual time
                before = clock.now
                slo.evaluate()
                slo.detector.regressions()
                assert clock.now == before, "SLO evaluation advanced time"
        wall_ms = (time.perf_counter() - started_wall) * 1e3
        stats = results[0].stats.__class__()
        for result in results:
            stats.absorb(result.stats)
        return {
            "virtual_ms": clock.now - started_virtual,
            "wall_ms": wall_ms,
            "rows": sum(len(r.elements) for r in results),
            "counters": stats.counters(),
        }

    off = _run(enabled=False)
    on = _run(enabled=True)
    return {
        "virtual_off": off["virtual_ms"],
        "virtual_on": on["virtual_ms"],
        "rows_match": off["rows"] == on["rows"],
        "counters_match": off["counters"] == on["counters"],
        "wall_off": off["wall_ms"],
        "wall_on": on["wall_ms"],
    }


def run_experiment() -> list[list]:
    BENCH_STATS.reset()
    regression = run_regression_section()
    budget = run_budget_section()
    equivalence = run_equivalence_section()

    monitor = budget.pop("monitor")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    report_path = RESULTS_DIR / "SLO_e13_slo_alerting.json"
    monitor.write_report(report_path)
    print(f"[bench] wrote {report_path}")

    fired = [e for e in budget["events"] if e[2] == "firing"]
    resolved = [e for e in budget["events"] if e[2] == "resolved"]
    rows = [
        ["regressions before slowdown", regression["quiet_before_slowdown"],
         ""],
        ["regressed hashes", len(regression["regressed_hashes"]),
         ",".join(regression["regressed_hashes"])],
        ["stock hash flagged",
         int(regression["stock_hash"] in regression["regressed_hashes"]),
         regression["stock_hash"]],
        ["shipping hash stayed green",
         int(regression["shipping_hash"]
             not in regression["regressed_hashes"]),
         regression["shipping_hash"]],
        ["regression alert keys", len(regression["alert_keys"]),
         ",".join(regression["alert_keys"])],
        ["suspected causes", len(regression["suspected_causes"]),
         ",".join(regression["suspected_causes"])],
        ["healthy budget remaining", budget["healthy_budget"], ""],
        ["burned budget remaining", budget["burned_budget"], ""],
        ["availability met while degraded", int(budget["burned_met"]), ""],
        ["availability met after recovery", int(budget["recovered_met"]), ""],
        ["alerts fired", len(fired),
         ",".join(sorted({f"{r}/{k}" for r, k, _ in fired}))],
        ["alerts resolved", len(resolved),
         ",".join(sorted({f"{r}/{k}" for r, k, _ in resolved}))],
        ["alerts still firing", len(budget["still_firing"]),
         ",".join(budget["still_firing"])],
        ["virtual ms (slo off)", equivalence["virtual_off"], ""],
        ["virtual ms (slo on)", equivalence["virtual_on"], ""],
        ["virtual overhead ms",
         equivalence["virtual_on"] - equivalence["virtual_off"], ""],
        ["results identical", int(equivalence["rows_match"]), ""],
        ["counters identical", int(equivalence["counters_match"]), ""],
    ]
    return rows


def report():
    rows = run_experiment()
    print_table(
        "E13: SLOs, error budgets, and alerting (virtual clock)",
        ["metric", "value", "detail"],
        rows,
    )
    by_metric = {row[0]: row for row in rows}
    write_bench_json(
        "e13_slo_alerting",
        ["metric", "value", "detail"],
        rows,
        headline={
            "regressed_hashes": by_metric["regressed hashes"][1],
            "burned_budget_remaining": by_metric["burned budget remaining"][1],
            "alerts_fired": by_metric["alerts fired"][1],
            "alerts_resolved": by_metric["alerts resolved"][1],
            "virtual_overhead_ms": by_metric["virtual overhead ms"][1],
        },
        stats=BENCH_STATS,
    )
    return rows


def test_e13_slo_alerting(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_metric = {row[0]: row for row in rows}
    # (a) the slowdown names exactly the stock query's hash
    assert by_metric["regressions before slowdown"][1] == 0
    assert by_metric["stock hash flagged"][1] == 1
    assert by_metric["shipping hash stayed green"][1] == 1
    assert by_metric["regression alert keys"][1] >= 1
    # (b) faults burn the budget, alerts fire and later resolve
    assert by_metric["healthy budget remaining"][1] == 1.0
    assert by_metric["burned budget remaining"][1] < 1.0
    assert by_metric["availability met while degraded"][1] == 0
    assert by_metric["availability met after recovery"][1] == 1
    assert by_metric["alerts fired"][1] > 0
    assert by_metric["alerts resolved"][1] > 0
    assert by_metric["alerts still firing"][1] == 0
    # (c) zero virtual-time overhead, identical results and counters
    assert by_metric["virtual overhead ms"][1] == 0.0
    assert by_metric["results identical"][1] == 1
    assert by_metric["counters identical"][1] == 1
    report()


if __name__ == "__main__":
    report()

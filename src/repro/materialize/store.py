"""The local store of materialized fragment results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import MaterializationError
from repro.materialize.matching import fragment_key
from repro.materialize.policy import RefreshPolicy
from repro.sources.base import Fragment
from repro.xmldm.values import Record


@dataclass
class MaterializedView:
    """One materialized fragment: definition, rows, freshness state."""

    fragment: Fragment
    records: list[Record]
    loaded_at: float
    policy: RefreshPolicy
    invalidated: bool = False
    hits: int = 0
    refreshes: int = 0

    @property
    def key(self) -> str:
        return fragment_key(self.fragment)

    @property
    def row_count(self) -> int:
        return len(self.records)

    def is_fresh(self, now_ms: float) -> bool:
        return self.policy.is_fresh(now_ms - self.loaded_at, self.invalidated)

    def reload(self, records: list[Record], now_ms: float) -> None:
        self.records = records
        self.loaded_at = now_ms
        self.invalidated = False
        self.refreshes += 1


class LocalStore:
    """Holds materialized views under an optional row budget."""

    def __init__(self, budget_rows: int | None = None):
        self.budget_rows = budget_rows
        self._views: dict[str, MaterializedView] = {}

    def add(self, view: MaterializedView) -> MaterializedView:
        key = view.key
        if key in self._views:
            raise MaterializationError(f"fragment already materialized: {key}")
        if self.budget_rows is not None:
            if self.total_rows + view.row_count > self.budget_rows:
                raise MaterializationError(
                    f"storage budget exceeded: {self.total_rows} + "
                    f"{view.row_count} > {self.budget_rows} rows"
                )
        self._views[key] = view
        return view

    def remove(self, key: str) -> None:
        if key not in self._views:
            raise MaterializationError(f"no materialized view {key!r}")
        del self._views[key]

    def get(self, key: str) -> MaterializedView | None:
        return self._views.get(key)

    def clear(self) -> None:
        self._views.clear()

    def invalidate_source(self, source_name: str) -> int:
        """Mark every view over a source stale (data changed upstream)."""
        count = 0
        for view in self._views.values():
            if view.fragment.source == source_name:
                view.invalidated = True
                count += 1
        return count

    def apply_change(self, change, key_field: str | None,
                     now_ms: float, patch: bool = True) -> tuple[int, int, int]:
        """Scoped invalidation over materialized fragments.

        The same per-entry decision as
        :meth:`repro.cache.fragmentcache.FragmentResultCache.apply_change`
        — retain when the change provably misses the fragment, patch the
        records in place when the shape allows, otherwise mark the view
        invalidated (its next serve falls through to the source).
        Returns ``(patched, invalidated, retained)``.
        """
        from repro.cdc.scope import (
            change_key_var,
            fragment_patch,
            key_affected,
            patch_records,
        )

        patched = invalidated = retained = 0
        for view in self._views.values():
            fragment = view.fragment
            if fragment.source != change.source:
                continue
            if all(
                access.relation != change.relation
                for access in fragment.accesses
            ):
                retained += 1
                continue
            if change.op != "reset" and key_field is not None:
                key_var = change_key_var(fragment, change.relation, key_field)
                if key_var is not None and not key_affected(
                    fragment.conditions, key_var, change.key
                ):
                    retained += 1
                    continue
            applied = None
            if patch and change.op != "reset" and key_field is not None:
                plan = fragment_patch(fragment, change, key_field)
                if plan is not None:
                    applied = patch_records(view.records, plan)
            if applied is not None:
                view.records = applied
                view.loaded_at = now_ms
                view.invalidated = False
                patched += 1
            else:
                view.invalidated = True
                invalidated += 1
        return patched, invalidated, retained

    @property
    def total_rows(self) -> int:
        return sum(view.row_count for view in self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def __iter__(self) -> Iterator[MaterializedView]:
        return iter(self._views.values())

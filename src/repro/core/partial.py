"""Partial results under source unavailability (paper, section 3.4).

"It is often not acceptable in this situation to simply return an error
or an empty result ... We are designing our system to behave
intelligently in this situation by providing partial results, and
indicating to the user that the results were not complete."

The section's open question — "whether and how to allow the query to
specify behavior when data sources are unavailable, and what the default
behavior should be" — is answered here with a per-query
:class:`PartialResultPolicy`; the system default is SKIP (answer with
what is reachable, annotated).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PartialResultPolicy(enum.Enum):
    """What to do when a source is unavailable mid-query."""

    #: raise — the query fails (classical behaviour)
    FAIL = "fail"
    #: treat the source's contribution as empty and annotate the result
    SKIP = "skip"
    #: skip, unless the source is in the query's required set
    REQUIRE = "require"


@dataclass
class Completeness:
    """The annotation returned with every answer.

    ``complete`` is True only when no fragment was skipped.  A SKIP'd
    source makes the answer a *lower bound*: every returned element is
    correct, but elements may be missing (our queries are monotone —
    no negation/aggregation across sources — so lower-bound is sound).
    """

    complete: bool = True
    missing_sources: list[str] = field(default_factory=list)
    #: sources answered from a stale cache or replica (degraded reads);
    #: their rows are present, so ``complete`` stays True — but the data
    #: may be out of date, which callers see separately from "missing"
    stale_sources: list[str] = field(default_factory=list)
    #: sources whose answer came from a *hedged* backup fetch (replica
    #: raced against a slow primary).  The rows are fresh and complete —
    #: neither ``complete`` nor ``degraded`` is affected — but callers
    #: auditing data provenance can see the primary did not answer
    hedged_sources: list[str] = field(default_factory=list)
    skipped_fragments: int = 0

    def record_skip(self, source_name: str) -> None:
        self.complete = False
        self.skipped_fragments += 1
        if source_name not in self.missing_sources:
            self.missing_sources.append(source_name)

    def record_stale(self, source_name: str) -> None:
        """A source was served from stale/replica data, not skipped."""
        if source_name not in self.stale_sources:
            self.stale_sources.append(source_name)

    def record_hedged(self, source_name: str) -> None:
        """A source's answer came from the winning hedged backup."""
        if source_name not in self.hedged_sources:
            self.hedged_sources.append(source_name)

    @property
    def degraded(self) -> bool:
        """Anything short of a fully fresh, fully complete answer."""
        return not self.complete or bool(self.stale_sources)

    def merge(self, other: "Completeness") -> None:
        """Fold a sub-execution's completeness into this one."""
        if not other.complete:
            self.complete = False
        self.skipped_fragments += other.skipped_fragments
        for name in other.missing_sources:
            if name not in self.missing_sources:
                self.missing_sources.append(name)
        for name in other.stale_sources:
            if name not in self.stale_sources:
                self.stale_sources.append(name)
        for name in other.hedged_sources:
            if name not in self.hedged_sources:
                self.hedged_sources.append(name)

    def describe(self) -> str:
        stale = ""
        if self.stale_sources:
            stale = " (stale: " + ", ".join(self.stale_sources) + ")"
        if self.complete:
            return "complete" + stale
        return (
            "INCOMPLETE (lower bound): missing "
            + ", ".join(self.missing_sources)
            + stale
        )

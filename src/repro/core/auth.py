"""Authentication/authorization for the lens front end."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import AuthError


@dataclass
class User:
    """A front-end principal with roles."""

    name: str
    roles: frozenset[str] = frozenset()
    password_hash: str = ""

    @staticmethod
    def hash_password(password: str) -> str:
        return hashlib.sha256(password.encode("utf-8")).hexdigest()

    @classmethod
    def create(cls, name: str, password: str, roles: set[str] | None = None) -> "User":
        return cls(name, frozenset(roles or ()), cls.hash_password(password))

    def check_password(self, password: str) -> bool:
        return self.password_hash == self.hash_password(password)


class AccessController:
    """Users and per-lens role requirements.

    A lens "contains ... authentication information" (section 2.1): the
    lens names the roles allowed to invoke it; the controller verifies
    credentials and role membership.
    """

    def __init__(self) -> None:
        self._users: dict[str, User] = {}

    def add_user(self, name: str, password: str, roles: set[str] | None = None) -> User:
        if name in self._users:
            raise AuthError(f"user {name!r} already exists")
        user = User.create(name, password, roles)
        self._users[name] = user
        return user

    def authenticate(self, name: str, password: str) -> User:
        user = self._users.get(name)
        if user is None or not user.check_password(password):
            raise AuthError("invalid credentials")
        return user

    def authorize(self, user: User, required_roles: frozenset[str]) -> None:
        """Raise unless the user holds at least one required role."""
        if required_roles and not (user.roles & required_roles):
            raise AuthError(
                f"user {user.name!r} lacks required roles "
                f"{sorted(required_roles)}"
            )

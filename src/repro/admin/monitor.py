"""Source health and cache health monitoring for the management tools."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.simtime import SimClock
from repro.sources.registry import SourceRegistry


@dataclass
class SourceHealth:
    """Probe history of one source."""

    name: str
    probes: int = 0
    up_probes: int = 0
    last_up_ms: float | None = None
    last_down_ms: float | None = None
    currently_up: bool = True

    @property
    def uptime_fraction(self) -> float:
        return self.up_probes / self.probes if self.probes else 1.0


class HealthMonitor:
    """Periodically probes every registered source's availability.

    Probes are explicit (``probe_all``) so tests and the console control
    when virtual time advances; real deployments would run this on a
    timer.
    """

    def __init__(self, registry: SourceRegistry, clock: SimClock | None = None):
        self.registry = registry
        self.clock = clock or registry.clock
        self.health: dict[str, SourceHealth] = {}

    def probe_all(self) -> dict[str, bool]:
        """Probe every source once; returns name -> up?."""
        outcome = {}
        now = self.clock.now
        for source in self.registry:
            record = self.health.setdefault(source.name, SourceHealth(source.name))
            up = source.available()
            record.probes += 1
            record.currently_up = up
            if up:
                record.up_probes += 1
                record.last_up_ms = now
            else:
                record.last_down_ms = now
            outcome[source.name] = up
        return outcome

    def watch(self, duration_ms: float, interval_ms: float = 1_000.0) -> None:
        """Advance virtual time, probing on an interval."""
        elapsed = 0.0
        while elapsed < duration_ms:
            self.clock.advance(interval_ms)
            elapsed += interval_ms
            self.probe_all()

    def unhealthy(self, threshold: float = 0.9) -> list[SourceHealth]:
        """Sources whose observed uptime is below ``threshold``."""
        return [
            record
            for record in self.health.values()
            if record.uptime_fraction < threshold
        ]


class CacheMonitor:
    """Surfaces an engine's caching layers for the management console.

    The paper's management tools "enable specification of which data
    sources ... should be materialized"; operating the on-demand layer
    needs the complementary read side — occupancy, hit rates, and which
    sources dominate the budget.
    """

    def __init__(self, engine):
        self.engine = engine

    def snapshot(self) -> dict[str, Any]:
        """One dict of fragment-cache and plan-cache health."""
        engine = self.engine
        report: dict[str, Any] = {
            "plan_cache_entries": len(engine._plan_cache),
            "plan_cache_hits": engine.plan_cache_hits,
            "plan_cache_misses": engine.plan_cache_misses,
        }
        cache = engine.fragment_cache
        if cache is None:
            report["fragment_cache"] = None
            return report
        summary = cache.summary()
        summary["by_source"] = cache.entries_by_source()
        summary["fill_fraction"] = (
            summary["bytes"] / summary["budget_bytes"]
            if summary["budget_bytes"] else 0.0
        )
        report["fragment_cache"] = summary
        return report

    def hot_sources(self, top: int = 5) -> list[tuple[str, int]]:
        """Sources by live cache entries, busiest first."""
        cache = self.engine.fragment_cache
        if cache is None:
            return []
        ranked = sorted(
            cache.entries_by_source().items(),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:top]


class TraceMonitor:
    """Surfaces an engine's observability state for the console.

    Companion to :class:`HealthMonitor` (is the source up?) and
    :class:`CacheMonitor` (is the cache earning its bytes?): this one
    answers *what did the last queries actually do* — recent/slow query
    log entries, the metrics snapshot, and the most recent trace, both
    as indented text and as a Chrome ``trace_event`` export.
    """

    def __init__(self, engine):
        self.engine = engine

    def snapshot(self) -> dict[str, Any]:
        """Metrics snapshot plus query-log summary in one dict."""
        engine = self.engine
        report: dict[str, Any] = {
            "tracing_enabled": engine.tracer.enabled,
            "traces_retained": (
                len(engine.tracer.traces) if engine.tracer.enabled else 0
            ),
        }
        report["metrics"] = (
            engine.metrics.snapshot() if engine.metrics is not None else None
        )
        report["query_log"] = (
            engine.query_log.summary() if engine.query_log is not None else None
        )
        report["slow"] = [
            {
                "query_hash": record.query_hash,
                "elapsed_virtual_ms": record.elapsed_virtual_ms,
                "origins": dict(record.origins),
            }
            for record in self.slow_queries()[-5:]
        ]
        return report

    def recent_queries(self, last: int = 10) -> list[Any]:
        """The most recent query-log records, oldest first."""
        if self.engine.query_log is None:
            return []
        return self.engine.query_log.recent(last)

    def slow_queries(self) -> list[Any]:
        """Retained records that crossed the slow-query threshold."""
        if self.engine.query_log is None:
            return []
        return self.engine.query_log.slow_queries()

    def last_trace_text(self) -> str | None:
        """The most recent trace rendered as indented text, or None."""
        from repro.observability.tracing import format_trace

        tracer = self.engine.tracer
        if not tracer.enabled or tracer.last_trace is None:
            return None
        return format_trace(tracer.last_trace)

    def export_chrome_trace(self, path) -> int:
        """Write retained traces as a Chrome ``trace_event`` file.

        Returns the number of traces exported (0 writes nothing).
        """
        from repro.observability.export import write_chrome_trace

        tracer = self.engine.tracer
        if not tracer.enabled or not tracer.traces:
            return 0
        write_chrome_trace(path, tracer.traces)
        return len(tracer.traces)


class SloMonitor:
    """Surfaces an engine's SLO posture for the console.

    Fourth of the monitors: where :class:`TraceMonitor` answers *what
    did the last queries do*, this one answers *are we keeping our
    promises* — policy compliance and error budgets from the engine's
    :class:`~repro.observability.slo.SloTracker`, latency regressions
    from its detector, and fire/resolve alerting through an
    :class:`~repro.observability.alerts.AlertManager` (the stock rule
    set is installed when none is supplied).
    """

    def __init__(self, engine, alerts=None):
        from repro.observability.alerts import AlertManager, default_rules

        self.engine = engine
        if alerts is None and engine.slo is not None:
            alerts = AlertManager(engine.clock)
            for rule in default_rules():
                alerts.add_rule(rule)
        self.alerts = alerts

    @property
    def tracker(self):
        return self.engine.slo

    def evaluation_context(self) -> dict[str, Any]:
        """The alert rules' input, assembled from the live engine."""
        context: dict[str, Any] = {
            "slo_statuses": [],
            "regressions": [],
            "breakers": {},
        }
        tracker = self.tracker
        if tracker is not None:
            context["slo_statuses"] = tracker.evaluate()
            if tracker.detector is not None:
                context["regressions"] = tracker.detector.regressions()
        resilient = getattr(self.engine, "resilient", None)
        if resilient is not None:
            context["breakers"] = {
                name: breaker.state.value
                for name, breaker in sorted(resilient.breakers.items())
            }
        shedder = getattr(self.engine, "shedder", None)
        if shedder is not None:
            context["overload"] = shedder.snapshot()
        return context

    def evaluate(self) -> list[Any]:
        """Run one alerting pass; returns the fire/resolve transitions."""
        if self.alerts is None:
            return []
        return self.alerts.evaluate(self.evaluation_context())

    def snapshot(self) -> dict[str, Any]:
        """SLO statuses, regressions, and alert summary in one dict."""
        tracker = self.tracker
        report: dict[str, Any] = {
            "slo_enabled": tracker is not None,
            "statuses": [],
            "regressions": [],
        }
        if tracker is not None:
            report["summary"] = tracker.summary()
            report["statuses"] = [
                status.as_dict() for status in tracker.evaluate()
            ]
            if tracker.detector is not None:
                report["regressions"] = [
                    regression.as_dict()
                    for regression in tracker.detector.regressions()
                ]
        if self.alerts is not None:
            report["alerts"] = self.alerts.summary()
            report["active_alerts"] = [
                alert.as_dict() for alert in self.alerts.active()
            ]
        return report

    def write_report(self, path) -> Any:
        """Write the JSON SLO report artifact; returns the path."""
        from repro.observability.aggregate import write_slo_report

        registries = []
        if self.engine.metrics is not None:
            registries.append(self.engine.metrics)
        return write_slo_report(
            path,
            tracker=self.tracker,
            alerts=self.alerts,
            registries=registries,
            clock_ms=self.engine.clock.now,
        )


class OverloadMonitor:
    """Surfaces the overload-protection layer for the console.

    Fifth of the monitors: where :class:`SloMonitor` answers *are we
    keeping our promises*, this one answers *what are we doing about it
    when we cannot* — the admission controller's token pool and queues,
    the load shedder's brownout rung and shed counts, the hedging
    policy's knobs, and (when dispatching through a cluster) the fleet's
    backlog and rejection tallies.
    """

    def __init__(self, engine, cluster=None):
        self.engine = engine
        self.cluster = cluster

    def snapshot(self) -> dict[str, Any]:
        """Admission, shedding, hedging, and fleet state in one dict."""
        engine = self.engine
        report: dict[str, Any] = {
            "admission": None,
            "shedder": None,
            "hedging": None,
        }
        admission = getattr(engine, "admission", None)
        if admission is not None:
            report["admission"] = admission.snapshot()
        shedder = getattr(engine, "shedder", None)
        if shedder is not None:
            report["shedder"] = shedder.snapshot()
        hedging = getattr(engine, "hedging", None)
        if hedging is not None:
            report["hedging"] = {
                "enabled": hedging.enabled,
                "delay_factor": hedging.delay_factor,
                "min_delay_ms": hedging.min_delay_ms,
                "max_delay_ms": hedging.max_delay_ms,
                "min_samples": hedging.min_samples,
            }
        if engine.metrics is not None:
            snapshot = engine.metrics.snapshot()
            report["queries_rejected"] = (
                snapshot.get("counters", {}).get("queries_rejected", 0)
            )
            report["brownout_level_gauge"] = (
                snapshot.get("gauges", {}).get("overload.brownout_level")
            )
        if self.cluster is not None:
            report["cluster"] = self.cluster.overload_snapshot()
        return report


class FreshnessMonitor:
    """Per-view refresh lag of the incremental maintenance layer.

    Two complementary lag measures per maintained view: ``seq_lag``, how
    many change records its sources have emitted past the view's
    high-water marks (work pending), and ``staleness_ms``, the
    virtual-time age of the oldest unapplied change (how long the view
    has been behind).  Both are zero for a view in sync with its feeds.
    """

    def __init__(self, engine):
        self.engine = engine

    def snapshot(self) -> dict[str, Any]:
        engine = self.engine
        report: dict[str, Any] = {
            "enabled": engine.incremental is not None,
            "views": {},
            "feeds": {},
            "counters": engine.cdc_stats.cdc_counters(),
        }
        for source in engine.catalog.registry:
            if source.changelog is not None:
                report["feeds"][source.name] = source.changelog.latest_seq
        if engine.incremental is not None:
            report["views"] = engine.incremental.lag(engine.clock.now)
        return report

    def worst_staleness_ms(self) -> float:
        """The most stale any maintained view currently is."""
        views = self.snapshot()["views"]
        return max(
            (entry["staleness_ms"] for entry in views.values()), default=0.0
        )

    def export_gauges(self, registry=None):
        """Publish freshness lineage as gauges; returns the registry.

        Per maintained view: ``freshness.view.<name>.seq_lag`` and
        ``.staleness_ms``; per CDC feed: ``cdc.<source>.head_seq`` and
        ``.applied_seq`` (the engine's version-vector entry); plus
        ``freshness.worst_staleness_ms`` and engine-lifetime
        ``provenance.origin.<kind>`` serve counts.  Defaults to the
        engine's own metrics registry (a fresh one when the engine has
        none), so the gauges flow through the Prometheus exposition and
        round-trip via ``parse_exposition``.
        """
        from repro.observability.metrics import MetricsRegistry

        engine = self.engine
        if registry is None:
            registry = (engine.metrics if engine.metrics is not None
                        else MetricsRegistry())
        report = self.snapshot()
        registry.gauge("freshness.worst_staleness_ms").set(
            max((entry["staleness_ms"]
                 for entry in report["views"].values()), default=0.0)
        )
        for name, entry in sorted(report["views"].items()):
            registry.gauge(f"freshness.view.{name}.seq_lag").set(
                entry["seq_lag"]
            )
            registry.gauge(f"freshness.view.{name}.staleness_ms").set(
                entry["staleness_ms"]
            )
        for source, head in sorted(report["feeds"].items()):
            registry.gauge(f"cdc.{source}.head_seq").set(head)
            registry.gauge(f"cdc.{source}.applied_seq").set(
                engine._cdc_cache_seq.get(source, 0)
            )
        for kind, count in sorted(
            getattr(engine, "origin_totals", {}).items()
        ):
            registry.gauge(f"provenance.origin.{kind}").set(count)
        return registry

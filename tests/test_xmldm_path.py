"""Unit tests for the navigation path language."""

import pytest

from repro.errors import PathSyntaxError
from repro.xmldm.parser import parse_document
from repro.xmldm.path import Path, evaluate_path


@pytest.fixture
def doc():
    return parse_document(
        """<bib>
          <book lang="en" id="b1"><title>Data</title><year>2000</year>
            <author>Abiteboul</author><author>Buneman</author></book>
          <book lang="fr" id="b2"><title>Deux</title><year>1999</year>
            <author>Cluet</author></book>
          <journal><title>TODS</title></journal>
        </bib>"""
    )


def texts(results):
    return [r.text_content() if hasattr(r, "text_content") else r for r in results]


class TestSteps:
    def test_child_step(self, doc):
        assert len(evaluate_path("book", doc.root)) == 2

    def test_chained_children(self, doc):
        assert texts(evaluate_path("book/title", doc)) == ["Data", "Deux"]

    def test_descendant_double_slash(self, doc):
        assert texts(evaluate_path("//title", doc)) == ["Data", "Deux", "TODS"]

    def test_wildcard(self, doc):
        children = evaluate_path("*", doc.root)
        assert [e.tag for e in children] == ["book", "book", "journal"]

    def test_attribute_access(self, doc):
        assert evaluate_path("//book/@lang", doc) == ["en", "fr"]

    def test_attribute_wildcard(self, doc):
        values = evaluate_path("book[1]/@*", doc.root)
        assert set(values) == {"en", "b1"}

    def test_text_function(self, doc):
        assert evaluate_path("//title/text()", doc) == ["Data", "Deux", "TODS"]

    def test_parent_dotdot(self, doc):
        parents = evaluate_path("//year/..", doc)
        assert [p.tag for p in parents] == ["book", "book"]

    def test_self_dot(self, doc):
        assert evaluate_path(".", doc.root) == [doc.root]

    def test_absolute_path(self, doc):
        book = doc.root.first_child("book")
        assert texts(evaluate_path("/bib/journal/title", book)) == ["TODS"]

    def test_absolute_descendant(self, doc):
        book = doc.root.first_child("book")
        assert len(evaluate_path("//book", book)) == 2


class TestAxes:
    def test_following_sibling(self, doc):
        siblings = evaluate_path("book[1]/following-sibling::*", doc.root)
        assert [e.tag for e in siblings] == ["book", "journal"]

    def test_preceding_sibling_in_document_order(self, doc):
        prior = evaluate_path("journal/preceding-sibling::book", doc.root)
        assert [e.attributes["id"] for e in prior] == ["b1", "b2"]

    def test_ancestor(self, doc):
        ancestors = evaluate_path("//author/ancestor::bib", doc)
        assert len(ancestors) == 1

    def test_ancestor_or_self(self, doc):
        results = evaluate_path("//book[1]/ancestor-or-self::*", doc)
        assert {e.tag for e in results} == {"bib", "book"}

    def test_descendant_axis_explicit(self, doc):
        assert len(evaluate_path("descendant::author", doc.root)) == 3

    def test_parent_axis_named(self, doc):
        assert evaluate_path("//title/parent::journal", doc)[0].tag == "journal"


class TestPredicates:
    def test_position(self, doc):
        assert texts(evaluate_path("book[2]/title", doc.root)) == ["Deux"]

    def test_attribute_equality(self, doc):
        assert texts(evaluate_path("//book[@lang='en']/title", doc)) == ["Data"]

    def test_child_value_equality(self, doc):
        assert evaluate_path("//book[year='1999']", doc)[0].attributes["id"] == "b2"

    def test_numeric_comparison_literal(self, doc):
        assert evaluate_path("//book[year=2000]", doc)[0].attributes["id"] == "b1"

    def test_existence(self, doc):
        assert len(evaluate_path("//book[author]", doc)) == 2
        assert len(evaluate_path("//journal[author]", doc)) == 0

    def test_stacked_predicates(self, doc):
        results = evaluate_path("//book[author][1]", doc)
        assert len(results) == 1


class TestResultProperties:
    def test_document_order_and_dedup(self, doc):
        # author appears under both books; union via two path heads
        results = evaluate_path("//book/author", doc)
        orders = [r.document_order for r in results]
        assert orders == sorted(orders)
        assert len(set(id(r) for r in results)) == len(results)


class TestSyntaxErrors:
    @pytest.mark.parametrize("text", ["", "//", "a//", "a[", "a[]", "a[@]", "a[x=]" ])
    def test_bad_paths(self, text):
        with pytest.raises(PathSyntaxError):
            Path.parse(text)

    def test_parse_is_reusable(self, doc):
        path = Path.parse("//title")
        assert len(path.evaluate(doc)) == 3
        assert len(path.evaluate(doc)) == 3

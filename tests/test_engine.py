"""End-to-end tests of the integration engine."""

import pytest

from repro.core import NimbleEngine, PartialResultPolicy
from repro.errors import SourceUnavailableError
from repro.materialize import MaterializationManager, RefreshPolicy
from repro.mediator.schema import MediatedSchema
from repro.sources import AvailabilityModel, FlakySource, XMLSource
from repro.xmldm import serialize


@pytest.fixture
def engine(catalog):
    return NimbleEngine(catalog)


class TestBasicQueries:
    def test_relational_query(self, engine):
        result = engine.query(
            'WHERE <c><name>$n</name><city>$c</city></c> IN "customers", '
            '$c = "Seattle" CONSTRUCT <hit>$n</hit> ORDER BY $n'
        )
        assert [e.text_content() for e in result.elements] == ["Ann", "Cam"]
        assert result.completeness.complete

    def test_xml_document_query(self, engine):
        result = engine.query(
            'WHERE <book year=$y><title>$t</title></book> IN "library.books", '
            "$y > 1995 CONSTRUCT <r>$t</r> ORDER BY $t"
        )
        assert [e.text_content() for e in result.elements] == [
            "Data on the Web",
            "XML Handbook",
        ]

    def test_cross_source_join(self, engine):
        result = engine.query(
            'WHERE <c><name>$n</name></c> IN "customers", '
            '<book><author>$n</author><title>$t</title></book> '
            'IN "library.books" CONSTRUCT <match><n>$n</n></match>'
        )
        # no author shares a name with a CRM customer
        assert result.elements == []

    def test_same_source_join_is_one_fragment(self, engine):
        result = engine.query(
            'WHERE <c><id>$i</id><name>$n</name></c> IN "customers", '
            '<o><cust_id>$i</cust_id><total>$t</total></o> IN "orders", '
            "$t > 50 CONSTRUCT <big><name>$n</name></big>"
        )
        assert [e.text_content() for e in result.elements] == ["Ann"]
        assert result.stats.fragments_executed == 1
        assert result.stats.rows_transferred == 1  # pushdown did its job

    def test_dependent_join_through_endpoint(self, engine):
        result = engine.query(
            'WHERE <c><name>$n</name><tier>$t</tier></c> IN "customers", '
            '<s><name>$n</name><score>$sc</score></s> IN "credit_scores", '
            "$t = 1 CONSTRUCT <r name=$n><score>$sc</score></r>"
        )
        assert len(result.elements) == 2
        assert result.stats.remote_calls == 3  # 1 fragment + 2 endpoint calls

    def test_explain_shows_fragments(self, engine):
        plan = engine.explain(
            'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
        )
        assert "FragmentScan" in plan

    def test_limit_through_engine(self, engine):
        result = engine.query(
            'WHERE <c><name>$n</name></c> IN "customers" '
            "CONSTRUCT <r>$n</r> ORDER BY $n LIMIT 2"
        )
        assert [e.text_content() for e in result.elements] == ["Ann", "Bob"]

    def test_aggregates_through_engine(self, engine):
        result = engine.query(
            'WHERE <c><city>$c</city><tier>$t</tier></c> IN "customers" '
            "CONSTRUCT <city name=$c><n>count($t)</n><best>min($t)</best></city>"
        )
        by_city = {e.attributes["name"]: e for e in result.elements}
        assert by_city["Seattle"].first_child("n").text_content() == "2"
        assert by_city["Seattle"].first_child("best").text_content() == "1"

    def test_stats_track_virtual_time(self, engine):
        result = engine.query(
            'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
        )
        assert result.stats.elapsed_virtual_ms >= 40.0  # crm latency


class TestHierarchicalSchemas:
    def test_view_over_view(self, engine, catalog):
        base = MediatedSchema("base")
        base.define_view(
            "seattle",
            'WHERE <c><id>$i</id><name>$n</name><city>$c</city></c> '
            'IN "customers", $c = "Seattle" '
            "CONSTRUCT <s><id>$i</id><name>$n</name></s>",
        )
        catalog.add_schema(base)
        top = MediatedSchema("top")
        top.define_view(
            "seattle_names",
            'WHERE <s><name>$n</name></s> IN "seattle" CONSTRUCT <n>$n</n>',
        )
        catalog.add_schema(top)
        result = engine.query(
            'WHERE <n>$x</n> IN "seattle_names" CONSTRUCT <out>$x</out> '
            "ORDER BY $x"
        )
        assert [e.text_content() for e in result.elements] == ["Ann", "Cam"]

    def test_view_memoized_within_query(self, engine, catalog):
        schema = MediatedSchema("m")
        schema.define_view(
            "v", 'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <x>$n</x>'
        )
        catalog.add_schema(schema)
        result = engine.query(
            'WHERE <x>$a</x> IN "v", <x>$b</x> IN "v" '
            "CONSTRUCT <pair><a>$a</a><b>$b</b></pair>"
        )
        # the view executed once (one fragment), not twice
        assert result.stats.fragments_executed == 1
        assert len(result.elements) == 16


class TestPartialResults:
    @pytest.fixture
    def flaky_catalog(self, catalog):
        registry = catalog.registry
        offline = FlakySource(
            XMLSource("archive", {"old": "<r><item><v>1</v></item></r>"}),
            AvailabilityModel(availability=0.99),
        )
        registry.register(offline)
        offline.force_offline()
        catalog.map_relation("archive_items", "archive", "old")
        return catalog

    def union_query(self):
        return (
            'WHERE <c><name>$n</name></c> IN "customers", '
            '<item><v>$v</v></item> IN "archive_items" '
            "CONSTRUCT <r><n>$n</n><v>$v</v></r>"
        )

    def test_fail_policy_raises(self, flaky_catalog):
        engine = NimbleEngine(flaky_catalog,
                              default_policy=PartialResultPolicy.FAIL)
        with pytest.raises(SourceUnavailableError):
            engine.query(self.union_query())

    def test_skip_policy_annotates(self, flaky_catalog):
        engine = NimbleEngine(flaky_catalog)
        result = engine.query(self.union_query())
        assert not result.completeness.complete
        assert result.completeness.missing_sources == ["archive"]
        assert result.stats.fragments_skipped == 1

    def test_skip_keeps_reachable_data(self, flaky_catalog):
        engine = NimbleEngine(flaky_catalog)
        result = engine.query(
            'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
        )
        assert len(result.elements) == 4
        assert result.completeness.complete

    def test_require_policy(self, flaky_catalog):
        engine = NimbleEngine(flaky_catalog)
        with pytest.raises(SourceUnavailableError):
            engine.query(self.union_query(), required_sources={"archive"})
        # requiring a healthy source is fine
        result = engine.query(self.union_query(), required_sources={"crm"})
        assert not result.completeness.complete

    def test_completeness_describe(self, flaky_catalog):
        engine = NimbleEngine(flaky_catalog)
        result = engine.query(self.union_query())
        assert "archive" in result.completeness.describe()
        assert "INCOMPLETE" in result.completeness.describe()


class TestMaterializationIntegration:
    def test_cache_hit_avoids_remote_call(self, catalog, clock):
        manager = MaterializationManager(clock)
        engine = NimbleEngine(catalog, materializer=manager)
        query = (
            'WHERE <c><name>$n</name><city>$c</city></c> IN "customers", '
            '$c = "Seattle" CONSTRUCT <r>$n</r>'
        )
        first = engine.query(query)
        assert first.stats.fragments_executed == 1
        engine.materialize_query_fragments(query)
        second = engine.query(query)
        assert second.stats.fragments_from_cache == 1
        assert second.stats.fragments_executed == 0
        assert [e.text_content() for e in second.elements] == [
            e.text_content() for e in first.elements
        ]

    def test_materialized_is_faster(self, catalog, clock):
        manager = MaterializationManager(clock)
        engine = NimbleEngine(catalog, materializer=manager)
        query = (
            'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
        )
        virtual = engine.query(query).stats.elapsed_virtual_ms
        engine.materialize_query_fragments(query)
        cached = engine.query(query).stats.elapsed_virtual_ms
        assert cached < virtual / 10

    def test_ttl_expiry_goes_remote_again(self, catalog, clock):
        manager = MaterializationManager(clock)
        engine = NimbleEngine(catalog, materializer=manager)
        query = 'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
        engine.materialize_query_fragments(query, RefreshPolicy.ttl(1000.0))
        assert engine.query(query).stats.fragments_from_cache == 1
        clock.advance(2000.0)
        assert engine.query(query).stats.fragments_executed == 1

    def test_materialized_mediated_view(self, catalog, clock):
        from repro.errors import MediationError

        manager = MaterializationManager(clock)
        engine = NimbleEngine(catalog, materializer=manager)
        schema = MediatedSchema("m")
        schema.define_view(
            "seattle",
            'WHERE <c><name>$n</name><city>$c</city></c> IN "customers", '
            '$c = "Seattle" CONSTRUCT <s><name>$n</name></s>',
        )
        catalog.add_schema(schema)
        query = 'WHERE <s><name>$n</name></s> IN "seattle" CONSTRUCT <r>$n</r>'
        cold = engine.query(query)
        assert cold.stats.fragments_executed == 1
        engine.materialize_view("seattle")
        warm = engine.query(query)
        assert warm.stats.fragments_executed == 0
        assert warm.stats.fragments_from_cache == 1
        assert [e.text_content() for e in warm.elements] == [
            e.text_content() for e in cold.elements
        ]
        # refresh path: expire and re-execute
        manager.views["seattle"].policy = RefreshPolicy.ttl(10.0)
        clock.advance(100.0)
        assert engine.refresh_materialized_views() == 1
        with pytest.raises(MediationError):
            engine.materialize_view("customers")  # a mapping, not a view

    def test_subsumption_serves_narrower_query(self, catalog, clock):
        manager = MaterializationManager(clock)
        engine = NimbleEngine(catalog, materializer=manager)
        broad = 'WHERE <c><name>$n</name><tier>$t</tier></c> IN "customers" CONSTRUCT <r>$n</r>'
        engine.materialize_query_fragments(broad)
        narrow = (
            'WHERE <c><name>$n</name><tier>$t</tier></c> IN "customers", '
            "$t = 1 CONSTRUCT <r>$n</r>"
        )
        result = engine.query(narrow)
        assert result.stats.fragments_from_cache == 1
        assert {e.text_content() for e in result.elements} == {"Ann", "Cam"}

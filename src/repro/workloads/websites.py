"""The web-site publishing workload (paper, section 2).

"Another class of applications ... companies who need to build
large-scale web sites which serve information from multiple internal
sources ... they would like to provide the designers of the web site an
already integrated view of their data sources."

Three sources feed a product page:

* **catalog**   — an XML document of products with descriptions (the
  content team's export);
* **inventory** — a relational stock/pricing table (the ERP);
* **reviews**   — a parameterized endpoint returning review summaries
  per SKU (a partner service with a binding pattern).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mediator.catalog import Catalog
from repro.mediator.schema import MediatedSchema
from repro.simtime import SimClock
from repro.sources.base import NetworkModel
from repro.sources.registry import SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sources.webservice import WebServiceSource
from repro.sources.xmlfile import XMLSource
from repro.sql.database import Database
from repro.xmldm.schema import RecordType

_ADJECTIVES = ("compact", "rugged", "wireless", "ergonomic", "modular",
               "solar", "portable", "industrial")
_NOUNS = ("router", "sensor", "keyboard", "camera", "scanner", "charger",
          "drone", "speaker")
_CATEGORIES = ("networking", "peripherals", "imaging", "power")


@dataclass
class WebSiteWorkload:
    """Everything the publishing scenario needs, wired together."""

    registry: SourceRegistry
    catalog: Catalog
    clock: SimClock
    skus: list[str]


def make_website_workload(
    n_products: int = 60,
    seed: int = 7,
    catalog_latency_ms: float = 25.0,
    inventory_latency_ms: float = 40.0,
    reviews_latency_ms: float = 80.0,
    extended: bool = False,
) -> WebSiteWorkload:
    """Build registry + catalog + mediated schema for the web site.

    ``extended=True`` adds two more autonomous per-SKU sources —
    ``logistics`` (shipping estimates) and ``marketing`` (promotions) —
    so that a single page query fans out to four independent sources.
    That is the shape the parallelism experiment (E10) measures: a
    mediated view over many autonomous systems where a fetch pool pays
    the max of the latencies instead of the sum.
    """
    rng = random.Random(seed)
    clock = SimClock()
    registry = SourceRegistry(clock)

    skus = [f"SKU-{1000 + i}" for i in range(n_products)]

    # -- catalog: XML document ------------------------------------------------
    product_elements = []
    for i, sku in enumerate(skus):
        name = f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)}"
        category = _CATEGORIES[i % len(_CATEGORIES)]
        product_elements.append(
            f'<product sku="{sku}" category="{category}">'
            f"<name>{name}</name>"
            f"<description>The {name} for {category} workloads.</description>"
            "</product>"
        )
    catalog_xml = "<catalog>" + "".join(product_elements) + "</catalog>"
    xml_source = XMLSource(
        "content",
        {"products": catalog_xml},
        network=NetworkModel(latency_ms=catalog_latency_ms, per_row_ms=0.2),
    )
    registry.register(xml_source)

    # -- inventory: relational -------------------------------------------------
    inventory_db = Database("erp")
    inventory_db.execute(
        "CREATE TABLE stock (sku TEXT PRIMARY KEY, price REAL, quantity INTEGER,"
        " warehouse TEXT)"
    )
    warehouses = ("SEA", "PDX", "BOI")
    inventory_db.insert_rows(
        "stock",
        [
            [sku, round(rng.uniform(9, 499), 2), rng.randrange(0, 500),
             rng.choice(warehouses)]
            for sku in skus
        ],
    )
    inventory = RelationalSource(
        "erp",
        inventory_db,
        network=NetworkModel(latency_ms=inventory_latency_ms, per_row_ms=0.5),
    )
    registry.register(inventory)

    # -- reviews: parameterized endpoint ------------------------------------------
    review_stats = {
        sku: (round(rng.uniform(2.0, 5.0), 1), rng.randrange(0, 900))
        for sku in skus
    }

    def review_handler(inputs):
        sku = inputs["sku"]
        rating, count = review_stats.get(sku, (0.0, 0))
        return [{"rating": rating, "review_count": count}]

    reviews = WebServiceSource(
        "reviews",
        network=NetworkModel(latency_ms=reviews_latency_ms, per_row_ms=0.1),
    )
    reviews.add_endpoint(
        "summary",
        ["sku"],
        RecordType.of("summary", sku="string", rating="number",
                      review_count="number"),
        review_handler,
        estimated_rows=1,
    )
    registry.register(reviews)

    # -- mediation ---------------------------------------------------------------------
    catalog = Catalog(registry)
    catalog.map_relation("stock", "erp", "stock")
    catalog.map_relation("review_summary", "reviews", "summary")

    if extended:
        # -- logistics: shipping estimates per SKU (another ERP) -----------
        logistics_db = Database("wms")
        logistics_db.execute(
            "CREATE TABLE shipping (sku TEXT PRIMARY KEY, ship_days INTEGER,"
            " carrier TEXT)"
        )
        carriers = ("roadrunner", "blueline", "acme")
        logistics_db.insert_rows(
            "shipping",
            [[sku, rng.randrange(1, 9), rng.choice(carriers)] for sku in skus],
        )
        logistics = RelationalSource(
            "logistics",
            logistics_db,
            network=NetworkModel(latency_ms=35.0, per_row_ms=0.15),
        )
        registry.register(logistics)
        catalog.map_relation("shipping_estimate", "logistics", "shipping")

        # -- marketing: per-SKU promotion percentages ----------------------
        promo_db = Database("campaigns")
        promo_db.execute(
            "CREATE TABLE promos (sku TEXT PRIMARY KEY, discount REAL,"
            " campaign TEXT)"
        )
        campaigns = ("spring", "clearance", "loyalty", "none")
        promo_db.insert_rows(
            "promos",
            [
                [sku, round(rng.uniform(0.0, 0.4), 2), rng.choice(campaigns)]
                for sku in skus
            ],
        )
        marketing = RelationalSource(
            "marketing",
            promo_db,
            network=NetworkModel(latency_ms=30.0, per_row_ms=0.1),
        )
        registry.register(marketing)
        catalog.map_relation("promo", "marketing", "promos")

    site = MediatedSchema("site", description="The web team's integrated view")
    site.define_view(
        "product_page",
        """
        WHERE <product sku=$sku category=$cat>
                <name>$name</name>
                <description>$desc</description>
              </product> IN "content.products",
              <s><sku>$sku</sku><price>$price</price>
                 <quantity>$qty</quantity></s> IN "stock"
        CONSTRUCT <page sku=$sku>
                    <name>$name</name>
                    <category>$cat</category>
                    <description>$desc</description>
                    <price>$price</price>
                    <in_stock>$qty</in_stock>
                  </page>
        """,
        description="catalog + inventory join, one page element per SKU",
    )
    catalog.add_schema(site)
    return WebSiteWorkload(registry, catalog, clock, skus)

"""Columnar batches for the vectorized execution path.

The row path streams one :class:`~repro.algebra.tuples.BindingTuple` at
a time through the operator tree, paying Python dispatch per tuple per
operator.  The vectorized path instead moves a :class:`RecordBatch` —
a small column store: one value list per variable plus a *selection
mask* (a list of live row indices) — through the tree, so each operator
call amortizes its dispatch over ``batch_rows`` tuples.

Filters never copy columns: they produce a new batch sharing the same
column lists with a narrower ``live`` list (see the DESIGN.md decision
entry on selection masks vs copy-on-filter).

Binding tuples are heterogeneous — a variable may be absent from some
rows — so columns use the :data:`MISSING` sentinel for "no binding".
``MISSING`` is distinct from the model's NULL: NULL is a bound value,
MISSING means the variable does not appear in that row at all (and so
must not survive materialization back into tuples).
"""

from __future__ import annotations

import operator as _operator
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.algebra.tuples import BindingTuple
from repro.xmldm.values import (
    NULL,
    Null,
    _comparison_key,
    atomize,
    compare_values,
)


class _Missing:
    """Sentinel for "variable absent in this row" (not the same as NULL)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<missing>"


MISSING = _Missing()

#: default batch width when an operator falls back without a bound size
DEFAULT_BATCH_ROWS = 1024


class ColumnVector:
    """One named column: a full-length value list, possibly with MISSING."""

    __slots__ = ("name", "values")

    def __init__(self, name: str, values: list[Any]):
        self.name = name
        self.values = values

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __repr__(self) -> str:
        return f"ColumnVector({self.name}, n={len(self.values)})"


class RecordBatch:
    """A batch of binding tuples stored column-wise with a selection mask.

    ``columns`` maps variable name to a list of ``length`` values
    (:data:`MISSING` where the row has no binding).  ``live`` is the
    ascending list of selected row indices, or None meaning *all* rows —
    filters narrow ``live`` without touching the columns.
    """

    __slots__ = ("columns", "live", "length")

    def __init__(
        self,
        columns: dict[str, list[Any]],
        live: list[int] | None = None,
        length: int | None = None,
    ):
        if length is None:
            if columns:
                length = len(next(iter(columns.values())))
            elif live:
                length = (max(live) + 1) if live else 0
            else:
                length = 0
        self.columns = columns
        self.live = live
        self.length = length

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(self.columns)

    def vectors(self) -> list[ColumnVector]:
        return [ColumnVector(name, values) for name, values in self.columns.items()]

    def live_indices(self) -> Sequence[int]:
        return range(self.length) if self.live is None else self.live

    @property
    def live_count(self) -> int:
        return self.length if self.live is None else len(self.live)

    def with_live(self, live: list[int]) -> "RecordBatch":
        """Same columns, narrower selection (the mask-based filter)."""
        return RecordBatch(self.columns, live, self.length)

    def project(self, variables: Iterable[str]) -> "RecordBatch":
        """Keep only the named columns (absent names are dropped)."""
        columns = {
            var: self.columns[var] for var in variables if var in self.columns
        }
        return RecordBatch(columns, self.live, self.length)

    def row_items(self, index: int) -> list[tuple[str, Any]]:
        """Present (variable, value) pairs of one row, skipping MISSING."""
        items = []
        for var, values in self.columns.items():
            value = values[index]
            if value is not MISSING:
                items.append((var, value))
        return items

    def row_dict(self, index: int) -> dict[str, Any]:
        """One row as a plain dict of its present bindings."""
        out = {}
        for var, values in self.columns.items():
            value = values[index]
            if value is not MISSING:
                out[var] = value
        return out

    def to_tuples(self) -> Iterator[BindingTuple]:
        """Materialize the live rows back into binding tuples."""
        items = list(self.columns.items())
        for index in self.live_indices():
            row = {}
            for var, values in items:
                value = values[index]
                if value is not MISSING:
                    row[var] = value
            yield BindingTuple(row)

    def __len__(self) -> int:
        return self.live_count

    def __repr__(self) -> str:
        return (
            f"RecordBatch(vars={list(self.columns)}, rows={self.live_count}"
            f"/{self.length})"
        )


def from_tuples(rows: Sequence[BindingTuple]) -> RecordBatch:
    """Shred binding tuples into a batch (union of variables, MISSING-padded)."""
    length = len(rows)
    columns: dict[str, list[Any]] = {}
    for position, row in enumerate(rows):
        for var, value in row.as_dict().items():
            column = columns.get(var)
            if column is None:
                column = [MISSING] * length
                columns[var] = column
            column[position] = value
    return RecordBatch(columns, None, length)


def shred_records(
    records: Sequence[Any], stats: "TableStats | None" = None
) -> RecordBatch:
    """Shred source Records straight into columns (no tuple detour).

    This is the source-boundary shredding step: fragment results arrive
    as :class:`~repro.xmldm.values.Record` lists and become one column
    per field.  Heterogeneous records (legal in semi-structured data)
    pad absent fields with MISSING, matching the row path where
    ``BindingTuple(record.as_dict())`` simply lacks the binding.

    ``stats`` (when given) observes the shredded batch — column
    statistics ride along with the work shredding already does, the
    "ANALYZE for free" of the vectorized path.
    """
    length = len(records)
    batch: RecordBatch | None = None
    columns: dict[str, list[Any]]
    if length and getattr(records[0], "field_map", None) is not None:
        # homogeneous fast path: when every record binds the same field
        # set (the overwhelmingly common source-result shape), each
        # column is one C-speed comprehension over the raw field maps
        maps = [record.field_map for record in records]
        names = list(maps[0])
        width = len(names)
        if all(len(field_map) == width for field_map in maps):
            try:
                columns = {
                    name: [field_map[name] for field_map in maps]
                    for name in names
                }
                batch = RecordBatch(columns, None, length)
            except KeyError:
                pass  # same width, different names: heterogeneous after all
    if batch is None:
        columns = {}
        for position, record in enumerate(records):
            for name, value in record.items():
                column = columns.get(name)
                if column is None:
                    column = [MISSING] * length
                    columns[name] = column
                column[position] = value
        batch = RecordBatch(columns, None, length)
    if stats is not None:
        stats.observe_batch(batch)
    return batch


# -- column statistics --------------------------------------------------------


class ColumnStats:
    """Observed min/max/distinct-count/null-count of one column.

    Fed by :func:`shred_records` during batch shredding; consumed by the
    cost model (selectivity from real value distributions instead of
    folklore constants) and the shard router (skip a shard whose
    observed key bounds contradict the query's predicates).  Bounds and
    distinct counts only ever widen, so re-observing the same rows is
    idempotent and observing more rows stays sound.
    """

    __slots__ = ("rows", "nulls", "minimum", "maximum", "_distinct")

    def __init__(self):
        self.rows = 0
        self.nulls = 0
        self.minimum: Any = None
        self.maximum: Any = None
        self._distinct: set = set()

    def observe(self, value: Any) -> None:
        self.rows += 1
        if isinstance(value, Null) or value is None:
            self.nulls += 1
            return
        self._distinct.add(_comparison_key(value))
        if self.minimum is None or compare_values(value, self.minimum) < 0:
            self.minimum = value
        if self.maximum is None or compare_values(value, self.maximum) > 0:
            self.maximum = value

    @property
    def distinct(self) -> int:
        return len(self._distinct)

    def bounds(self) -> tuple[Any, Any] | None:
        """Closed [minimum, maximum] over non-null values, or None."""
        if self.minimum is None:
            return None
        return self.minimum, self.maximum

    def selectivity(self, op: str, literal: Any) -> float | None:
        """Estimated fraction of rows satisfying ``column OP literal``.

        Equality uses the uniform-distinct model (1/NDV); ranges use the
        linear-interpolation model over numeric [min, max].  None means
        the statistics cannot price this predicate (empty column,
        non-numeric range, literal of another family) — callers fall
        back to their folklore constants.
        """
        if self.rows == 0 or self.minimum is None:
            return None
        if op in ("=", "!="):
            fraction = 1.0 / max(self.distinct, 1)
            return fraction if op == "=" else 1.0 - fraction
        if op not in ("<", "<=", ">", ">="):
            return None
        if not isinstance(literal, (int, float)) or isinstance(literal, bool):
            return None
        if not isinstance(self.minimum, (int, float)):
            return None
        low, high = float(self.minimum), float(self.maximum)
        if literal <= low:
            below = 0.0
        elif literal >= high:
            below = 1.0
        else:
            below = (float(literal) - low) / (high - low)
        if op in ("<", "<="):
            return max(below, 1.0 / max(self.rows, 1))
        return max(1.0 - below, 1.0 / max(self.rows, 1))


class TableStats:
    """Per-column statistics of one fragment access shape."""

    __slots__ = ("columns", "batches")

    def __init__(self):
        self.columns: dict[str, ColumnStats] = {}
        self.batches = 0

    def observe_batch(self, batch: RecordBatch) -> None:
        self.batches += 1
        for name, values in batch.columns.items():
            column = self.columns.get(name)
            if column is None:
                column = ColumnStats()
                self.columns[name] = column
            for index in batch.live_indices():
                value = values[index]
                if value is not MISSING:
                    column.observe(value)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)


class ColumnStatsRepository:
    """All statistics one engine has gathered, keyed by access shape.

    The key is :func:`repro.materialize.matching.access_key` — accesses
    only, conditions excluded — computed by the caller so this module
    stays free of planner imports.
    """

    __slots__ = ("tables",)

    def __init__(self):
        self.tables: dict[str, TableStats] = {}

    def table(self, key: str) -> TableStats:
        stats = self.tables.get(key)
        if stats is None:
            stats = TableStats()
            self.tables[key] = stats
        return stats

    def column(self, key: str, name: str) -> ColumnStats | None:
        stats = self.tables.get(key)
        return stats.column(name) if stats is not None else None


def batches_from_rows(
    rows: Iterable[BindingTuple], batch_rows: int
) -> Iterator[RecordBatch]:
    """Chunk a tuple stream into batches (the row-path fallback bridge)."""
    if batch_rows < 1:
        raise ValueError("batch_rows must be >= 1")
    buffer: list[BindingTuple] = []
    for row in rows:
        buffer.append(row)
        if len(buffer) >= batch_rows:
            yield from_tuples(buffer)
            buffer = []
    if buffer:
        yield from_tuples(buffer)


class RowBuffer:
    """Accumulates row dicts and flushes them as full batches.

    Used by vectorized operators whose output cardinality differs from
    their input (joins, grouping): merged rows land here as plain dicts
    and leave as column batches of ``batch_rows``.
    """

    __slots__ = ("batch_rows", "_rows")

    def __init__(self, batch_rows: int):
        self.batch_rows = max(1, batch_rows)
        self._rows: list[dict[str, Any]] = []

    def append(self, row: dict[str, Any]) -> None:
        self._rows.append(row)

    @property
    def full(self) -> bool:
        return len(self._rows) >= self.batch_rows

    def drain(self) -> Iterator[RecordBatch]:
        """Yield completed batches, keeping any partial tail buffered."""
        while len(self._rows) >= self.batch_rows:
            chunk = self._rows[: self.batch_rows]
            del self._rows[: self.batch_rows]
            yield _batch_from_dicts(chunk)

    def flush(self) -> Iterator[RecordBatch]:
        """Yield everything buffered, including the partial tail."""
        yield from self.drain()
        if self._rows:
            chunk = self._rows
            self._rows = []
            yield _batch_from_dicts(chunk)


def _batch_from_dicts(rows: Sequence[dict[str, Any]]) -> RecordBatch:
    length = len(rows)
    columns: dict[str, list[Any]] = {}
    for position, row in enumerate(rows):
        for var, value in row.items():
            column = columns.get(var)
            if column is None:
                column = [MISSING] * length
                columns[var] = column
            column[position] = value
    return RecordBatch(columns, None, length)


def gather(
    sources: Sequence[tuple[RecordBatch, int]],
    order: Sequence[int],
    batch_rows: int,
) -> Iterator[RecordBatch]:
    """Re-emit (batch, row) pairs in ``order`` as fresh dense batches.

    Used by vectorized Sort: after computing a global permutation over
    buffered input batches, gather copies the selected rows out in
    sorted order, ``batch_rows`` at a time.
    """
    batch_rows = max(1, batch_rows)
    for start in range(0, len(order), batch_rows):
        chunk = order[start : start + batch_rows]
        rows = [sources[position] for position in chunk]
        length = len(rows)
        columns: dict[str, list[Any]] = {}
        for out_index, (batch, row_index) in enumerate(rows):
            for var, values in batch.columns.items():
                value = values[row_index]
                if value is MISSING:
                    continue
                column = columns.get(var)
                if column is None:
                    column = [MISSING] * length
                    columns[var] = column
                column[out_index] = value
        yield RecordBatch(columns, None, length)


class BatchCursor:
    """A movable row view over a batch, duck-typed like a BindingTuple.

    Compiled predicates and value functions only need ``get`` /
    ``__getitem__`` / ``__contains__``; pointing one cursor at
    successive live rows lets them run on the columnar path without a
    BindingTuple allocation per row.
    """

    __slots__ = ("batch", "index")

    def __init__(self, batch: RecordBatch | None = None, index: int = 0):
        self.batch = batch
        self.index = index

    def get(self, var: str, default: Any = None) -> Any:
        column = self.batch.columns.get(var)
        if column is None:
            return default
        value = column[self.index]
        return default if value is MISSING else value

    def __getitem__(self, var: str) -> Any:
        column = self.batch.columns.get(var)
        if column is not None:
            value = column[self.index]
            if value is not MISSING:
                return value
        raise KeyError(var)

    def __contains__(self, var: str) -> bool:
        column = self.batch.columns.get(var)
        return column is not None and column[self.index] is not MISSING

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(var for var, values in self.batch.columns.items()
                     if values[self.index] is not MISSING)

    def as_dict(self) -> dict[str, Any]:
        return self.batch.row_dict(self.index)


def _flex_compare(a: Any, b: Any) -> int | None:
    """The query layer's flexible comparison (numeric string coercion).

    Mirrors ``repro.query.exprs.flex_compare`` — duplicated here rather
    than imported because the algebra package must not depend on the
    query package (the query translator already imports the algebra).
    """
    a = atomize(a)
    b = atomize(b)
    if isinstance(a, Null) or isinstance(b, Null) or a is None or b is None:
        return None
    if isinstance(a, (int, float)) and isinstance(b, str):
        try:
            b = float(b)
        except ValueError:
            pass
    elif isinstance(b, (int, float)) and isinstance(a, str):
        try:
            a = float(a)
        except ValueError:
            pass
    return compare_values(a, b)


_FLEX_OPS: dict[str, Callable[[int], bool]] = {
    "=": lambda c: c == 0,
    "!=": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}

_DIRECT_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}


class ColumnPredicate:
    """A single-column comparison usable on both execution paths.

    Called with a row (BindingTuple or cursor) it behaves like a
    compiled predicate; on the vectorized path, :meth:`batch_eval` runs
    the comparison as one tight loop over the column and returns the
    surviving row indices.  Comparison semantics follow the query
    layer's flexible compare (numeric strings compare numerically);
    rows lacking the variable never match.
    """

    __slots__ = ("var", "op", "literal", "_test", "_plain_number", "_direct")

    def __init__(self, var: str, op: str, literal: Any):
        if op not in _FLEX_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.var = var
        self.op = op
        self.literal = literal
        accept = _FLEX_OPS[op]
        direct = _DIRECT_OPS[op]
        literal_value = literal
        plain_number = isinstance(literal_value, (int, float)) and not isinstance(
            literal_value, bool
        )
        self._plain_number = plain_number
        self._direct = direct

        def test(value: Any) -> bool:
            if plain_number and value.__class__ in (int, float):
                # plain-number fast path; identical ordering to the
                # flexible compare below, without the atomize round trip
                return direct(value, literal_value)
            compared = _flex_compare(value, literal_value)
            if compared is None:
                return False
            return accept(compared)

        self._test = test

    def __call__(self, row: Any) -> bool:
        value = row.get(self.var, NULL)
        return self._test(value)

    def batch_eval(self, batch: RecordBatch) -> list[int]:
        column = batch.columns.get(self.var)
        if column is None:
            return []
        indices = batch.live_indices()
        if self._plain_number:
            # inline the numeric fast path: one C-level comparison per
            # value, no per-row closure call on the hot loop
            direct = self._direct
            literal = self.literal
            test = self._test
            return [
                index
                for index in indices
                if (
                    direct(value, literal)
                    if (value := column[index]).__class__ in (int, float)
                    else value is not MISSING and test(value)
                )
            ]
        test = self._test
        return [
            index
            for index in indices
            if (value := column[index]) is not MISSING and test(value)
        ]

    def __repr__(self) -> str:
        return f"ColumnPredicate(${self.var} {self.op} {self.literal!r})"

"""Tests for overload protection: admission, brownout shedding, hedging."""

import math

import pytest

from repro.core import NimbleEngine, PartialResultPolicy
from repro.core.lens import Lens, LensServer
from repro.core.loadbalance import EngineCluster, RejectedQuery
from repro.core.partial import Completeness
from repro.admin.monitor import OverloadMonitor, SloMonitor
from repro.admin.replication import DataAdministrator
from repro.errors import OverloadError, QueryRejected, ReproError
from repro.observability.alerts import (
    AlertManager,
    default_rules,
    overload_shedding_rule,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.slo import SloPolicy, SloTracker
from repro.resilience import (
    AdmissionController,
    BrownoutLevel,
    FallbackRegistry,
    FaultModel,
    HedgePolicy,
    LoadShedder,
    Priority,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.simtime import SimClock

from tests.test_resilience import ITEMS_QUERY, build_feed, items_fragment

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the image
    HAVE_HYPOTHESIS = False


# -- helpers -------------------------------------------------------------------


def make_tracker(clock, target=0.5, window_ms=10_000.0):
    """An availability tracker whose budget is easy to burn in steps.

    With ``target=0.5`` the allowed bad fraction is 0.5, so after ten
    observations each incomplete one burns 20% of the budget.
    """
    return SloTracker(
        clock,
        policies=[SloPolicy("avail", "availability", target,
                            window_ms=window_ms)],
    )


def burn(tracker, good, bad):
    """Feed ``good`` complete and ``bad`` incomplete observations."""
    for _ in range(good):
        tracker.observe_query("q", 1.0, Completeness())
    for _ in range(bad):
        failed = Completeness()
        failed.record_skip("s")
        tracker.observe_query("q", 1.0, failed)


def make_shedder(clock, bad_of_ten=0, **kwargs):
    """A shedder whose tracker has ``bad_of_ten`` bad observations."""
    tracker = make_tracker(clock)
    burn(tracker, 10 - bad_of_ten, bad_of_ten)
    shedder = LoadShedder(tracker, min_window_queries=1, **kwargs)
    shedder.refresh()
    return shedder


# -- the error taxonomy --------------------------------------------------------


class TestErrorTaxonomy:
    def test_rejection_is_an_overload_and_repro_error(self):
        error = QueryRejected("queue full", retry_after_ms=120.0,
                              priority=int(Priority.LOW), brownout_level=4)
        assert isinstance(error, OverloadError)
        assert isinstance(error, ReproError)
        assert error.retry_after_ms == 120.0
        assert error.priority == int(Priority.LOW)
        assert error.brownout_level == 4
        assert error.reason == "queue full"
        assert "retry after 120 ms" in str(error)

    def test_exported_at_top_level(self):
        import repro

        assert repro.QueryRejected is QueryRejected
        assert repro.OverloadError is OverloadError
        assert repro.Priority is Priority


# -- admission control ---------------------------------------------------------


class TestAdmissionController:
    def test_token_pool_bounds_concurrency(self):
        controller = AdmissionController(SimClock(), max_concurrent=2)
        a = controller.admit(Priority.NORMAL)
        b = controller.admit(Priority.NORMAL)
        assert controller.in_flight == 2
        with pytest.raises(QueryRejected) as excinfo:
            controller.admit(Priority.NORMAL)
        assert "no free slot" in str(excinfo.value)
        controller.complete(a)
        c = controller.admit(Priority.NORMAL)
        controller.complete(b)
        controller.complete(c)
        assert controller.in_flight == 0
        assert controller.admitted_total == 3
        assert controller.rejected_total == 1

    def test_queue_wait_bounds_are_inverted_by_priority(self):
        controller = AdmissionController(SimClock())
        # 100 ms of projected queueing is too much for BACKGROUND
        # (bound 60 ms) but fine for HIGH (bound 800 ms)
        with pytest.raises(QueryRejected) as excinfo:
            controller.admit(Priority.BACKGROUND, projected_wait_ms=100.0)
        assert excinfo.value.retry_after_ms == 100.0
        admission = controller.admit(Priority.HIGH, projected_wait_ms=100.0)
        controller.started(admission)
        controller.complete(admission)
        assert controller.rejected_by_priority["BACKGROUND"] == 1
        assert controller.rejected_by_priority["HIGH"] == 0

    def test_critical_never_sheds_on_queue_wait(self):
        controller = AdmissionController(SimClock())
        admission = controller.admit(Priority.CRITICAL,
                                     projected_wait_ms=1e9)
        controller.complete(admission)

    def test_deadline_on_queue_rejects_up_front(self):
        controller = AdmissionController(SimClock())
        with pytest.raises(QueryRejected) as excinfo:
            controller.admit(Priority.NORMAL, projected_wait_ms=50.0,
                             deadline_ms=40.0)
        assert "deadline" in str(excinfo.value)
        assert controller.queue_timeouts == 1

    def test_queue_capacity_bounds_waiters(self):
        controller = AdmissionController(SimClock(), queue_capacity=1)
        first = controller.admit(Priority.NORMAL, projected_wait_ms=10.0)
        assert controller.queue_depth == 1
        with pytest.raises(QueryRejected) as excinfo:
            controller.admit(Priority.NORMAL, projected_wait_ms=10.0)
        assert "queue full" in str(excinfo.value)
        # a different priority has its own queue
        other = controller.admit(Priority.HIGH, projected_wait_ms=10.0)
        controller.started(first)
        assert controller.queue_depth == 1  # only HIGH still waiting
        controller.complete(first)
        controller.complete(other)
        assert controller.queue_depth == 0

    def test_cancel_and_complete_are_idempotent(self):
        controller = AdmissionController(SimClock(), max_concurrent=1)
        admission = controller.admit(Priority.NORMAL)
        controller.cancel(admission)
        controller.cancel(admission)
        controller.complete(admission)
        assert controller.in_flight == 0
        assert controller.cancelled_total == 1
        controller.complete(controller.admit(Priority.NORMAL))

    def test_snapshot_shape(self):
        controller = AdmissionController(SimClock())
        snapshot = controller.snapshot()
        assert snapshot["in_flight"] == 0
        assert snapshot["queue_depth"] == 0
        assert set(snapshot["rejected_by_priority"]) == {
            p.name for p in Priority
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(SimClock(), max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionController(SimClock(), queue_capacity=-1)


# -- the brownout ladder -------------------------------------------------------


class TestLoadShedder:
    LADDER = [
        (0, BrownoutLevel.NORMAL),
        (2, BrownoutLevel.NO_HEDGING),   # 60% budget left  (< 0.75)
        (3, BrownoutLevel.SERVE_STALE),  # 40%              (< 0.5)
        (4, BrownoutLevel.SHED_LENSES),  # 20%              (< 0.25)
        (5, BrownoutLevel.REJECT_LOW),   # 0%               (< 0.1)
    ]

    def test_budget_maps_to_ladder_rungs(self):
        for bad, expected in self.LADDER:
            shedder = make_shedder(SimClock(), bad_of_ten=bad)
            assert shedder.level is expected, f"{bad} bad of 10"

    def test_rungs_are_cumulative(self):
        shedder = make_shedder(SimClock(), bad_of_ten=5)
        assert not shedder.allows_hedging
        assert shedder.allow_stale
        assert shedder.shedding_lenses
        assert shedder.rejecting

    def test_normal_level_enables_everything(self):
        shedder = make_shedder(SimClock(), bad_of_ten=0)
        assert shedder.allows_hedging
        assert not shedder.allow_stale
        assert not shedder.shedding_lenses
        assert not shedder.rejecting

    def test_too_few_window_queries_stays_normal(self):
        clock = SimClock()
        tracker = make_tracker(clock)
        burn(tracker, 0, 3)  # all bad, but below the confidence floor
        shedder = LoadShedder(tracker, min_window_queries=8)
        assert shedder.refresh() is BrownoutLevel.NORMAL

    def test_check_admit_rejects_only_at_or_below_ceiling(self):
        shedder = make_shedder(SimClock(), bad_of_ten=5)
        with pytest.raises(QueryRejected):
            shedder.check_admit(Priority.BACKGROUND)
        with pytest.raises(QueryRejected) as excinfo:
            shedder.check_admit(Priority.LOW)
        shedder.check_admit(Priority.NORMAL)  # above the ceiling: admitted
        shedder.check_admit(Priority.CRITICAL)
        assert excinfo.value.brownout_level == int(BrownoutLevel.REJECT_LOW)
        assert excinfo.value.retry_after_ms == pytest.approx(2_500.0)
        assert shedder.shed_queries == 2
        assert shedder.shed_by_priority["LOW"] == 1

    def test_retry_after_defaults_to_quarter_window(self):
        shedder = make_shedder(SimClock(), bad_of_ten=5)
        assert shedder.retry_after_ms() == pytest.approx(2_500.0)
        explicit = make_shedder(SimClock(), bad_of_ten=5,
                                retry_after_ms=42.0)
        assert explicit.retry_after_ms() == 42.0

    def test_should_shed_source_respects_priority_and_set(self):
        shedder = make_shedder(SimClock(), bad_of_ten=4,
                               sheddable_sources={"scores"})
        assert shedder.shedding_lenses
        assert shedder.should_shed_source("scores", Priority.NORMAL)
        assert shedder.should_shed_source("scores", Priority.BACKGROUND)
        assert not shedder.should_shed_source("scores", Priority.HIGH)
        assert not shedder.should_shed_source("crm", Priority.NORMAL)

    def test_recovery_walks_back_down(self):
        clock = SimClock()
        tracker = make_tracker(clock, window_ms=1_000.0)
        burn(tracker, 5, 5)
        shedder = LoadShedder(tracker, min_window_queries=1)
        assert shedder.refresh() is BrownoutLevel.REJECT_LOW
        clock.advance(2_000.0)  # the bad window ages out entirely
        burn(tracker, 10, 0)
        assert shedder.refresh() is BrownoutLevel.NORMAL
        assert shedder.level_changes == 2

    def test_threshold_validation(self):
        tracker = make_tracker(SimClock())
        with pytest.raises(ValueError):
            LoadShedder(tracker, thresholds=(0.1, 0.5, 0.25, 0.1))
        with pytest.raises(ValueError):
            LoadShedder(tracker, thresholds=(0.75, 0.5, 0.25))
        with pytest.raises(ValueError):
            LoadShedder(tracker, thresholds=(1.5, 0.5, 0.25, 0.1))


# -- hedging policy ------------------------------------------------------------


class TestHedgePolicy:
    def test_infinite_until_enough_samples(self):
        policy = HedgePolicy(min_samples=3)
        metrics = MetricsRegistry()
        assert policy.delay_ms(metrics, "feed") == math.inf
        histogram = metrics.histogram("source.feed.fetch_virtual_ms")
        histogram.observe(100.0)
        histogram.observe(100.0)
        assert policy.delay_ms(metrics, "feed") == math.inf
        histogram.observe(100.0)
        assert policy.delay_ms(metrics, "feed") == pytest.approx(100.0)

    def test_delay_is_p95_scaled_and_clamped(self):
        metrics = MetricsRegistry()
        histogram = metrics.histogram("source.feed.fetch_virtual_ms")
        for sample in [10.0] * 19 + [1_000.0]:
            histogram.observe(sample)
        policy = HedgePolicy(delay_factor=2.0, min_samples=1,
                             max_delay_ms=500.0)
        # p95 of the samples is 10 ms -> 20 ms scaled
        assert policy.delay_ms(metrics, "feed") == pytest.approx(20.0)
        floor = HedgePolicy(delay_factor=0.001, min_samples=1,
                            min_delay_ms=5.0)
        assert floor.delay_ms(metrics, "feed") == 5.0

    def test_disabled_or_unwired_is_infinite(self):
        assert HedgePolicy(enabled=False).delay_ms(MetricsRegistry(),
                                                   "feed") == math.inf
        assert HedgePolicy().delay_ms(None, "feed") == math.inf

    def test_probe_never_creates_the_histogram(self):
        metrics = MetricsRegistry()
        HedgePolicy(min_samples=1).delay_ms(metrics, "feed")
        assert metrics.histograms() == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay_factor=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_delay_ms=10.0, max_delay_ms=5.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_samples=0)


# -- engine integration --------------------------------------------------------


class TestEngineOverload:
    def test_reject_low_sheds_background_but_serves_normal(self):
        clock, catalog, source = build_feed()
        shedder = make_shedder(clock, bad_of_ten=5)
        metrics = MetricsRegistry()
        engine = NimbleEngine(catalog, shedder=shedder, metrics=metrics)
        with pytest.raises(QueryRejected) as excinfo:
            engine.query(ITEMS_QUERY, priority=Priority.LOW)
        assert excinfo.value.retry_after_ms > 0
        assert source.network.calls == 0  # rejected before any work
        result = engine.query(ITEMS_QUERY, priority=Priority.NORMAL)
        assert len(result.elements) == 3
        snap = metrics.snapshot()
        assert snap["counters"]["queries_rejected"] == 1
        assert snap["gauges"]["overload.brownout_level"] == int(
            BrownoutLevel.REJECT_LOW
        )

    def test_admission_token_released_on_success_and_rejection(self):
        clock, catalog, source = build_feed()
        controller = AdmissionController(clock, max_concurrent=1)
        engine = NimbleEngine(catalog, admission=controller)
        for _ in range(3):  # tokens recycle: serial queries never exhaust
            engine.query(ITEMS_QUERY)
        assert controller.in_flight == 0
        assert controller.admitted_total == 3

    def test_brownout_serves_expired_cache_entries(self):
        clock, catalog, source = build_feed()
        tracker = make_tracker(clock)
        shedder = LoadShedder(tracker, min_window_queries=1)
        engine = NimbleEngine(catalog, shedder=shedder,
                              fragment_cache_bytes=100_000,
                              fragment_cache_ttl_ms=100.0)
        first = engine.query(ITEMS_QUERY)
        assert first.stats.fragments_executed == 1
        clock.advance(10_000.0)  # entry now well past its TTL
        # healthy: the expired entry is NOT served; the source is re-read
        healthy = engine.query(ITEMS_QUERY)
        assert healthy.stats.stale_cache_served == 0
        assert healthy.stats.fragments_executed == 1
        clock.advance(10_000.0)
        burn(tracker, 7, 3)  # 40% budget left -> SERVE_STALE
        browned = engine.query(ITEMS_QUERY)
        assert browned.stats.stale_cache_served == 1
        assert browned.stats.fragments_executed == 0
        assert browned.stats.stale_served == 1
        assert browned.completeness.complete  # present, just old
        assert browned.completeness.stale_sources == ["feed"]
        assert engine.fragment_cache.stale_hits == 1

    def test_shed_lenses_skips_optional_source_with_annotation(self, catalog):
        clock = catalog.registry.clock
        shedder = make_shedder(clock, bad_of_ten=4,
                               sheddable_sources={"scores"})
        engine = NimbleEngine(catalog, shedder=shedder)
        query = (
            'WHERE <c><name>$n</name></c> IN "customers",'
            '      <s><name>$n</name><score>$sc</score></s>'
            '      IN "credit_scores"'
            " CONSTRUCT <row><name>$n</name><score>$sc</score></row>"
        )
        shed = engine.query(query, priority=Priority.NORMAL)
        assert shed.stats.fragments_shed >= 1
        assert not shed.completeness.complete
        assert shed.completeness.missing_sources == ["scores"]
        scores = catalog.registry.get("scores")
        assert scores.network.calls == 0
        # HIGH priority rides above the lens-shed ceiling: full answer
        served = engine.query(query, priority=Priority.HIGH)
        assert served.completeness.complete
        assert served.stats.fragments_shed == 0
        assert scores.network.calls > 0

    def test_required_sources_are_never_shed(self, catalog):
        clock = catalog.registry.clock
        shedder = make_shedder(clock, bad_of_ten=4,
                               sheddable_sources={"scores"})
        engine = NimbleEngine(catalog, shedder=shedder)
        query = (
            'WHERE <c><name>$n</name></c> IN "customers",'
            '      <s><name>$n</name><score>$sc</score></s>'
            '      IN "credit_scores"'
            " CONSTRUCT <row>$sc</row>"
        )
        result = engine.query(query, required_sources={"scores"})
        assert result.completeness.complete
        assert result.stats.fragments_shed == 0

    def test_lens_priority_flows_into_admission(self):
        clock, catalog, source = build_feed()
        shedder = make_shedder(clock, bad_of_ten=5)
        engine = NimbleEngine(catalog, shedder=shedder)
        server = LensServer(engine)
        server.register(Lens("report", {"items": ITEMS_QUERY},
                             priority=Priority.BACKGROUND))
        server.register(Lens("dashboard", {"items": ITEMS_QUERY},
                             priority=Priority.HIGH))
        from repro.core.auth import User

        user = User("ops", roles=frozenset())
        with pytest.raises(QueryRejected):
            server.invoke("report", "items", user)
        invocation = server.invoke("dashboard", "items", user)
        assert invocation.result.completeness.complete

    def test_flwor_rejects_and_releases_token(self):
        clock, catalog, source = build_feed()
        shedder = make_shedder(clock, bad_of_ten=5)
        controller = AdmissionController(clock)
        engine = NimbleEngine(catalog, shedder=shedder,
                              admission=controller)
        flwor = 'FOR $i IN "feed.data" RETURN <o>{$i/v}</o>'
        with pytest.raises(QueryRejected):
            engine.flwor_query(flwor, priority=Priority.BACKGROUND)
        result = engine.flwor_query(flwor, priority=Priority.HIGH)
        assert len(result.elements) == 3
        assert controller.in_flight == 0


class TestEngineHedging:
    def build_hedged(self, latency_ms=50.0, hedging=None, shedder=None):
        clock, catalog, source = build_feed(latency_ms=latency_ms)
        fragment = items_fragment(catalog)
        admin = DataAdministrator(clock)
        admin.add_job("copy", source, fragment, "replica_items",
                      period_ms=60_000.0)
        assert admin.run_job("copy") == 3
        fallbacks = FallbackRegistry()
        admin.register_fallbacks(fallbacks)
        engine = NimbleEngine(
            catalog,
            fallbacks=fallbacks,
            metrics=MetricsRegistry(),
            hedging=hedging or HedgePolicy(min_samples=1, delay_factor=0.5),
            shedder=shedder,
        )
        return clock, engine, source

    def test_hedge_fires_and_backup_wins(self):
        clock, engine, source = self.build_hedged()
        first = engine.query(ITEMS_QUERY)  # no latency history: no hedge
        assert first.stats.hedges_launched == 0
        second = engine.query(ITEMS_QUERY)
        assert second.stats.hedges_launched == 1
        assert second.stats.hedges_won == 1
        assert second.completeness.hedged_sources == ["feed"]
        assert second.completeness.complete
        assert not second.completeness.stale_sources  # hedge rows are fresh
        assert sorted(e.text_content() for e in second.elements) == [
            "a", "b", "c",
        ]
        # the winner finished at the hedge trigger, not the primary's end
        assert (second.stats.elapsed_virtual_ms
                < first.stats.elapsed_virtual_ms)

    def test_histogram_fed_by_primary_not_winner(self):
        clock, engine, source = self.build_hedged()
        engine.query(ITEMS_QUERY)
        engine.query(ITEMS_QUERY)  # hedged
        samples = engine.metrics.histograms()[
            "source.feed.fetch_virtual_ms"
        ].samples
        # both samples are full primary fetches (~latency), within 50%
        # of each other: the shortened hedged completion never landed
        assert len(samples) == 2
        assert max(samples) < 1.5 * min(samples)

    def test_no_hedging_rung_disables_hedging(self):
        clock, engine, source = self.build_hedged()
        tracker = make_tracker(clock)
        shedder = LoadShedder(tracker, min_window_queries=1)
        engine.shedder = shedder
        engine.query(ITEMS_QUERY)
        burn(tracker, 8, 2)  # 60% left -> NO_HEDGING
        result = engine.query(ITEMS_QUERY)
        assert result.stats.hedges_launched == 0
        assert result.completeness.hedged_sources == []

    def test_fast_primary_never_hedges(self):
        clock, engine, source = self.build_hedged(
            hedging=HedgePolicy(min_samples=1, delay_factor=3.0),
        )
        engine.query(ITEMS_QUERY)
        result = engine.query(ITEMS_QUERY)
        # the hedge would fire at 3x p95; the primary always beats it
        assert result.stats.hedges_launched == 0
        assert result.stats.fragments_executed == 1

    def test_no_replica_means_no_hedge(self):
        clock, catalog, source = build_feed(latency_ms=50.0)
        engine = NimbleEngine(
            catalog, fallbacks=FallbackRegistry(), metrics=MetricsRegistry(),
            hedging=HedgePolicy(min_samples=1, delay_factor=0.5),
        )
        engine.query(ITEMS_QUERY)
        result = engine.query(ITEMS_QUERY)
        assert result.stats.hedges_launched == 0


# -- cluster dispatch ----------------------------------------------------------


class TestClusterOverload:
    def build_cluster(self, instances=1, latency_ms=100.0, **kwargs):
        clock, catalog, source = build_feed(latency_ms=latency_ms)
        engine = NimbleEngine(catalog)
        cluster = EngineCluster(engine, instances=instances, **kwargs)
        return clock, cluster

    def test_projected_queue_wait_sheds_background_first(self):
        clock, cluster = self.build_cluster(
            admission=AdmissionController(SimClock()),
        )
        head = cluster.submit(ITEMS_QUERY, arrival_ms=0.0)
        assert head.completion_ms > 60.0  # backlog now exceeds BG bound
        rejected = cluster.offer(ITEMS_QUERY, arrival_ms=0.0,
                                 priority=Priority.BACKGROUND)
        assert isinstance(rejected, RejectedQuery)
        assert rejected.rejected
        assert rejected.retry_after_ms == pytest.approx(head.completion_ms)
        served = cluster.offer(ITEMS_QUERY, arrival_ms=0.0,
                               priority=Priority.HIGH)
        assert not served.rejected
        assert served.queue_ms == pytest.approx(head.completion_ms)
        assert [r.priority for r in cluster.rejected] == [
            Priority.BACKGROUND
        ]

    def test_round_robin_routes_around_backlogged_instance(self):
        clock, cluster = self.build_cluster(
            instances=2, strategy="round_robin",
            admission=AdmissionController(SimClock()),
        )
        cluster.instances[0].free_at_ms = 1_000.0  # deep backlog
        chosen = cluster._choose(arrival_ms=0.0,
                                 priority=Priority.BACKGROUND)
        assert chosen is cluster.instances[1]
        assert cluster.rerouted == 1
        # no admission gate -> the strategy's pick stands
        bare = EngineCluster(cluster.engine, instances=2,
                             strategy="round_robin")
        bare.instances[0].free_at_ms = 1_000.0
        assert bare._choose(arrival_ms=0.0) is bare.instances[0]

    def test_shedder_gate_rejects_before_dispatch(self):
        clock, cluster = self.build_cluster()
        tracker = make_tracker(clock)
        burn(tracker, 5, 5)
        cluster.shedder = LoadShedder(tracker, min_window_queries=1)
        record = cluster.offer(ITEMS_QUERY, arrival_ms=0.0,
                               priority=Priority.LOW)
        assert record.rejected
        assert cluster.engine.queries_run == 0
        assert len(cluster.completed) == 0

    def test_cluster_feeds_slo_with_end_to_end_latency(self):
        clock, cluster = self.build_cluster()
        tracker = make_tracker(clock)
        cluster.slo = tracker
        first = cluster.submit(ITEMS_QUERY, arrival_ms=0.0)
        queued = cluster.submit(ITEMS_QUERY, arrival_ms=0.0)
        assert tracker.total_observed == 2
        observed = [o.virtual_ms for o in tracker._observations]
        assert observed[0] == pytest.approx(first.latency_ms)
        # the queued query's observation includes its queueing delay
        assert observed[1] == pytest.approx(queued.latency_ms)
        assert queued.latency_ms > first.latency_ms

    def test_overload_snapshot_counts_everything(self):
        clock, cluster = self.build_cluster(
            admission=AdmissionController(SimClock()),
        )
        tracker = make_tracker(clock)
        burn(tracker, 5, 5)
        cluster.shedder = LoadShedder(tracker, min_window_queries=1)
        cluster.offer(ITEMS_QUERY, arrival_ms=0.0, priority=Priority.HIGH)
        cluster.offer(ITEMS_QUERY, arrival_ms=0.0, priority=Priority.LOW)
        snapshot = cluster.overload_snapshot(now_ms=0.0)
        assert snapshot["completed"] == 1
        assert snapshot["rejected"] == 1
        assert snapshot["queue_depth"] == 1
        assert snapshot["queue_wait_ms"] > 0
        assert snapshot["admission"]["admitted_total"] == 1
        assert snapshot["shedder"]["shed_queries"] == 1


# -- alerting and the console --------------------------------------------------


class TestOverloadObservability:
    def test_overload_shedding_rule_fires_and_resolves(self):
        clock = SimClock()
        manager = AlertManager(clock)
        manager.add_rule(overload_shedding_rule())
        tracker = make_tracker(clock, window_ms=1_000.0)
        burn(tracker, 5, 5)
        shedder = LoadShedder(tracker, min_window_queries=1)
        shedder.refresh()
        fired = manager.evaluate({"overload": shedder.snapshot()})
        assert [a.state for a in fired] == ["firing"]
        assert fired[0].rule == "overload_shedding"
        assert fired[0].context["level_name"] == "REJECT_LOW"
        clock.advance(2_000.0)
        burn(tracker, 10, 0)
        shedder.refresh()
        resolved = manager.evaluate({"overload": shedder.snapshot()})
        assert [a.state for a in resolved] == ["resolved"]

    def test_default_rules_include_overload_shedding(self):
        assert "overload_shedding" in {r.name for r in default_rules()}

    def test_slo_monitor_context_carries_overload(self):
        clock, catalog, source = build_feed()
        tracker = make_tracker(clock)
        shedder = make_shedder(clock, bad_of_ten=5)
        engine = NimbleEngine(catalog, slo=tracker, shedder=shedder)
        monitor = SloMonitor(engine)
        context = monitor.evaluation_context()
        assert context["overload"]["level_name"] == "REJECT_LOW"
        transitions = monitor.evaluate()
        assert any(t.rule == "overload_shedding" for t in transitions)

    def test_overload_monitor_and_console_section(self):
        from repro.admin.console import ManagementConsole

        clock, catalog, source = build_feed()
        shedder = make_shedder(clock, bad_of_ten=5)
        engine = NimbleEngine(
            catalog,
            shedder=shedder,
            admission=AdmissionController(clock),
            hedging=HedgePolicy(),
            metrics=MetricsRegistry(),
        )
        with pytest.raises(QueryRejected):
            engine.query(ITEMS_QUERY, priority=Priority.LOW)
        cluster = EngineCluster(engine)
        monitor = OverloadMonitor(engine, cluster=cluster)
        snapshot = monitor.snapshot()
        assert snapshot["shedder"]["level_name"] == "REJECT_LOW"
        assert snapshot["admission"]["in_flight"] == 0
        assert snapshot["hedging"]["enabled"] is True
        assert snapshot["queries_rejected"] == 1
        assert snapshot["brownout_level_gauge"] == 4
        assert snapshot["cluster"]["completed"] == 0
        console = ManagementConsole(engine, overload_monitor=monitor)
        text = console.render()
        assert "brownout REJECT_LOW" in text
        assert "admission:" in text
        assert "hedging: on" in text
        assert "fleet:" in text


# -- the never-trigger equivalence property ------------------------------------


def run_workload(with_controller, seed, queries=6):
    """One deployment run; returns every determinism-relevant output."""
    faults = FaultModel(failure_rate=0.2, slow_rate=0.2, drop_rate=0.1,
                        seed=seed)
    clock, catalog, source = build_feed(faults=faults)
    kwargs = {}
    if with_controller:
        tracker = SloTracker(
            clock,
            policies=[SloPolicy("avail", "availability", 0.5,
                                window_ms=1e9)],
        )
        kwargs = dict(
            admission=AdmissionController(clock, max_concurrent=10_000,
                                          queue_capacity=10_000),
            # thresholds of 0 can never exceed a non-negative remaining
            # budget: the ladder is provably stuck at NORMAL
            shedder=LoadShedder(tracker, thresholds=(0.0, 0.0, 0.0, 0.0),
                                min_window_queries=1,
                                sheddable_sources={"feed"}),
            hedging=HedgePolicy(enabled=False),
        )
    engine = NimbleEngine(
        catalog,
        fragment_cache_bytes=50_000,
        fragment_cache_ttl_ms=200.0,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2, base_backoff_ms=20.0, seed=9),
        ),
        **kwargs,
    )
    outputs = []
    for index in range(queries):
        result = engine.query(ITEMS_QUERY,
                              priority=Priority(index % len(Priority)))
        outputs.append((
            tuple(e.text_content() for e in result.elements),
            result.completeness.complete,
            tuple(result.completeness.missing_sources),
            tuple(result.completeness.stale_sources),
            tuple(result.completeness.hedged_sources),
            tuple(sorted(result.stats.as_dict().items())),
        ))
        clock.advance(50.0)
    return outputs, clock.now


class TestNeverTriggerEquivalence:
    def test_disabled_ladder_is_bit_equivalent_under_faults(self):
        baseline = run_workload(False, seed=77)
        guarded = run_workload(True, seed=77)
        assert guarded == baseline

    def test_overload_counters_all_zero_when_never_triggered(self):
        outputs, _ = run_workload(True, seed=5)
        for _, _, _, _, _, counters in outputs:
            stats = dict(counters)
            assert stats["hedges_launched"] == 0
            assert stats["hedges_won"] == 0
            assert stats["fragments_shed"] == 0
            assert stats["stale_cache_served"] == 0

    if HAVE_HYPOTHESIS:

        @given(seed=st.integers(min_value=0, max_value=2**16))
        @settings(max_examples=20, deadline=None)
        def test_equivalence_holds_for_any_fault_seed(self, seed):
            assert run_workload(True, seed=seed) == run_workload(False,
                                                                 seed=seed)

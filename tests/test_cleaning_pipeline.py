"""Unit tests for blocking, concordance, lineage, flows and mining."""

import pytest

from repro.cleaning import (
    CleaningFlow,
    ConcordanceDB,
    Decision,
    FieldRule,
    FlowMode,
    LineageLog,
    LinkStep,
    MatchDecision,
    MatchStep,
    NormalizeStep,
    RecordMatcher,
    jaro_winkler,
    multi_pass_neighborhood,
    naive_pairs,
    sorted_neighborhood,
)
from repro.cleaning.mining import (
    duplicate_report,
    find_anomalies,
    find_legacy_codes,
    profile_dataset,
    value_pattern,
)
from repro.cleaning.sortedneighborhood import first_letters_key, reversed_field_key
from repro.errors import CleaningError, LineageError
from repro.xmldm.values import Record


def records_named(*names):
    return [Record({"id": str(i), "name": name}) for i, name in enumerate(names)]


class TestBlocking:
    def test_naive_pair_count(self):
        records = records_named("a", "b", "c", "d")
        assert len(list(naive_pairs(records))) == 6

    def test_snm_window_bounds_pairs(self):
        records = records_named(*[f"name{i:03d}" for i in range(100)])
        pairs = list(sorted_neighborhood(records, first_letters_key("name", 7), 3))
        assert len(pairs) < 250  # far below the 4950 naive pairs

    def test_snm_finds_adjacent_keys(self):
        records = records_named("smith john", "smith jon", "zzz zzz")
        pairs = set(sorted_neighborhood(records, first_letters_key("name"), 2))
        assert (0, 1) in pairs

    def test_snm_window_validation(self):
        with pytest.raises(CleaningError):
            list(sorted_neighborhood(records_named("a"), first_letters_key("name"), 1))

    def test_multipass_union_dedups(self):
        records = records_named("abcd", "abce", "xbcd")
        single = set(sorted_neighborhood(records, first_letters_key("name"), 2))
        multi = set(
            multi_pass_neighborhood(
                records,
                [first_letters_key("name"), reversed_field_key("name")],
                2,
            )
        )
        assert single <= multi
        # reversed key pairs 'abcd' with 'xbcd' (same tail) which the
        # prefix key cannot see with window 2
        assert (0, 2) in multi

    def test_pairs_canonical_order(self):
        records = records_named("b", "a")
        for i, j in sorted_neighborhood(records, first_letters_key("name"), 2):
            assert i < j


class TestConcordance:
    def ref(self, source, identity):
        return (source, identity)

    def test_record_and_lookup_symmetric(self):
        db = ConcordanceDB()
        decision = Decision(("a", "1"), ("b", "2"), MatchDecision.MATCH, "auto")
        db.record(decision)
        assert db.lookup(("b", "2"), ("a", "1")).decision is MatchDecision.MATCH
        assert db.replays == 1

    def test_conflicting_decision_rejected(self):
        db = ConcordanceDB()
        db.record(Decision(("a", "1"), ("b", "2"), MatchDecision.MATCH, "auto"))
        with pytest.raises(CleaningError):
            db.record(
                Decision(("a", "1"), ("b", "2"), MatchDecision.NONMATCH, "human")
            )

    def test_overwrite_allowed_explicitly(self):
        db = ConcordanceDB()
        db.record(Decision(("a", "1"), ("b", "2"), MatchDecision.POSSIBLE, "auto"))
        db.record(
            Decision(("a", "1"), ("b", "2"), MatchDecision.MATCH, "human"),
            overwrite=True,
        )
        assert db.lookup(("a", "1"), ("b", "2")).decided_by == "human"

    def test_matches_of(self):
        db = ConcordanceDB()
        db.record(Decision(("a", "1"), ("b", "2"), MatchDecision.MATCH, "auto"))
        db.record(Decision(("a", "1"), ("c", "3"), MatchDecision.NONMATCH, "auto"))
        assert db.matches_of(("a", "1")) == [("b", "2")]

    def test_persistence_roundtrip(self, tmp_path):
        db = ConcordanceDB()
        db.record(
            Decision(("a", "1"), ("b", "2"), MatchDecision.MATCH, "ann", 0.9, 5.0)
        )
        path = tmp_path / "concordance.json"
        db.save(path)
        loaded = ConcordanceDB.load(path)
        decision = loaded.lookup(("a", "1"), ("b", "2"))
        assert decision.decided_by == "ann"
        assert decision.score == 0.9

    def test_counts(self):
        db = ConcordanceDB()
        db.record(Decision(("a", "1"), ("b", "2"), MatchDecision.MATCH, "auto"))
        assert db.counts()["match"] == 1


class TestLineage:
    def test_ancestry_and_leaves(self):
        log = LineageLog()
        log.record("n1", ["src:1"], "normalize")
        log.record("g1", ["n1", "src:2"], "merge")
        assert {e.output_id for e in log.ancestry("g1")} == {"g1", "n1"}
        assert log.leaves("g1") == ["src:1", "src:2"]

    def test_duplicate_output_rejected(self):
        log = LineageLog()
        log.record("x", ["a"], "op")
        with pytest.raises(LineageError):
            log.record("x", ["b"], "op")

    def test_descendants(self):
        log = LineageLog()
        log.record("n1", ["src:1"], "normalize")
        log.record("g1", ["n1"], "merge")
        assert log.descendants("src:1") == ["n1", "g1"]

    def test_rollback_cascades(self):
        log = LineageLog()
        log.record("n1", ["src:1"], "normalize")
        log.record("g1", ["n1"], "merge")
        invalidated = log.rollback("n1")
        assert set(invalidated) == {"n1", "g1"}
        assert not log.is_valid("g1")
        assert log.valid_outputs() == []

    def test_rollback_unknown_rejected(self):
        with pytest.raises(LineageError):
            LineageLog().rollback("ghost")


def build_flow(blocking="naive", thresholds=(0.90, 0.70), concordance=None):
    matcher = RecordMatcher(
        [FieldRule("name", metric=jaro_winkler)],
        match_threshold=thresholds[0],
        possible_threshold=thresholds[1],
    )
    return CleaningFlow(
        "test",
        [
            NormalizeStep("name", "name"),
            MatchStep(matcher, blocking=blocking, key_field="name", window=4),
            LinkStep(source_priority=("a", "b")),
        ],
        concordance=concordance,
    )


DATASETS = {
    "a": [
        Record({"id": "1", "name": "John Smith", "tier": 1}),
        Record({"id": "2", "name": "Rosa Garcia"}),
    ],
    "b": [
        Record({"id": "10", "name": "Smith, John", "balance": 42}),
        Record({"id": "11", "name": "Katherine Johnson"}),
        # scores ~0.89 against Rosa Garcia: ambiguous on tight thresholds
        Record({"id": "12", "name": "Rose Garcia"}),
    ],
}


class TestFlows:
    def test_extraction_matches_and_links(self):
        result = build_flow().run(DATASETS, FlowMode.EXTRACTION)
        assert (("a", "1"), ("b", "10")) in [
            tuple(sorted(p)) for p in result.matched_pairs
        ]
        cluster = result.cluster_of(("a", "1"))
        assert ("b", "10") in cluster

    def test_golden_record_merges_by_priority(self):
        result = build_flow().run(DATASETS, FlowMode.EXTRACTION)
        golden = next(
            g for g in result.golden_records if g.get("tier") == 1
        )
        assert golden["balance"] == 42  # filled from source b
        assert golden["__sources"] == "a,b"

    def test_mining_routes_possibles_to_reviewer(self):
        reviewed = []

        def reviewer(a, b, score):
            reviewed.append((a["name"], b["name"]))
            return MatchDecision.MATCH

        flow = build_flow(thresholds=(0.99, 0.60))
        result = flow.run(DATASETS, FlowMode.MINING, reviewer=reviewer)
        assert result.human_decisions == len(reviewed) > 0
        assert not result.exceptions

    def test_extraction_traps_exceptions(self):
        flow = build_flow(thresholds=(0.99, 0.60))
        result = flow.run(DATASETS, FlowMode.EXTRACTION)
        assert result.exceptions
        assert result.human_decisions == 0

    def test_concordance_replay_skips_scoring(self):
        concordance = ConcordanceDB()
        flow = build_flow(concordance=concordance)
        first = flow.run(DATASETS, FlowMode.EXTRACTION)
        assert first.pairs_compared > 0
        second = flow.run(DATASETS, FlowMode.EXTRACTION)
        assert second.pairs_replayed > 0
        assert second.pairs_compared < first.pairs_compared
        # matches still reported on replay
        assert second.matched_pairs

    def test_mining_decisions_survive_to_extraction(self):
        concordance = ConcordanceDB()
        flow = build_flow(thresholds=(0.99, 0.60), concordance=concordance)
        flow.run(DATASETS, FlowMode.MINING,
                 reviewer=lambda a, b, s: MatchDecision.MATCH)
        replay = flow.run(DATASETS, FlowMode.EXTRACTION)
        assert not replay.exceptions  # human decisions replayed
        assert replay.matched_pairs

    def test_mining_requires_reviewer(self):
        with pytest.raises(CleaningError):
            build_flow().run(DATASETS, FlowMode.MINING)

    def test_missing_id_field_rejected(self):
        with pytest.raises(CleaningError):
            build_flow().run({"a": [Record({"name": "x"})]})

    def test_normalize_step_records_lineage(self):
        flow = build_flow()
        flow.run(DATASETS, FlowMode.EXTRACTION)
        assert any(
            entry.operation.startswith("normalize") for entry in flow.lineage
        )

    def test_merge_recorded_in_lineage(self):
        flow = build_flow()
        flow.run(DATASETS, FlowMode.EXTRACTION)
        merges = [e for e in flow.lineage if e.operation == "merge"]
        assert merges
        assert len(merges[0].input_ids) == 2


class TestMining:
    def test_value_pattern(self):
        assert value_pattern("206-555-0100") == "9-9-9"
        assert value_pattern("Seattle") == "A"
        assert value_pattern("AB12cd") == "A9A"

    def test_profile_dataset(self):
        records = [
            Record({"id": "1", "phone": "206-555-0100"}),
            Record({"id": "2", "phone": "2065550100"}),
            Record({"id": "3", "phone": ""}),
        ]
        profiles = {p.name: p for p in profile_dataset(records)}
        assert profiles["phone"].filled == 2
        assert profiles["phone"].fill_rate == pytest.approx(2 / 3)
        assert profiles["id"].distinct == 3

    def test_find_anomalies_mixed_format(self):
        records = [Record({"id": str(i), "phone": v}) for i, v in enumerate(
            ["206-555-0100", "2065550100", "(206) 555 0100", "206.555.0100"]
        )]
        anomalies = find_anomalies(records)
        assert any(a.kind == "mixed-format" and a.field == "phone" for a in anomalies)

    def test_find_anomalies_low_fill(self):
        records = [Record({"a": "x", "b": ""}), Record({"a": "y", "b": ""})]
        anomalies = find_anomalies(records)
        assert any(a.kind == "low-fill" and a.field == "b" for a in anomalies)

    def test_find_legacy_codes(self):
        records = [
            Record({"notes": "migrated from ACCT-1234 in 1997"}),
            Record({"notes": "clean"}),
        ]
        findings = find_legacy_codes(records, "notes")
        assert findings == [(0, "ACCT-1234")]

    def test_duplicate_report_sorted(self):
        records = records_named("john smith", "jon smith", "rosa garcia")
        matcher = RecordMatcher(
            [FieldRule("name", metric=jaro_winkler)],
            match_threshold=0.99,
            possible_threshold=0.6,
        )
        report = duplicate_report(records, matcher, "name", window=3)
        assert report[0][:2] == (0, 1)
        scores = [score for _, _, score in report]
        assert scores == sorted(scores, reverse=True)

"""String similarity metrics for record matching.

All metrics return a similarity in [0, 1] (1 = identical).  They are
implemented from scratch — no external dependencies — and exercised by
property-based tests for the metric axioms (symmetry, identity, range).
"""

from __future__ import annotations


def levenshtein(a: str, b: str) -> int:
    """Edit distance (insert/delete/substitute, unit costs).

    Classic two-row dynamic program: O(len(a) * len(b)) time,
    O(min(len)) space.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[j] + 1,      # deletion
                    current[j - 1] + 1,   # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def string_similarity(a: str, b: str) -> float:
    """Normalized edit similarity: 1 - distance / max length."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity (transposition-aware, good for short names)."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ch in enumerate(a):
        start = max(0, i - window)
        stop = min(i + window + 1, len(b))
        for j in range(start, stop):
            if not b_flags[j] and b[j] == ch:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if not flagged:
            continue
        while not b_flags[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    m = float(matches)
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by a shared prefix (max 4 chars)."""
    base = jaro(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a[:4], b[:4]):
        if ch_a != ch_b:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def jaccard_tokens(a: str, b: str) -> float:
    """Jaccard similarity over whitespace-separated tokens."""
    tokens_a = set(a.split())
    tokens_b = set(b.split())
    if not tokens_a and not tokens_b:
        return 1.0
    union = tokens_a | tokens_b
    if not union:
        return 1.0
    return len(tokens_a & tokens_b) / len(union)


def _ngrams(text: str, n: int) -> set[str]:
    padded = f"{'#' * (n - 1)}{text}{'#' * (n - 1)}"
    return {padded[i : i + n] for i in range(len(padded) - n + 1)}


def ngram_similarity(a: str, b: str, n: int = 2) -> float:
    """Dice coefficient over padded character n-grams."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    grams_a = _ngrams(a, n)
    grams_b = _ngrams(b, n)
    return 2.0 * len(grams_a & grams_b) / (len(grams_a) + len(grams_b))

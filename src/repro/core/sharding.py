"""Scatter-gather execution: one query, N shard-local engines.

The coordinator compiles a query **once** (through the engine's
compiled-plan cache), asks :func:`repro.optimizer.routing.route` which
shards must run it, scatters the compiled binding tree to shard-local
:class:`~repro.core.engine.NimbleEngine` instances over the virtual-time
parallel-wave scheduler, and gathers *mergeable partials* — per-group
aggregate states, top-K candidates, sorted runs, or distinct
representatives — instead of raw rows wherever the query shape allows.

The wall-clock story is the paper's load-balancing section gone
horizontal: a scatter wave costs the slowest shard, not the sum, and
pruning (key-range and statistics-based) keeps non-matching shards out
of the wave entirely.  The wire story is the merge algebra's: for
aggregation queries only small per-group states cross from shard to
coordinator, accounted in the same ``bytes_transferred`` counters the
sources use.

Results are bit-identical to the unsharded engine under the
partitioning contract (data clustered by the shard key); the router is
entirely opt-in — nothing changes for engines without a deployment.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.algebra.construct import build_elements
from repro.algebra.merge import (
    PartialGroups,
    dedup_rows,
    merge_sorted,
    rows_wire_size,
    sort_rows,
    template_group_vars,
    topk_rows,
)
from repro.core.engine import (
    BindingResult,
    EngineStats,
    NimbleEngine,
    QueryResult,
)
from repro.core.partial import Completeness, PartialResultPolicy
from repro.materialize.matching import access_key
from repro.observability.provenance import Provenance
from repro.mediator.catalog import Catalog
from repro.optimizer.decomposer import DecomposedQuery, FragmentUnit
from repro.optimizer.routing import (
    MERGE_DISTINCT,
    MERGE_ORDERED,
    MERGE_PARTIAL_AGGREGATE,
    MERGE_TOPK,
    RoutingDecision,
    route,
)
from repro.query import ast as qast
from repro.query.exprs import compile_sort_key
from repro.query.translate import template_to_construct
from repro.resilience.admission import Priority
from repro.simtime import TaskGroup
from repro.sources.base import Fragment
from repro.sources.registry import SourceRegistry
from repro.sources.sharding import ShardedDeployment


def retarget(decomposed: DecomposedQuery,
             registry: SourceRegistry) -> DecomposedQuery:
    """The compiled query, its fragments re-aimed at one shard's sources.

    Shard sources keep the coordinator sources' names, so retargeting is
    a name lookup per unit — the fragments, conditions and plan shape
    are shared (compiled once), only the :class:`DataSource` handles
    differ.  This is what makes the router compile-once: N shards reuse
    one decomposition.
    """
    units = [
        replace(unit, source=registry.get(unit.source.name))
        if isinstance(unit, FragmentUnit) else unit
        for unit in decomposed.units
    ]
    return DecomposedQuery(
        decomposed.bound,
        units,
        decomposed.residual_conditions,
        decomposed.pushed_conditions,
    )


class ShardRouter:
    """Scatter-gather front end over a coordinator engine and N shards.

    ``engine`` is the coordinator: it owns the compiled-plan cache, the
    catalog (shard maps included), and answers every query the router
    cannot scatter.  ``deployment`` provides the shard-local registries
    (one shared clock) and shard maps.  Each shard gets its own
    :class:`NimbleEngine` inheriting the coordinator's configuration —
    resilience policy, caches (with shard-scoped keys), vectorized
    execution, column statistics — overridable via ``shard_overrides``.

    The router quacks like an engine where it counts: ``query()``,
    ``explain()``, ``clock``, ``catalog``, ``resilience``, ``name`` —
    enough for :class:`~repro.core.loadbalance.EngineCluster` to balance
    load across router instances.
    """

    def __init__(
        self,
        engine: NimbleEngine,
        deployment: ShardedDeployment,
        max_parallel_shards: int = 16,
        shard_overrides: dict[str, Any] | None = None,
    ):
        if deployment.clock is not engine.clock:
            raise ValueError(
                "deployment and coordinator must share one clock"
            )
        if max_parallel_shards < 1:
            raise ValueError("max_parallel_shards must be >= 1")
        self.engine = engine
        self.deployment = deployment
        self.max_parallel_shards = max_parallel_shards
        self.shard_maps = dict(deployment.shard_maps)
        for shard_map in self.shard_maps.values():
            if shard_map.source not in engine.catalog.shard_maps:
                engine.catalog.register_shard_map(shard_map)
        overrides = dict(shard_overrides or {})
        self.shard_engines: list[NimbleEngine] = [
            self._shard_engine(index, registry, overrides)
            for index, registry in enumerate(deployment.registries)
        ]

    # -- engine-compatible surface -------------------------------------------

    @property
    def clock(self):
        return self.engine.clock

    @property
    def catalog(self) -> Catalog:
        return self.engine.catalog

    @property
    def resilience(self):
        return self.engine.resilience

    @property
    def name(self) -> str:
        return self.engine.name

    @property
    def tracer(self):
        return self.engine.tracer

    @property
    def provenance(self) -> bool:
        return self.engine.provenance

    def use_tracer(self, tracer) -> None:
        """Wire one tracer through the coordinator and every shard."""
        self.engine.use_tracer(tracer)
        for shard in self.shard_engines:
            shard.use_tracer(tracer)

    # -- construction ---------------------------------------------------------

    def _shard_engine(self, index: int, registry: SourceRegistry,
                      overrides: dict[str, Any]) -> NimbleEngine:
        coordinator = self.engine
        catalog = Catalog(registry)
        # shard catalogs resolve the same mediated names over the
        # shard-local source handles; mappings were validated when the
        # coordinator catalog registered them
        catalog.mappings = dict(coordinator.catalog.mappings)
        catalog.schemas = list(coordinator.catalog.schemas)
        cache = coordinator.fragment_cache
        kwargs: dict[str, Any] = dict(
            default_policy=coordinator.default_policy,
            pushdown=coordinator.pushdown,
            name=f"{coordinator.name}-shard{index}",
            resilience=coordinator.resilience,
            fallbacks=coordinator.fallbacks,
            max_parallel_fetches=coordinator.max_parallel_fetches,
            batch_size=coordinator.batch_size,
            plan_cache_size=coordinator.plan_cache_size,
            fragment_cache_bytes=cache.max_bytes if cache is not None else 0,
            fragment_cache_scope=f"shard{index}",
            vectorized=coordinator.vectorized,
            batch_rows=coordinator.batch_rows,
            projection_pushdown=coordinator.projection_pushdown,
            column_statistics=coordinator.column_stats is not None,
            # shard answers carry their own lineage; the gather folds
            # them into one coordinator-level Provenance
            provenance=coordinator.provenance,
        )
        kwargs.update(overrides)
        return NimbleEngine(catalog, **kwargs)

    # -- the scatter-gather path ----------------------------------------------

    def query(
        self,
        text: str | qast.Query,
        policy: PartialResultPolicy | None = None,
        required_sources: set[str] | None = None,
        priority: Priority = Priority.NORMAL,
    ) -> QueryResult:
        """Compile once, route, scatter or fall back to the coordinator."""
        stats = EngineStats()
        decomposed = self.engine._compile(text, stats=stats)
        decision = route(decomposed, self.shard_maps,
                         stats_bounds=self._stats_bounds)
        if not decision.scatter:
            result = self.engine.query(text, policy, required_sources,
                                       priority=priority)
            result.stats.coordinator_fallbacks += 1
            result.stats.plan_text += "\n" + decision.describe()
            return result
        return self._scatter(decomposed, decision, stats,
                             policy, required_sources, priority)

    def explain(self, text: str | qast.Query) -> str:
        """The coordinator's plan plus the routing decision."""
        decomposed = self.engine._compile(text)
        decision = route(decomposed, self.shard_maps,
                         stats_bounds=self._stats_bounds)
        return self.engine.explain(text) + "\n" + decision.describe()

    def _scatter(
        self,
        decomposed: DecomposedQuery,
        decision: RoutingDecision,
        stats: EngineStats,
        policy: PartialResultPolicy | None,
        required_sources: set[str] | None,
        priority: Priority,
    ) -> QueryResult:
        query = decomposed.bound.query
        template = template_to_construct(query.construct)
        sort_keys = [
            (compile_sort_key(spec.expr), spec.descending)
            for spec in query.order_by
        ]
        group_vars = template_group_vars(template)
        required = frozenset(required_sources or ())
        completeness = Completeness()
        stats.scatter_queries += 1
        stats.shards_stats_skipped += sum(
            1 for entry in decision.pruned if entry.reason.startswith("stats")
        )
        stats.shards_pruned += len(decision.pruned)
        tracer = self.engine.tracer
        started_virtual = self.clock.now
        partials: list[Any] = []
        selected = list(decision.selected)
        shard_lineage: list[tuple[int, Provenance]] = []
        with tracer.span("scatter", shards=len(selected),
                         merge=decision.merge) as span:
            for entry in decision.pruned:
                tracer.event("shard_pruned", shard_index=entry.shard,
                             reason=entry.reason)
            for start in range(0, len(selected), self.max_parallel_shards):
                wave = selected[start:start + self.max_parallel_shards]
                group = TaskGroup(self.clock)
                for index in wave:
                    with group.task(f"shard-{index}"):
                        with tracer.span(
                            "shard", name=f"shard-{index}",
                            shard_index=index,
                            key_range=self._key_ranges(index),
                        ):
                            binding = self._execute_shard(
                                index, decomposed, policy, required, priority
                            )
                        partials.append(self._reduce(
                            decision.merge, binding, template,
                            sort_keys, group_vars, query.limit, stats
                        ))
                        completeness.merge(binding.completeness)
                        stats.absorb(binding.stats)
                        stats.shards_executed += 1
                        if binding.provenance is not None:
                            shard_lineage.append((index, binding.provenance))
                group.join()
                stats.parallel_waves += 1
            elements = self._gather(decision.merge, partials, template,
                                    sort_keys, group_vars, query.limit)
            if span.recording:
                span.set(rows=len(elements), waves=stats.parallel_waves)
        stats.elapsed_virtual_ms = self.clock.now - started_virtual
        stats.plan_text = decomposed.describe() + "\n" + decision.describe()
        provenance = None
        if self.engine.provenance:
            provenance = Provenance(
                trace_id=getattr(span, "trace_id", ""),
                snapshot_epoch=self.engine.catalog.version,
                shards=list(selected),
            )
            for index, lineage in shard_lineage:
                provenance.absorb(lineage, shard=index)
        return QueryResult(elements, completeness, stats,
                           provenance=provenance)

    def _execute_shard(
        self,
        index: int,
        decomposed: DecomposedQuery,
        policy: PartialResultPolicy | None,
        required: frozenset[str],
        priority: Priority,
    ) -> BindingResult:
        retargeted = retarget(decomposed, self.deployment.registries[index])
        return self.shard_engines[index].execute_bindings(
            retargeted, policy, required, priority
        )

    def _reduce(
        self,
        merge: str,
        binding: BindingResult,
        template,
        sort_keys,
        group_vars,
        limit: int | None,
        stats: EngineStats,
    ):
        """Shard-side reduction: shrink what crosses the wire.

        The gather transfer is charged to the same byte/value counters
        the sources use — it is engine-to-coordinator traffic, distinct
        from the shard's own source fetches (already absorbed).
        """
        rows = binding.rows
        if merge == MERGE_PARTIAL_AGGREGATE:
            groups = PartialGroups(template)
            for row in rows:
                groups.observe(row)
            wire_bytes, wire_values = groups.wire_size()
            stats.gather_rows += len(groups.groups)
            partial: Any = groups
        else:
            if merge == MERGE_TOPK:
                kept = topk_rows(rows, sort_keys, limit or 0, group_vars)
            elif merge == MERGE_ORDERED:
                kept = sort_rows(rows, sort_keys)
            elif merge == MERGE_DISTINCT:
                kept = dedup_rows(rows, group_vars)
            else:
                kept = rows
            wire_bytes, wire_values = rows_wire_size(kept)
            stats.gather_rows += len(kept)
            partial = kept
        stats.bytes_transferred += wire_bytes
        stats.values_transferred += wire_values
        return partial

    def _gather(
        self,
        merge: str,
        partials: list[Any],
        template,
        sort_keys,
        group_vars,
        limit: int | None,
    ):
        """Fold shard partials into the exact unsharded answer."""
        if merge == MERGE_PARTIAL_AGGREGATE:
            gathered = PartialGroups(template)
            for partial in partials:
                gathered.merge(partial)
            elements = gathered.finalize()
        elif merge in (MERGE_TOPK, MERGE_ORDERED):
            merged = merge_sorted(partials, sort_keys)
            if merge == MERGE_TOPK and limit is not None:
                merged = dedup_rows(merged, group_vars)[:limit]
            elements = build_elements(template, merged)
        else:
            rows = [row for partial in partials for row in partial]
            if merge == MERGE_DISTINCT:
                rows = dedup_rows(rows, group_vars)
            elements = build_elements(template, rows)
        if limit is not None:
            elements = elements[:limit]
        return elements

    def _key_ranges(self, index: int) -> str:
        """One shard's key-range coverage across shard maps, rendered.

        Attached to the shard span (satellite: ``shard_index`` and
        ``key_range`` as *attributes*, not just the span name) so trace
        analysis can correlate shard latency with key coverage.
        """
        parts = []
        for shard_map in self.shard_maps.values():
            if index < len(shard_map.ranges):
                parts.append(
                    f"{shard_map.source}:"
                    f"{shard_map.ranges[index].describe()}"
                )
        return "; ".join(parts)

    # -- statistics-based skipping --------------------------------------------

    def _stats_bounds(self, index: int, fragment: Fragment,
                      key_var: str) -> tuple[Any, Any] | None:
        """One shard's observed key bounds for a fragment, if gathered.

        Statistics live in the shard engines (populated by their own
        vectorized scans); keys are access shapes, which retargeting
        preserves, so the coordinator's fragment looks them up directly.
        """
        repo = self.shard_engines[index].column_stats
        if repo is None:
            return None
        stats = repo.column(access_key(fragment), key_var)
        if stats is None:
            return None
        return stats.bounds()

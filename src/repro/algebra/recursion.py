"""Recursion: a semi-naive fixpoint operator.

XML documents and views can be recursive ("recursion" is on the paper's
section-4 feature list); FixPoint computes the transitive expansion of a
seed set of tuples under a step function until no new tuples appear.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.algebra.operators import Operator
from repro.algebra.tuples import BindingTuple
from repro.errors import ExecutionError
from repro.xmldm.values import _comparison_key


def _tuple_key(row: BindingTuple) -> tuple:
    return tuple(
        sorted((var, _comparison_key(row[var])) for var in row.variables)
    )


class FixPoint(Operator):
    """Semi-naive least fixpoint.

    ``step`` maps the *delta* (newly discovered tuples) to candidate new
    tuples; iteration stops when a round adds nothing.  ``max_rounds``
    guards against non-terminating steps (raises ExecutionError).
    """

    def __init__(
        self,
        seed: Operator,
        step: Callable[[list[BindingTuple]], "Iterator[BindingTuple] | list[BindingTuple]"],
        label: str = "",
        max_rounds: int = 10_000,
    ):
        super().__init__(seed)
        self.step = step
        self.label = label
        self.max_rounds = max_rounds

    def _produce(self) -> Iterator[BindingTuple]:
        seen: set[tuple] = set()
        delta: list[BindingTuple] = []
        for row in self.children[0]:
            key = _tuple_key(row)
            if key not in seen:
                seen.add(key)
                delta.append(row)
                yield row
        rounds = 0
        while delta:
            rounds += 1
            if rounds > self.max_rounds:
                raise ExecutionError(
                    f"FixPoint({self.label}) exceeded {self.max_rounds} rounds"
                )
            next_delta: list[BindingTuple] = []
            for row in self.step(delta):
                key = _tuple_key(row)
                if key not in seen:
                    seen.add(key)
                    next_delta.append(row)
                    yield row
            delta = next_delta

    def describe(self) -> str:
        return f"FixPoint({self.label or 'recursive'})"

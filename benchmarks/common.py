"""Shared helpers for the experiment benchmarks.

Each ``bench_e*.py`` module reproduces one experiment from DESIGN.md's
index: a ``run_experiment()`` returning rows, a table printer, a
pytest-benchmark hook, and a ``__main__`` entry so the table can be
produced with ``python benchmarks/bench_eN_*.py`` directly.
"""

from __future__ import annotations

from typing import Any, Sequence


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Format and print an experiment table; returns the text."""
    widths = [len(str(h)) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [_cell(value) for value in row]
        rendered_rows.append(rendered)
        for i, cell in enumerate(rendered):
            widths[i] = max(widths[i], len(cell))
    lines = [f"\n== {title} =="]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for rendered in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(rendered))
        )
    text = "\n".join(lines)
    print(text)
    return text


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]

"""Unit tests for the XML-QL dialect: lexer, parser, binder, translation."""

import pytest

from repro.errors import BindingError, QuerySyntaxError
from repro.query import ast, bind_query, parse_query, translate_query
from repro.query.exprs import compile_predicate, compile_value, flex_compare
from repro.query.lexer import tokenize
from repro.query.parser import parse_pattern
from repro.algebra import BindingTuple
from repro.xmldm import parse_document, serialize
from repro.xmldm.values import NULL, Record


class TestLexer:
    def test_tag_vs_comparison_disambiguation(self):
        tokens = tokenize("<a> $x < 5")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == ["TAGOPEN", "IDENT", "GT", "VAR", "OP", "NUMBER"]

    def test_closing_and_selfclose(self):
        tokens = tokenize("</a> <b/>")
        assert tokens[0].kind == "TAGCLOSE"
        assert [t.kind for t in tokens[:-1]] == [
            "TAGCLOSE", "IDENT", "GT", "TAGOPEN", "IDENT", "SELFCLOSE",
        ]

    def test_var_token(self):
        tokens = tokenize("$abc_1")
        assert tokens[0].kind == "VAR"
        assert tokens[0].value == "abc_1"

    def test_bare_dollar_rejected(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("$ x")

    def test_string_escapes(self):
        tokens = tokenize(r'"a\"b"')
        assert tokens[0].value == 'a"b'

    def test_comment(self):
        tokens = tokenize("WHERE # comment\n$x")
        assert [t.kind for t in tokens[:-1]] == ["KEYWORD", "VAR"]

    def test_keyword_preserves_original(self):
        tokens = tokenize("by BY By")
        assert [t.original for t in tokens[:-1]] == ["by", "BY", "By"]


QUERY = """
WHERE <bib><book year=$y>
        <title>$t</title>
        <author>$a</author>
      </book></bib> IN "books",
      $y > 1995
CONSTRUCT <result year=$y><title>$t</title></result>
ORDER BY $t DESC
"""


class TestParser:
    def test_full_query_shape(self):
        query = parse_query(QUERY)
        assert len(query.pattern_clauses) == 1
        assert len(query.condition_clauses) == 1
        assert query.order_by[0].descending
        assert query.sources == ("books",)

    def test_pattern_structure(self):
        clause = parse_query(QUERY).pattern_clauses[0]
        bib = clause.pattern
        assert bib.tag == "bib"
        book = bib.children[0]
        assert book.attributes[0].var == "y"
        assert book.children[0].text_var == "t"

    def test_template_structure(self):
        template = parse_query(QUERY).construct
        assert template.tag == "result"
        assert template.attributes[0][1] == ast.Var("y")
        assert template.children[0].tag == "title"

    def test_self_closing_pattern(self):
        pattern = parse_pattern('<ping kind=$k/>')
        assert pattern.attributes[0].var == "k"
        assert not pattern.children

    def test_element_as(self):
        pattern = parse_pattern("<book><title>$t</title></book> ELEMENT_AS $e")
        assert pattern.element_var == "e"

    def test_anonymous_closing_tag(self):
        pattern = parse_pattern("<a><b>$x</></>")
        assert pattern.tag == "a"
        assert pattern.children[0].text_var == "x"

    def test_mismatched_closing_tag(self):
        with pytest.raises(QuerySyntaxError):
            parse_pattern("<a></b>")

    def test_text_literal_in_pattern(self):
        pattern = parse_pattern('<status>"open"</status>')
        assert pattern.text_literal == "open"

    def test_descendant_pattern_parsed(self):
        pattern = parse_pattern("<a><//b>$x</b></a>")
        assert pattern.children[0].descendant
        assert pattern.children[0].text_var == "x"

    def test_descendant_pattern_as_clause_root(self):
        query = parse_query('WHERE <//item>$v</item> IN "s" CONSTRUCT <r>$v</r>')
        assert query.pattern_clauses[0].pattern.descendant

    def test_multiple_sources(self):
        query = parse_query(
            'WHERE <a>$x</a> IN "s1", <b>$y</b> IN "s2" CONSTRUCT <r>$x</r>'
        )
        assert query.sources == ("s1", "s2")

    def test_source_as_identifier(self):
        query = parse_query("WHERE <a>$x</a> IN books CONSTRUCT <r>$x</r>")
        assert query.sources == ("books",)

    def test_condition_operators(self):
        query = parse_query(
            'WHERE <a>$x</a> IN "s", $x >= 1 AND $x != 3 OR NOT $x = 9 '
            "CONSTRUCT <r>$x</r>"
        )
        condition = query.condition_clauses[0].expr
        assert condition.op == "OR"

    def test_like_condition(self):
        query = parse_query(
            'WHERE <a>$x</a> IN "s", $x LIKE "A%" CONSTRUCT <r>$x</r>'
        )
        assert query.condition_clauses[0].expr.op == "LIKE"

    def test_limit_parsed(self):
        query = parse_query(
            'WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</r> ORDER BY $x LIMIT 5'
        )
        assert query.limit == 5

    def test_limit_requires_integer(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</r> LIMIT 2.5')

    def test_aggregate_in_template(self):
        query = parse_query(
            'WHERE <s city=$c><amt>$a</amt></s> IN "d" '
            "CONSTRUCT <city name=$c><total>sum($a)</total></city>"
        )
        total = query.construct.children[0]
        agg = total.children[0]
        assert agg.kind == "sum"
        assert agg.var == "a"

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(
                'WHERE <s><a>$a</a></s> IN "d" '
                "CONSTRUCT <r><x>median($a)</x></r>"
            )

    def test_keyword_tags_keep_case(self):
        query = parse_query('WHERE <a>$x</a> IN "s" CONSTRUCT <by>$x</by>')
        assert query.construct.tag == "by"

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "WHERE CONSTRUCT <r/>",
            'WHERE <a>$x</a> CONSTRUCT <r/>',
            'WHERE <a>$x</a> IN CONSTRUCT <r/>',
            'WHERE <a>$x</a> IN "s"',
            'WHERE <a>$x $y</a> IN "s" CONSTRUCT <r/>',
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(QuerySyntaxError):
            parse_query(text)


class TestBinder:
    def test_safe_query_binds(self):
        bound = bind_query(parse_query(QUERY))
        assert bound.bound_vars == {"y", "t", "a"}
        assert bound.output_vars == {"y", "t"}

    def test_unbound_condition_variable(self):
        with pytest.raises(BindingError):
            bind_query(
                parse_query(
                    'WHERE <a>$x</a> IN "s", $zz = 1 CONSTRUCT <r>$x</r>'
                )
            )

    def test_unbound_construct_variable(self):
        with pytest.raises(BindingError):
            bind_query(
                parse_query('WHERE <a>$x</a> IN "s" CONSTRUCT <r>$nope</r>')
            )

    def test_unbound_order_by(self):
        with pytest.raises(BindingError):
            bind_query(
                parse_query(
                    'WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</r> ORDER BY $zz'
                )
            )


class TestExpressions:
    def row(self, **bindings):
        return BindingTuple(bindings)

    def test_flex_compare_numeric_coercion(self):
        assert flex_compare("10", 9) == 1
        assert flex_compare(9, "10") == -1
        assert flex_compare("abc", 1) is not None  # falls back to type rank

    def test_flex_compare_null(self):
        assert flex_compare(NULL, 1) is None

    def test_comparison_predicate(self):
        expr = parse_query(
            'WHERE <a>$x</a> IN "s", $x > 5 CONSTRUCT <r>$x</r>'
        ).condition_clauses[0].expr
        predicate = compile_predicate(expr)
        assert predicate(self.row(x="7"))
        assert not predicate(self.row(x="3"))
        assert not predicate(self.row(x=NULL))

    def test_arithmetic(self):
        expr = ast.BinOp("+", ast.Var("a"), ast.Literal(2))
        assert compile_value(expr)(self.row(a=3)) == 5.0

    def test_division_by_zero_is_null(self):
        expr = ast.BinOp("/", ast.Literal(1), ast.Literal(0))
        assert compile_value(expr)(self.row()) is NULL

    def test_functions(self):
        assert compile_value(ast.Call("upper", (ast.Var("v"),)))(self.row(v="ab")) == "AB"
        assert compile_value(ast.Call("length", (ast.Var("v"),)))(self.row(v="abc")) == 3
        contains = ast.Call("contains", (ast.Var("v"), ast.Literal("el")))
        assert compile_predicate(contains)(self.row(v="hello"))

    def test_unknown_function(self):
        with pytest.raises(BindingError):
            compile_value(ast.Call("bogus", ()))

    def test_like_percent(self):
        expr = ast.BinOp("LIKE", ast.Var("v"), ast.Literal("A%"))
        predicate = compile_predicate(expr)
        assert predicate(self.row(v="Abc"))
        assert not predicate(self.row(v="abc"))


class TestTranslate:
    def resolver(self, docs):
        return lambda name: docs[name]

    def test_condition_applied_early(self):
        doc = parse_document("<r><i><v>1</v></i><i><v>9</v></i></r>")
        plan = translate_query(
            'WHERE <i><v>$v</v></i> IN "d", $v > 5 CONSTRUCT <out>$v</out>',
            self.resolver({"d": [doc]}),
        )
        results = plan.results()
        assert [e.text_content() for e in results] == ["9"]
        # the Select sits below the Construct
        assert plan.explain().index("Construct") < plan.explain().index("Select")

    def test_join_on_shared_variable_uses_hash_join(self):
        doc_a = parse_document("<r><i><k>1</k></i><i><k>2</k></i></r>")
        doc_b = parse_document("<r><j><k>2</k><w>x</w></j></r>")
        plan = translate_query(
            'WHERE <i><k>$k</k></i> IN "a", <j><k>$k</k><w>$w</w></j> IN "b" '
            "CONSTRUCT <m><k>$k</k><w>$w</w></m>",
            self.resolver({"a": [doc_a], "b": [doc_b]}),
        )
        assert "HashJoin($k)" in plan.explain()
        assert len(plan.results()) == 1

    def test_disjoint_clauses_use_nested_loop(self):
        doc = parse_document("<r><i><v>1</v></i></r>")
        plan = translate_query(
            'WHERE <i><v>$v</v></i> IN "a", <i><v>$w</v></i> IN "a" '
            "CONSTRUCT <m><v>$v</v><w>$w</w></m>",
            self.resolver({"a": [doc]}),
        )
        assert "NestedLoopJoin" in plan.explain()

    def test_order_by_numeric(self):
        doc = parse_document(
            "<r><i><v>10</v></i><i><v>9</v></i><i><v>100</v></i></r>"
        )
        plan = translate_query(
            'WHERE <i><v>$v</v></i> IN "d" CONSTRUCT <o>$v</o> ORDER BY $v',
            self.resolver({"d": [doc]}),
        )
        assert [e.text_content() for e in plan.results()] == ["9", "10", "100"]

    def test_aggregates_group_by_direct_vars(self):
        doc = parse_document(
            '<s><x c="a"><v>1</v></x><x c="a"><v>3</v></x>'
            '<x c="b"><v>5</v></x></s>'
        )
        results = translate_query(
            'WHERE <x c=$c><v>$v</v></x> IN "d" '
            "CONSTRUCT <g k=$c><sum>sum($v)</sum><n>count($v)</n>"
            "<avg>avg($v)</avg><lo>min($v)</lo></g>",
            self.resolver({"d": [doc]}),
        ).results()
        by_key = {e.attributes["k"]: e for e in results}
        assert by_key["a"].first_child("sum").text_content() == "4"
        assert by_key["a"].first_child("n").text_content() == "2"
        assert by_key["a"].first_child("avg").text_content() == "2.0"
        assert by_key["b"].first_child("lo").text_content() == "5"

    def test_aggregate_without_group_is_global(self):
        doc = parse_document("<s><x><v>2</v></x><x><v>40</v></x></s>")
        results = translate_query(
            'WHERE <x><v>$v</v></x> IN "d" '
            "CONSTRUCT <total>sum($v)</total>",
            self.resolver({"d": [doc]}),
        ).results()
        assert len(results) == 1
        assert results[0].text_content() == "42"

    def test_descendant_pattern_matches_any_depth(self):
        doc = parse_document(
            "<a><wrap><x><v>deep</v></x></wrap><x><v>shallow</v></x></a>"
        )
        shallow_only = translate_query(
            'WHERE <a><x><v>$v</v></x></a> IN "d" CONSTRUCT <r>$v</r>',
            self.resolver({"d": [doc]}),
        ).results()
        assert [e.text_content() for e in shallow_only] == ["shallow"]
        both = translate_query(
            'WHERE <a><//x><v>$v</v></x></a> IN "d" CONSTRUCT <r>$v</r>',
            self.resolver({"d": [doc]}),
        ).results()
        assert sorted(e.text_content() for e in both) == ["deep", "shallow"]

    def test_records_and_elements_join(self):
        doc = parse_document("<r><b><t>X</t><who>Ann</who></b></r>")
        records = [Record({"name": "Ann", "city": "Sea"})]
        plan = translate_query(
            'WHERE <b><t>$t</t><who>$n</who></b> IN "docs", '
            '<c><name>$n</name><city>$c</city></c> IN "recs" '
            "CONSTRUCT <m><t>$t</t><c>$c</c></m>",
            self.resolver({"docs": [doc], "recs": records}),
        )
        assert serialize(plan.results()[0]) == "<m><t>X</t><c>Sea</c></m>"

"""The integration engine: the paper's primary contribution, assembled.

:class:`NimbleEngine` wires the pieces together along Figure 1's path:
parse (query language) -> resolve (metadata server/catalog) ->
decompose + optimize (per-source fragments, capability- and cost-aware)
-> execute (physical algebra over wrappers, with materialization and
partial-results handling) -> construct (XML results) -> format (lenses).
"""

from repro.core.engine import EngineStats, NimbleEngine, QueryResult
from repro.core.partial import Completeness, PartialResultPolicy
from repro.core.loadbalance import (
    CompletedQuery,
    EngineCluster,
    EngineInstance,
    RejectedQuery,
)
from repro.core.lens import Lens, LensServer
from repro.core.auth import AccessController, User
from repro.core.formatting import DeviceFormatter, format_result

from repro.core.sharding import ShardRouter, retarget
from repro.core.engine import BindingResult

__all__ = [
    "AccessController",
    "BindingResult",
    "CompletedQuery",
    "Completeness",
    "DeviceFormatter",
    "EngineCluster",
    "EngineInstance",
    "EngineStats",
    "Lens",
    "LensServer",
    "NimbleEngine",
    "PartialResultPolicy",
    "QueryResult",
    "RejectedQuery",
    "ShardRouter",
    "User",
    "format_result",
    "retarget",
]

"""Plan wrapper: execution entry point, explain, and cardinality stats."""

from __future__ import annotations

from typing import Any, Iterator

from repro.algebra.operators import Operator
from repro.algebra.tuples import BindingTuple


class Plan:
    """A complete physical plan rooted at one operator."""

    def __init__(self, root: Operator, output_var: str | None = None):
        self.root = root
        self.output_var = output_var

    def execute(self) -> list[BindingTuple]:
        """Run the plan to completion and return all tuples."""
        self.root.reset_counters()
        return list(self.root)

    def results(self) -> list[Any]:
        """Run the plan and return output values.

        With an ``output_var``, the bound values; otherwise the tuples.
        """
        rows = self.execute()
        if self.output_var is None:
            return rows
        return [row[self.output_var] for row in rows if self.output_var in row]

    def stream(self) -> Iterator[BindingTuple]:
        self.root.reset_counters()
        return iter(self.root)

    def explain(self, analyze: bool = False) -> str:
        """The plan as indented text.

        ``analyze=True`` annotates every operator with its measured
        ``rows_out``/``rows_in`` and (when a clock was bound via
        :meth:`bind_analyze` before execution) inclusive virtual time.
        """
        return self.root.explain(analyze=analyze)

    def bind_analyze(self, clock) -> None:
        """Attach a virtual clock so execution times every operator."""
        self.root.bind_analyze(clock)

    def bind_vectorized(self, batch_rows: int) -> None:
        """Arm the plan for columnar (batched) execution."""
        self.root.bind_vectorized(batch_rows)

    def operator_stats(self) -> list[tuple[str, int]]:
        """(description, rows produced) per operator, top-down."""
        return [(op.describe(), op.rows_out) for op in self.root.walk()]

    def analyze_stats(self) -> list[tuple[str, dict]]:
        """(description, analyze annotations) per operator, top-down."""
        return [(op.describe(), op.analyze_stats()) for op in self.root.walk()]

    def __repr__(self) -> str:
        return f"Plan(root={self.root.describe()})"

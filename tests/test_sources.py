"""Unit tests for the source wrapper layer."""

import pytest

from repro.algebra import AttributePattern, TreePattern
from repro.errors import CapabilityError, SourceError, SourceUnavailableError
from repro.query import ast as qast
from repro.simtime import SimClock
from repro.sources import (
    Access,
    AvailabilityModel,
    DirectoryEntry,
    FlakySource,
    Fragment,
    HierarchicalSource,
    NetworkModel,
    SourceRegistry,
    XMLSource,
)
from repro.sources.base import CapabilityProfile
from repro.sources.relational import RelationalSource
from repro.sources.sqlgen import generate_sql
from repro.xmldm.values import NULL

from .conftest import BOOKS_XML, build_crm_database


def flat_pattern(relation, **vars_to_fields):
    children = tuple(
        TreePattern(field, text_var=var) for var, field in vars_to_fields.items()
    )
    return TreePattern(relation, children=children)


def condition(op, var, value):
    return qast.BinOp(op, qast.Var(var), qast.Literal(value))


class TestCapabilityProfile:
    def test_accepts_simple_comparison(self):
        profile = CapabilityProfile(selections=True)
        assert profile.accepts_condition(condition("=", "x", 1))

    def test_rejects_when_no_selections(self):
        profile = CapabilityProfile(selections=False)
        assert not profile.accepts_condition(condition("=", "x", 1))

    def test_rejects_unsupported_operator(self):
        profile = CapabilityProfile(
            selections=True, condition_ops=frozenset({"="})
        )
        assert not profile.accepts_condition(condition(">", "x", 1))

    def test_rejects_function_calls(self):
        profile = CapabilityProfile(selections=True)
        call = qast.BinOp("=", qast.Call("upper", (qast.Var("x"),)), qast.Literal("A"))
        assert not profile.accepts_condition(call)

    def test_nested_and(self):
        profile = CapabilityProfile(selections=True)
        expr = qast.BinOp("AND", condition("=", "x", 1), condition(">", "y", 2))
        assert profile.accepts_condition(expr)


class TestNetworkModel:
    def test_charges_clock(self):
        clock = SimClock()
        network = NetworkModel(latency_ms=10.0, per_row_ms=2.0)
        network.charge_call(clock)
        network.charge_rows(clock, 5)
        assert clock.now == 20.0
        assert network.calls == 1
        assert network.rows_transferred == 5

    def test_reset_counters(self):
        network = NetworkModel()
        network.calls = 3
        network.reset_counters()
        assert network.calls == 0


class TestSQLGeneration:
    def test_single_access_projection(self):
        fragment = Fragment("s", (Access("customers",
                                         flat_pattern("customers", n="name")),))
        generated = generate_sql(fragment)
        assert generated.text == "SELECT t0.name AS n FROM customers t0"

    def test_conditions_and_literals(self):
        pattern = TreePattern(
            "customers",
            children=(
                TreePattern("name", text_var="n"),
                TreePattern("city", text_literal="Seattle"),
            ),
        )
        fragment = Fragment(
            "s", (Access("customers", pattern),),
            conditions=(condition(">", "n", "M"),),
        )
        text = generate_sql(fragment).text
        assert "t0.city = 'Seattle'" in text
        assert "(t0.name > 'M')" in text

    def test_shared_variable_becomes_join(self):
        fragment = Fragment(
            "s",
            (
                Access("customers", flat_pattern("customers", k="id", n="name")),
                Access("orders", flat_pattern("orders", k="cust_id", t="total")),
            ),
        )
        text = generate_sql(fragment).text
        assert "t0.id = t1.cust_id" in text
        assert "FROM customers t0, orders t1" in text

    def test_input_vars_become_params(self):
        fragment = Fragment(
            "s",
            (Access("t", flat_pattern("t", a="x")),),
            conditions=(qast.BinOp("=", qast.Var("a"), qast.Var("p")),),
            input_vars=("p",),
        )
        generated = generate_sql(fragment)
        assert "?" in generated.text
        assert generated.param_order == ("p",)
        assert generated.bind({"p": 5}) == [5]

    def test_string_escaping(self):
        pattern = TreePattern(
            "t", children=(TreePattern("name", text_literal="O'Brien"),
                           TreePattern("id", text_var="i"))
        )
        fragment = Fragment("s", (Access("t", pattern),))
        assert "O''Brien" in generate_sql(fragment).text

    def test_nested_pattern_rejected(self):
        nested = TreePattern(
            "t", children=(TreePattern("a", children=(TreePattern("b"),)),)
        )
        with pytest.raises(CapabilityError):
            generate_sql(Fragment("s", (Access("t", nested),)))


class TestRelationalSource:
    def test_execute_returns_var_keyed_records(self, clock):
        source = RelationalSource("crm", build_crm_database(), clock)
        fragment = Fragment(
            "crm",
            (Access("customers", flat_pattern("customers", n="name", c="city")),),
            conditions=(condition("=", "c", "Seattle"),),
        )
        records = source.execute(fragment)
        assert {r["n"] for r in records} == {"Ann", "Cam"}
        assert "WHERE" in source.last_sql

    def test_nulls_become_model_null(self, clock):
        db = build_crm_database()
        db.execute("INSERT INTO customers VALUES (9, 'Zoe', NULL, 1)")
        source = RelationalSource("crm", db, clock)
        fragment = Fragment(
            "crm",
            (Access("customers", flat_pattern("customers", n="name", c="city")),),
            conditions=(condition("=", "n", "Zoe"),),
        )
        assert source.execute(fragment)[0]["c"] is NULL

    def test_relations_metadata(self, clock):
        source = RelationalSource("crm", build_crm_database(), clock)
        relations = source.relations()
        assert set(relations) == {"customers", "orders"}
        assert relations["customers"].field("name").type == "string"
        assert source.cardinality("customers") == 4

    def test_unknown_relation_rejected(self, clock):
        source = RelationalSource("crm", build_crm_database(), clock)
        fragment = Fragment("crm", (Access("nope", flat_pattern("nope", a="x")),))
        with pytest.raises(CapabilityError):
            source.execute(fragment)

    def test_network_accounting(self, clock):
        source = RelationalSource(
            "crm", build_crm_database(), clock,
            NetworkModel(latency_ms=100.0, per_row_ms=1.0),
        )
        fragment = Fragment(
            "crm", (Access("customers", flat_pattern("customers", n="name")),)
        )
        source.execute(fragment)
        assert clock.now == 104.0  # 100 latency + 4 rows


class TestXMLSource:
    def test_pattern_and_condition_at_source(self, clock):
        source = XMLSource("lib", {"books": BOOKS_XML}, clock,
                           NetworkModel(per_row_ms=1.0))
        pattern = TreePattern(
            "book",
            attributes=(AttributePattern("year", var="y"),),
            children=(TreePattern("title", text_var="t"),),
        )
        fragment = Fragment(
            "lib", (Access("books", pattern),),
            conditions=(condition(">", "y", 1995),),
        )
        records = source.execute(fragment)
        assert {r["t"] for r in records} == {"Data on the Web", "XML Handbook"}
        # only filtered rows were charged to the network
        assert source.network.rows_transferred == 2

    def test_join_fragment_rejected(self, clock):
        source = XMLSource("lib", {"books": BOOKS_XML}, clock)
        fragment = Fragment(
            "lib",
            (Access("books", flat_pattern("book", t="title")),
             Access("books", flat_pattern("book", y="year"))),
        )
        with pytest.raises(CapabilityError):
            source.execute(fragment)

    def test_add_document_parses_text(self, clock):
        source = XMLSource("lib", clock=clock)
        source.add_document("d", "<r><x>1</x></r>")
        assert source.cardinality("d") == 1


class TestHierarchicalSource:
    @pytest.fixture
    def directory(self, clock):
        source = HierarchicalSource("ldap", clock)
        root = DirectoryEntry("org")
        engineering = root.add_child("dept", label="eng")
        engineering.add_child("person", uid="u1", city="Seattle", title="swe")
        engineering.add_child("person", uid="u2", city="Boise", title="pm")
        sales = root.add_child("dept", label="sales")
        sales.add_child("person", uid="u3", city="Seattle", title="ae")
        source.add_tree("people", root, "person")
        return source

    def test_subtree_search(self, directory):
        fragment = Fragment(
            "ldap", (Access("people", flat_pattern("people", u="uid")),)
        )
        assert len(directory.execute(fragment)) == 3

    def test_equality_filter(self, directory):
        fragment = Fragment(
            "ldap",
            (Access("people", flat_pattern("people", u="uid", c="city")),),
            conditions=(condition("=", "c", "Seattle"),),
        )
        assert {r["u"] for r in directory.execute(fragment)} == {"u1", "u3"}

    def test_range_condition_rejected_by_profile(self, directory):
        fragment = Fragment(
            "ldap",
            (Access("people", flat_pattern("people", u="uid")),),
            conditions=(condition(">", "u", "u1"),),
        )
        with pytest.raises(CapabilityError):
            directory.execute(fragment)

    def test_path_pseudo_field(self, directory):
        fragment = Fragment(
            "ldap", (Access("people", flat_pattern("people", p="path", u="uid")),),
            conditions=(condition("=", "u", "u3"),),
        )
        records = directory.execute(fragment)
        assert records[0]["p"] == "org/dept/person"

    def test_cardinality(self, directory):
        assert directory.cardinality("people") == 3


class TestFlakySource:
    def test_offline_raises_unavailable(self, clock):
        inner = XMLSource("x", {"d": "<r/>"}, clock)
        flaky = FlakySource(inner, AvailabilityModel(availability=0.99))
        flaky.force_offline()
        fragment = Fragment("x", (Access("d", TreePattern("r", text_var="v")),))
        with pytest.raises(SourceUnavailableError):
            flaky.execute(fragment)

    def test_availability_model_long_run_fraction(self):
        model = AvailabilityModel(availability=0.8, mean_outage_ms=50.0, seed=3)
        samples = 20_000
        ups = sum(model.is_up(t * 10.0) for t in range(samples))
        assert 0.7 < ups / samples < 0.9

    def test_always_up_when_availability_one(self):
        model = AvailabilityModel(availability=1.0)
        assert all(model.is_up(t * 1000.0) for t in range(100))

    def test_availability_one_survives_extreme_times(self):
        # infinite uptime: the state boundary is +inf, so no amount of
        # virtual time ever flips the process or loops on boundaries
        model = AvailabilityModel(availability=1.0)
        assert model.is_up(0.0)
        assert model.is_up(1e15)
        assert model.is_up(float("inf"))

    def test_very_low_availability_is_mostly_down(self):
        model = AvailabilityModel(availability=0.01, mean_outage_ms=100.0,
                                  seed=11)
        samples = 20_000
        ups = sum(model.is_up(t * 10.0) for t in range(samples))
        assert ups / samples < 0.05

    def test_state_advance_across_many_boundaries(self):
        # one giant leap must land in the same state as many small steps
        stepping = AvailabilityModel(availability=0.5, mean_outage_ms=20.0,
                                     seed=13)
        leaping = AvailabilityModel(availability=0.5, mean_outage_ms=20.0,
                                    seed=13)
        final_ms = 500_000.0  # ~12 500 expected up/down periods
        for t in range(0, int(final_ms), 50):
            stepping.is_up(float(t))
        assert stepping.is_up(final_ms) == leaping.is_up(final_ms)
        assert leaping._boundary_ms > final_ms

    def test_invalid_availability(self):
        with pytest.raises(ValueError):
            AvailabilityModel(availability=0.0)
        with pytest.raises(ValueError):
            AvailabilityModel(availability=1.5)
        with pytest.raises(ValueError):
            AvailabilityModel(availability=-0.2)

    def test_delegates_capabilities(self, clock):
        inner = XMLSource("x", {"d": "<r/>"}, clock)
        flaky = FlakySource(inner)
        assert flaky.capabilities is inner.capabilities
        assert flaky.relations() == inner.relations()


class TestRegistry:
    def test_register_and_get(self, clock):
        registry = SourceRegistry(clock)
        source = XMLSource("a", {"d": "<r/>"})
        registry.register(source)
        assert registry.get("a") is source
        assert source.clock is clock  # re-pointed at the registry clock

    def test_duplicate_name_rejected(self, clock):
        registry = SourceRegistry(clock)
        registry.register(XMLSource("a", {}))
        with pytest.raises(SourceError):
            registry.register(XMLSource("a", {}))

    def test_unknown_source(self, clock):
        with pytest.raises(SourceError):
            SourceRegistry(clock).get("nope")

    def test_network_totals(self, registry, clock):
        source = registry.get("library")
        fragment = Fragment(
            "library",
            (Access("books", TreePattern("book", children=(
                TreePattern("title", text_var="t"),))),),
        )
        source.execute(fragment)
        totals = registry.network_totals()
        assert totals["calls"] == 1
        assert totals["rows_transferred"] == 3

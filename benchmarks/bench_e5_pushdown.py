"""E5 — capability-aware compilation: pushdown, indexes, source variance.

Paper claims: the compiler "considers both the type of the underlying
source, information concerning the layout of the data within the
sources, and the presence of indices on the data" (section 2.1), and the
optimizer "can address the varying query capabilities of different data
sources" (section 4).

E5a runs a selective join (customers x orders, two conditions) against
a relational source under four configurations: pushdown on/off x source
index present/absent.  Reported: rows transferred over the (simulated)
wire, rows scanned inside the source, and end-to-end virtual latency.

E5b runs the same logical selection against three wrappers with
different capability profiles — relational (full pushdown),
XML (pattern+selection pushdown), hierarchical (equality only, range
evaluated at the engine) — and reports rows transferred.

Expected shape: pushdown cuts transfers by an order of magnitude; the
index cuts source-side scans but only when the condition was pushed;
weaker capability profiles transfer more.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, print_table, write_bench_json

from repro import (
    Catalog,
    Database,
    HierarchicalSource,
    NetworkModel,
    NimbleEngine,
    RelationalSource,
    SimClock,
    SourceRegistry,
    XMLSource,
)
from repro.sources.hierarchical import DirectoryEntry
from repro.workloads import make_customer_universe

N_CUSTOMERS = 400

BENCH_STATS = BenchStats()

JOIN_QUERY = (
    'WHERE <c><id>$i</id><first_name>$f</first_name><city>$city</city></c> '
    'IN "customers", '
    '<o><cust_id>$i</cust_id><total>$t</total></o> IN "orders", '
    '$city = "seattle", $t > 400 '
    "CONSTRUCT <hit><f>$f</f><t>$t</t></hit>"
)


def build_crm(indexed: bool) -> Database:
    universe = make_customer_universe(N_CUSTOMERS, seed=3)
    db = universe.as_databases()["crm"]
    orders = Database("orders_db")
    db.execute(
        "CREATE TABLE orders (oid INTEGER PRIMARY KEY, cust_id INTEGER,"
        " total REAL)"
    )
    import random

    rng = random.Random(4)
    oid = 0
    for record in universe.records["crm"]:
        for _ in range(rng.randrange(0, 4)):
            oid += 1
            db.insert_rows(
                "orders", [[oid, int(record["id"]), rng.uniform(1, 500)]]
            )
    if indexed:
        db.execute("CREATE INDEX idx_city ON customers (city)")
        db.execute("CREATE INDEX idx_total ON orders (total)")
    return db


def run_config(pushdown: bool, indexed: bool) -> list:
    clock = SimClock()
    registry = SourceRegistry(clock)
    db = build_crm(indexed)
    source = RelationalSource(
        "crm", db, network=NetworkModel(latency_ms=50.0, per_row_ms=1.0)
    )
    registry.register(source)
    catalog = Catalog(registry)
    catalog.map_relation("customers", "crm", "customers")
    catalog.map_relation("orders", "crm", "orders")
    engine = NimbleEngine(catalog, pushdown=pushdown)
    db.counters["rows_scanned"] = 0
    before = clock.now
    result = BENCH_STATS.absorb(engine.query(JOIN_QUERY))
    return [
        "on" if pushdown else "off",
        "yes" if indexed else "no",
        result.stats.rows_transferred,
        db.counters["rows_scanned"],
        clock.now - before,
        len(result.elements),
    ]


POINT_QUERY_TEMPLATE = (
    "WHERE <p><uid>$u</uid><city>$c</city></p> IN {rel!r}, "
    '$c = "seattle" CONSTRUCT <hit>$u</hit>'
)


def run_capability_variance() -> list[list]:
    """Same selection against three capability profiles."""
    universe = make_customer_universe(N_CUSTOMERS, seed=3)
    clock = SimClock()
    registry = SourceRegistry(clock)
    catalog = Catalog(registry)

    # relational wrapper
    crm = universe.as_databases()["crm"]
    registry.register(
        RelationalSource("rdb", crm,
                         network=NetworkModel(latency_ms=50, per_row_ms=1.0))
    )
    # the mediated view renames 'uid' onto the RDB's 'id' column
    catalog.map_relation("rdb_customers", "rdb", "customers", {"uid": "id"})

    # XML wrapper over the same data
    items = "".join(
        f"<p><uid>{r['id']}</uid><city>{r['city']}</city></p>"
        for r in universe.records["crm"]
    )
    registry.register(
        XMLSource("xmlsrc", {"people": f"<feed>{items}</feed>"},
                  network=NetworkModel(latency_ms=50, per_row_ms=1.0))
    )
    # XML documents are addressed directly ("source.document"): the
    # pattern's tags name elements, not mapped columns

    # hierarchical wrapper (equality-only) over the same data
    hier = HierarchicalSource(
        "dir", network=NetworkModel(latency_ms=50, per_row_ms=1.0)
    )
    root = DirectoryEntry("org")
    for record in universe.records["crm"]:
        root.add_child("person", uid=record["id"], city=record["city"])
    hier.add_tree("people", root, "person")
    registry.register(hier)
    catalog.map_relation("dir_customers", "dir", "people")

    engine = NimbleEngine(catalog)
    rows = []
    for label, relation, capability in (
        ("relational", "rdb_customers", "full SQL pushdown"),
        ("xml", "xmlsrc.people", "pattern + selection pushdown"),
        ("hierarchical", "dir_customers", "equality-only pushdown"),
    ):
        query = (
            f'WHERE <p><uid>$u</uid><city>$c</city></p> IN "{relation}", '
            '$c = "seattle" CONSTRUCT <hit>$u</hit>'
        )
        result = BENCH_STATS.absorb(engine.query(query))
        rows.append([label, capability, result.stats.rows_transferred,
                     len(result.elements)])
    # a range predicate: hierarchical cannot push it, transfers everything
    range_rows = []
    for label, relation in (("relational", "rdb_customers"),
                            ("hierarchical", "dir_customers")):
        query = (
            f'WHERE <p><uid>$u</uid><city>$c</city></p> IN "{relation}", '
            '$c > "s" CONSTRUCT <hit>$u</hit>'
        )
        result = BENCH_STATS.absorb(engine.query(query))
        range_rows.append([label, "range $c > 's'",
                           result.stats.rows_transferred,
                           len(result.elements)])
    return rows + range_rows


def run_experiment():
    BENCH_STATS.reset()
    config_rows = [
        run_config(pushdown, indexed)
        for pushdown in (True, False)
        for indexed in (True, False)
    ]
    return config_rows, run_capability_variance()


def report():
    config_rows, capability_rows = run_experiment()
    print_table(
        "E5a: pushdown x index (selective join, relational source)",
        ["pushdown", "index", "rows transferred", "rows scanned at source",
         "latency (virtual ms)", "results"],
        config_rows,
    )
    print_table(
        "E5b: the same selection across capability profiles",
        ["wrapper", "capability", "rows transferred", "results"],
        capability_rows,
    )
    by_key = {(row[0], row[1]): row for row in config_rows}
    write_bench_json(
        "e5_pushdown",
        ["pushdown", "index", "rows transferred", "rows scanned at source",
         "latency (virtual ms)", "results"],
        config_rows,
        headline={
            "rows_transferred_pushdown_on": by_key[("on", "yes")][2],
            "rows_transferred_pushdown_off": by_key[("off", "yes")][2],
        },
        extra_tables={
            "capabilities": (["wrapper", "capability", "rows transferred",
                              "results"], capability_rows),
        },
        stats=BENCH_STATS,
    )
    return config_rows, capability_rows


def test_e5_pushdown(benchmark):
    config_rows, capability_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    by_key = {(r[0], r[1]): r for r in config_rows}
    on_ix = by_key[("on", "yes")]
    on_noix = by_key[("on", "no")]
    off_ix = by_key[("off", "yes")]
    # all configurations agree on the answer
    assert len({r[5] for r in config_rows}) == 1
    # pushdown slashes transfers and latency
    assert on_ix[2] < off_ix[2] / 10
    assert on_ix[4] < off_ix[4] / 2
    # the index only helps when the condition reached the source
    assert on_ix[3] < on_noix[3]
    assert off_ix[3] >= on_noix[3]
    # weaker profiles transfer at least as much
    eq = {row[0]: row[2] for row in capability_rows[:3]}
    assert eq["relational"] == eq["xml"] == eq["hierarchical"]
    rng = {row[0]: row[2] for row in capability_rows[3:]}
    assert rng["hierarchical"] > rng["relational"]
    report()


if __name__ == "__main__":
    report()

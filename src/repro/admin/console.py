"""The management console: one structured view of the whole deployment.

Section 4's closing requirement: "configuration and management tools
that make it possible for administrators to set up, monitor, and
understand, the system."  The console reports — as data and as text —
the sources (type, capabilities, health, traffic), the mediated names,
the materialization store, replication jobs and engine counters.
"""

from __future__ import annotations

from typing import Any

from repro.admin.monitor import HealthMonitor
from repro.admin.replication import DataAdministrator
from repro.core.engine import NimbleEngine
from repro.mediator.catalog import DocumentTarget
from repro.mediator.mapping import RelationMapping
from repro.mediator.schema import ViewDef


class ManagementConsole:
    """Read-only administrative view over an engine and its periphery."""

    def __init__(
        self,
        engine: NimbleEngine,
        monitor: HealthMonitor | None = None,
        administrator: DataAdministrator | None = None,
    ):
        self.engine = engine
        self.monitor = monitor
        self.administrator = administrator

    # -- structured report ---------------------------------------------------

    def system_report(self) -> dict[str, Any]:
        catalog = self.engine.catalog
        registry = catalog.registry
        sources = []
        for source in registry:
            profile = source.capabilities
            entry: dict[str, Any] = {
                "name": source.name,
                "type": type(getattr(source, "inner", source)).__name__,
                "available": source.available(),
                "capabilities": {
                    "selections": profile.selections,
                    "joins": profile.joins,
                    "parameterized": profile.parameterized,
                },
                "network": {
                    "latency_ms": source.network.latency_ms,
                    "calls": source.network.calls,
                    "rows_transferred": source.network.rows_transferred,
                },
                "relations": {
                    name: source.cardinality(name)
                    for name in source.relations()
                },
            }
            if self.monitor is not None:
                health = self.monitor.health.get(source.name)
                if health is not None:
                    entry["uptime_fraction"] = health.uptime_fraction
            sources.append(entry)

        mediated = []
        for name in catalog.known_names():
            resolved = catalog.resolve(name)
            if isinstance(resolved, ViewDef):
                kind = "view"
                target = ", ".join(resolved.referenced_names())
            elif isinstance(resolved, RelationMapping):
                kind = "mapping"
                target = f"{resolved.source_name}.{resolved.source_relation}"
            else:
                assert isinstance(resolved, DocumentTarget)
                kind = "document"
                target = f"{resolved.source_name}.{resolved.relation}"
            mediated.append({"name": name, "kind": kind, "target": target})

        report: dict[str, Any] = {
            "clock_ms": self.engine.clock.now,
            "engine": {
                "name": self.engine.name,
                "queries_run": self.engine.queries_run,
                "default_policy": self.engine.default_policy.value,
                "pushdown": self.engine.pushdown,
            },
            "sources": sources,
            "mediated_names": mediated,
        }
        if self.engine.materializer is not None:
            manager = self.engine.materializer
            report["materialization"] = {
                **manager.summary(),
                "views_detail": [
                    {
                        "source": view.fragment.source,
                        "rows": view.row_count,
                        "fresh": view.is_fresh(self.engine.clock.now),
                        "hits": view.hits,
                        "policy": view.policy.kind,
                    }
                    for view in manager.store
                ],
            }
        if self.administrator is not None:
            report["replication"] = [
                {
                    "name": job.name,
                    "source": job.source.name,
                    "target": job.target_table,
                    "period_ms": job.period_ms,
                    "runs": job.runs,
                    "rows": job.rows_replicated,
                    "failures": job.failures,
                }
                for job in self.administrator.jobs.values()
            ]
        return report

    # -- text rendering ---------------------------------------------------------

    def render(self) -> str:
        """The report as indented text for a terminal."""
        report = self.system_report()
        lines = [
            f"=== {report['engine']['name']} @ {report['clock_ms']:.0f} ms ===",
            f"queries run: {report['engine']['queries_run']}, "
            f"policy: {report['engine']['default_policy']}, "
            f"pushdown: {report['engine']['pushdown']}",
            "",
            "sources:",
        ]
        for source in report["sources"]:
            status = "UP" if source["available"] else "DOWN"
            uptime = (
                f", uptime {source['uptime_fraction']:.0%}"
                if "uptime_fraction" in source
                else ""
            )
            lines.append(
                f"  [{status:4}] {source['name']} ({source['type']}) "
                f"calls={source['network']['calls']} "
                f"rows={source['network']['rows_transferred']}{uptime}"
            )
            for relation, cardinality in source["relations"].items():
                lines.append(f"          {relation}: ~{cardinality} rows")
        lines.append("")
        lines.append("mediated names:")
        for item in report["mediated_names"]:
            lines.append(f"  {item['name']} [{item['kind']}] -> {item['target']}")
        if "materialization" in report:
            info = report["materialization"]
            lines.append("")
            lines.append(
                f"materialized views: {info['views']} "
                f"({info['rows']} rows; {info['hits']} hits / "
                f"{info['misses']} misses)"
            )
            for view in info["views_detail"]:
                freshness = "fresh" if view["fresh"] else "STALE"
                lines.append(
                    f"  {view['source']}: {view['rows']} rows, "
                    f"{view['policy']}, {freshness}, {view['hits']} hits"
                )
        if "replication" in report:
            lines.append("")
            lines.append("replication jobs:")
            for job in report["replication"]:
                lines.append(
                    f"  {job['name']}: {job['source']} -> {job['target']} "
                    f"every {job['period_ms']:.0f} ms "
                    f"({job['runs']} runs, {job['rows']} rows, "
                    f"{job['failures']} failures)"
                )
        return "\n".join(lines)

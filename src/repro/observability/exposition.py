"""Prometheus-style text exposition of metrics snapshots.

The integration engine's registry snapshots are plain dicts; a real
deployment scrapes them.  :func:`prometheus_exposition` renders a
snapshot in the Prometheus text format (``# TYPE`` headers, one sample
per line, histograms as quantile-labelled summaries) and
:func:`parse_exposition` reads that text back — the round-trip is the
contract the tests pin, so an actual Prometheus scraper would agree
with our own parser about every value.

Rendering is deterministic: metric names are sanitized and emitted in
sorted order, and float values use ``repr`` so they survive the
round-trip bit-exactly.
"""

from __future__ import annotations

import re
from typing import Any

#: characters legal in a Prometheus metric name body
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: one exposition sample: name, optional {labels}, value
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)

#: the summary quantiles emitted per histogram (matches Histogram.snapshot)
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """A snapshot key as a legal Prometheus metric name."""
    cleaned = _NAME_RE.sub("_", name)
    if prefix:
        cleaned = f"{prefix}_{cleaned}"
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_exposition(snapshot: dict[str, Any],
                          prefix: str = "nimble") -> str:
    """A metrics snapshot in the Prometheus text exposition format.

    Counters expose as ``counter``, gauges as ``gauge``, and histogram
    snapshots as ``summary`` families: quantile-labelled samples plus
    ``_sum`` and ``_count``.  Input is the dict
    :meth:`~repro.observability.metrics.MetricsRegistry.snapshot`
    returns (or the merged fleet form from :mod:`aggregate`).
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        value = snapshot["counters"][name]
        lines.append(f"{metric} {_format_value(value)}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        value = snapshot["gauges"][name]
        lines.append(f"{metric} {_format_value(value)}")
    for name in sorted(snapshot.get("histograms", {})):
        metric = sanitize_metric_name(name, prefix)
        summary = snapshot["histograms"][name]
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in _QUANTILES:
            lines.append(
                f'{metric}{{quantile="{quantile}"}} '
                f"{_format_value(summary[key])}"
            )
        lines.append(f"{metric}_sum {_format_value(summary['sum'])}")
        lines.append(f"{metric}_count {_format_value(summary['count'])}")
    return "\n".join(lines) + "\n"


def _parse_number(text: str) -> float | int:
    try:
        return int(text)
    except ValueError:
        return float(text)


def _parse_labels(text: str | None) -> dict[str, str]:
    if not text:
        return {}
    labels: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        labels[key.strip()] = value.strip().strip('"')
    return labels


def parse_exposition(text: str) -> dict[str, Any]:
    """Read exposition text back into ``{counters, gauges, summaries}``.

    Summaries come back as
    ``{name: {"quantiles": {"0.5": v, ...}, "sum": s, "count": n}}``.
    Unknown-type samples (no ``# TYPE`` seen) land under ``untyped``.
    """
    types: dict[str, str] = {}
    parsed: dict[str, Any] = {
        "counters": {},
        "gauges": {},
        "summaries": {},
        "untyped": {},
    }
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = _parse_number(match.group("value"))
        family = name
        suffix = None
        for candidate in ("_sum", "_count"):
            base = name[: -len(candidate)]
            if name.endswith(candidate) and types.get(base) == "summary":
                family, suffix = base, candidate[1:]
                break
        kind = types.get(family)
        if kind == "counter":
            parsed["counters"][name] = value
        elif kind == "gauge":
            parsed["gauges"][name] = value
        elif kind == "summary":
            summary = parsed["summaries"].setdefault(
                family, {"quantiles": {}, "sum": 0.0, "count": 0}
            )
            if suffix is not None:
                summary[suffix] = value
            else:
                summary["quantiles"][labels.get("quantile", "")] = value
        else:
            parsed["untyped"][name] = value
    return parsed

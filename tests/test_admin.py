"""Unit tests for the data administrator subsystem and management tools."""

import pytest

from repro.admin import (
    CacheMonitor,
    DataAdministrator,
    HealthMonitor,
    ManagementConsole,
    SloMonitor,
    TraceMonitor,
)
from repro.algebra import TreePattern
from repro.core import NimbleEngine
from repro.errors import ReproError
from repro.materialize import MaterializationManager
from repro.sources import AvailabilityModel, FlakySource, XMLSource
from repro.sources.base import Access, Fragment
from repro.sources.relational import RelationalSource
from repro.xmldm.values import Record

from .conftest import build_crm_database


def customers_fragment():
    pattern = TreePattern(
        "customers",
        children=(
            TreePattern("id", text_var="id"),
            TreePattern("name", text_var="name"),
            TreePattern("city", text_var="city"),
        ),
    )
    return Fragment("crm", (Access("customers", pattern),))


class TestReplication:
    def test_job_copies_rows(self, registry, clock):
        admin = DataAdministrator(clock)
        source = registry.get("crm")
        admin.add_job("crm_copy", source, customers_fragment(),
                      "customers_replica", period_ms=10_000)
        written = admin.run_job("crm_copy")
        assert written == 4
        result = admin.store.execute(
            "SELECT COUNT(*) FROM customers_replica"
        )
        assert result.scalar() == 4

    def test_transform_hook(self, registry, clock):
        admin = DataAdministrator(clock)
        source = registry.get("crm")

        def uppercase_names(record: Record):
            if record["city"] == "Boise":
                return None  # offline filtering
            return record.with_field("name", str(record["name"]).upper())

        admin.add_job("clean_copy", source, customers_fragment(),
                      "clean_customers", period_ms=10_000,
                      transform=uppercase_names)
        assert admin.run_job("clean_copy") == 3
        names = {
            row[0]
            for row in admin.store.execute(
                "SELECT name FROM clean_customers"
            ).rows
        }
        assert names == {"ANN", "BOB", "CAM"}

    def test_run_due_respects_period(self, registry, clock):
        admin = DataAdministrator(clock)
        admin.add_job("j", registry.get("crm"), customers_fragment(),
                      "t", period_ms=5_000)
        assert admin.run_due() == {"j": 4}
        clock.advance(1_000)
        assert admin.run_due() == {}  # not due yet
        clock.advance(5_000)
        assert admin.run_due() == {"j": 4}

    def test_reload_replaces_rows(self, registry, clock):
        admin = DataAdministrator(clock)
        source = registry.get("crm")
        admin.add_job("j", source, customers_fragment(), "t", period_ms=1)
        admin.run_job("j")
        source.database.execute("DELETE FROM customers WHERE id = 4")
        admin.run_job("j")
        assert admin.store.execute("SELECT COUNT(*) FROM t").scalar() == 3

    def test_outage_counts_failure(self, clock, registry):
        flaky = FlakySource(
            XMLSource("arch", {"d": "<r><x><v>1</v></x></r>"}),
            AvailabilityModel(availability=0.99),
        )
        registry.register(flaky)
        flaky.force_offline()
        admin = DataAdministrator(clock)
        fragment = Fragment(
            "arch",
            (Access("d", TreePattern("x", children=(
                TreePattern("v", text_var="v"),))),),
        )
        admin.add_job("j", flaky, fragment, "t", period_ms=1)
        assert admin.run_job("j") == 0
        assert admin.jobs["j"].failures == 1

    def test_duplicate_job_rejected(self, registry, clock):
        admin = DataAdministrator(clock)
        admin.add_job("j", registry.get("crm"), customers_fragment(), "t", 1)
        with pytest.raises(ReproError):
            admin.add_job("j", registry.get("crm"), customers_fragment(), "t2", 1)

    def test_replica_queryable_as_source(self, registry, clock):
        """The replicated store becomes just another relational source."""
        admin = DataAdministrator(clock)
        admin.add_job("j", registry.get("crm"), customers_fragment(),
                      "customers", period_ms=1)
        admin.run_job("j")
        replica = RelationalSource("replica", admin.store, clock)
        assert replica.cardinality("customers") == 4


class TestHealthMonitor:
    def test_probe_records_state(self, registry, clock):
        monitor = HealthMonitor(registry, clock)
        outcome = monitor.probe_all()
        assert all(outcome.values())
        assert monitor.health["crm"].uptime_fraction == 1.0

    def test_watch_tracks_outages(self, registry, clock):
        flaky = FlakySource(
            XMLSource("blinky", {}),
            AvailabilityModel(availability=0.5, mean_outage_ms=2_000, seed=2),
        )
        registry.register(flaky)
        monitor = HealthMonitor(registry, clock)
        monitor.watch(duration_ms=60_000, interval_ms=500)
        health = monitor.health["blinky"]
        assert 0.2 < health.uptime_fraction < 0.8
        assert health.last_down_ms is not None
        assert monitor.unhealthy(threshold=0.9)


class TestManagementConsole:
    def test_system_report_structure(self, catalog, clock):
        manager = MaterializationManager(clock)
        engine = NimbleEngine(catalog, materializer=manager)
        engine.query(
            'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
        )
        engine.materialize_query_fragments(
            'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
        )
        console = ManagementConsole(engine)
        report = console.system_report()
        assert report["engine"]["queries_run"] == 1
        crm = next(s for s in report["sources"] if s["name"] == "crm")
        assert crm["relations"]["customers"] == 4
        assert crm["capabilities"]["joins"] is True
        names = {m["name"]: m for m in report["mediated_names"]}
        assert names["customers"]["kind"] == "mapping"
        assert report["materialization"]["views"] == 1

    def test_render_text(self, catalog, clock):
        engine = NimbleEngine(catalog)
        monitor = HealthMonitor(catalog.registry, clock)
        monitor.probe_all()
        admin = DataAdministrator(clock)
        admin.add_job("j", catalog.registry.get("crm"), customers_fragment(),
                      "t", period_ms=1_000)
        admin.run_job("j")
        console = ManagementConsole(engine, monitor=monitor,
                                    administrator=admin)
        text = console.render()
        assert "sources:" in text
        assert "[UP  ] crm" in text
        assert "replication jobs:" in text
        assert "uptime 100%" in text

    def test_report_shows_views(self, catalog, clock):
        from repro.mediator.schema import MediatedSchema

        schema = MediatedSchema("s")
        schema.define_view(
            "v", 'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <x>$n</x>'
        )
        catalog.add_schema(schema)
        console = ManagementConsole(NimbleEngine(catalog))
        report = console.system_report()
        view = next(m for m in report["mediated_names"] if m["name"] == "v")
        assert view["kind"] == "view"
        assert view["target"] == "customers"

    def _fully_monitored_console(self, catalog, clock):
        from repro.observability import (
            MetricsRegistry,
            QueryLog,
            SloPolicy,
            SloTracker,
            Tracer,
        )

        tracker = SloTracker(clock, policies=[
            SloPolicy("availability", "availability", 0.9),
        ])
        engine = NimbleEngine(
            catalog,
            metrics=MetricsRegistry(),
            query_log=QueryLog(slow_threshold_ms=1.0),
            slo=tracker,
            fragment_cache_bytes=100_000,
        )
        engine.use_tracer(Tracer(clock))
        health = HealthMonitor(catalog.registry, clock)
        health.probe_all()
        console = ManagementConsole(
            engine,
            monitor=health,
            cache_monitor=CacheMonitor(engine),
            trace_monitor=TraceMonitor(engine),
            slo_monitor=SloMonitor(engine),
        )
        return engine, console

    def test_report_carries_all_four_monitors(self, catalog, clock):
        engine, console = self._fully_monitored_console(catalog, clock)
        engine.query(
            'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
        )
        report = console.system_report()
        assert report["sources"][0]["uptime_fraction"] == 1.0  # health
        assert report["caching"]["plan_cache_entries"] == 1
        assert report["observability"]["tracing_enabled"] is True
        assert report["observability"]["query_log"]["total_logged"] == 1
        assert report["slo"]["slo_enabled"] is True
        statuses = {s["policy"]: s for s in report["slo"]["statuses"]}
        assert statuses["availability"]["met"] is True
        assert statuses["availability"]["window_queries"] == 1

    def test_render_shows_all_four_monitor_sections(self, catalog, clock):
        engine, console = self._fully_monitored_console(catalog, clock)
        engine.query(
            'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
        )
        text = console.render()
        assert "uptime 100%" in text                      # health monitor
        assert "caching: plan cache" in text              # cache monitor
        assert "observability: tracing on" in text        # trace monitor
        assert "query log: 1 retained" in text
        assert "slo: enabled" in text                     # slo monitor
        assert "[MET" in text and "availability" in text

    def test_render_flags_breaches_and_alerts(self, catalog, clock):
        from repro.observability import SloPolicy, SloTracker

        # a 1 ms p95 target the remote query cannot possibly meet
        tracker = SloTracker(clock, policies=[
            SloPolicy("tight_p95", "latency_p95", 1.0),
        ])
        engine = NimbleEngine(catalog, slo=tracker)
        monitor = SloMonitor(engine)
        console = ManagementConsole(engine, slo_monitor=monitor)
        engine.query(
            'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
        )
        transitions = monitor.evaluate()
        assert any(t.rule == "slo_breach" for t in transitions)
        text = console.render()
        assert "[BREACHED]" in text
        assert "[ALERT:critical] slo_breach/tight_p95" in text

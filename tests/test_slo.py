"""Fleet SLOs: error budgets, alerting, regression detection, exposition.

The load-bearing properties:

* SLO evaluation is strictly observational — results, counters, and
  virtual time are identical with the tracker on or off, and neither
  evaluation nor alerting ever advances the clock;
* error budgets burn deterministically on the degraded-operation
  ladder (breaker trips, deadline misses, stale serves, incomplete
  answers) and recover as bad observations age out of the window;
* regression baselines freeze after training, so a slow drift cannot
  re-baseline itself;
* fleet aggregation is order-independent — merged registry snapshots
  are byte-identical across instance interleavings — and the
  Prometheus text exposition round-trips through the parser exactly.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import EngineCluster, NimbleEngine
from repro.admin import SloMonitor
from repro.core.loadbalance import CompletedQuery
from repro.observability import (
    AlertManager,
    AlertRule,
    MetricsRegistry,
    QueryLog,
    RegressionDetector,
    SloObservation,
    SloPolicy,
    SloTracker,
    breaker_open_rule,
    default_rules,
    fleet_snapshot,
    merge_histograms,
    merge_registries,
    parse_exposition,
    percentile,
    prometheus_exposition,
    query_hash,
    sanitize_metric_name,
    slo_report,
    write_slo_report,
)
from repro.observability.metrics import Histogram
from repro.resilience import (
    BreakerConfig,
    FaultModel,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.simtime import SimClock
from repro.workloads import make_website_workload
from repro.xmldm.serializer import serialize

STOCK_QUERY = (
    'WHERE <s><sku>$s</sku><price>$p</price></s> IN "stock" '
    "CONSTRUCT <r sku=$s>$p</r>"
)
SHIPPING_QUERY = (
    'WHERE <t><sku>$s</sku><ship_days>$d</ship_days></t> '
    'IN "shipping_estimate" CONSTRUCT <r sku=$s>$d</r>'
)
PAGE_QUERY = (
    'WHERE <page sku=$s><name>$n</name><price>$p</price></page> '
    'IN "product_page", $p < 250 '
    "CONSTRUCT <row sku=$s><name>$n</name><price>$p</price></row> "
    "ORDER BY $p"
)


def observation(clock, query_hash="qh0", virtual_ms=10.0, complete=True,
                **kwargs):
    return SloObservation(
        at_ms=clock.now, query_hash=query_hash, virtual_ms=virtual_ms,
        complete=complete, **kwargs,
    )


# -- policies and observations -----------------------------------------------


class TestSloPolicy:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError):
            SloPolicy("p", "uptime", 0.9)

    def test_ratio_targets_must_be_fractions(self):
        with pytest.raises(ValueError):
            SloPolicy("p", "availability", 99.9)
        with pytest.raises(ValueError):
            SloPolicy("p", "completeness", 0.0)
        assert SloPolicy("p", "availability", 1.0).target == 1.0

    def test_latency_targets_are_positive_milliseconds(self):
        with pytest.raises(ValueError):
            SloPolicy("p", "latency_p95", 0.0)
        assert SloPolicy("p", "latency_p99", 250.0).target == 250.0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SloPolicy("p", "availability", 0.9, window_ms=0.0)

    def test_good_fraction_required(self):
        assert SloPolicy("a", "availability", 0.9).good_fraction_required == 0.9
        assert SloPolicy("l", "latency_p95", 100.0).good_fraction_required == 0.95
        assert SloPolicy("m", "latency_p99", 100.0).good_fraction_required == 0.99


class TestSloObservation:
    def test_degraded_operation_ladder_burns_availability(self):
        clock = SimClock()
        assert observation(clock).available is True
        assert observation(clock, complete=False).available is False
        assert observation(clock, breaker_trips=1).available is False
        assert observation(clock, deadline_misses=1).available is False
        assert observation(clock, stale_served=1).available is False

    def test_good_for_each_objective(self):
        clock = SimClock()
        stale = observation(clock, virtual_ms=50.0, stale_served=1)
        assert stale.good_for(SloPolicy("a", "availability", 0.9)) is False
        assert stale.good_for(SloPolicy("c", "completeness", 0.9)) is True
        assert stale.good_for(SloPolicy("l", "latency_p95", 100.0)) is True
        assert stale.good_for(SloPolicy("l2", "latency_p95", 10.0)) is False


# -- the tracker -------------------------------------------------------------


class TestSloTracker:
    def test_empty_window_is_vacuously_met(self):
        clock = SimClock()
        tracker = SloTracker(clock, policies=[
            SloPolicy("a", "availability", 0.9),
            SloPolicy("l", "latency_p95", 100.0),
        ])
        statuses = {s.policy.name: s for s in tracker.evaluate()}
        assert all(s.met for s in statuses.values())
        assert statuses["a"].compliance == 1.0
        assert statuses["a"].budget_remaining_fraction == 1.0

    def test_budget_burns_and_exhausts(self):
        clock = SimClock()
        policy = SloPolicy("a", "availability", 0.9, window_ms=10_000.0)
        tracker = SloTracker(clock, policies=[policy])

        class _C:
            complete = True

        for _ in range(18):
            tracker.observe_query("qh", 5.0, _C())
        status = tracker.evaluate_policy(policy)
        assert status.met and status.budget_remaining_fraction == 1.0
        # 20 queries at 90% allow 2 bad; the first burns half the budget
        tracker.observe_query("qh", 5.0, _C(),
                              counters={"breaker_trips": 1})
        status = tracker.evaluate_policy(policy)
        assert status.met  # 19/20 >= 0.9... wait: 18 good of 19 is 0.947
        assert 0.0 < status.budget_remaining_fraction < 1.0
        tracker.observe_query("qh", 5.0, _C(),
                              counters={"deadline_misses": 1})
        tracker.observe_query("qh", 5.0, _C(),
                              counters={"stale_served": 1})
        status = tracker.evaluate_policy(policy)
        assert status.met is False
        assert status.budget_remaining_fraction == 0.0
        assert status.budget_burned == 3

    def test_bad_observations_age_out_of_the_window(self):
        clock = SimClock()
        policy = SloPolicy("a", "availability", 0.9, window_ms=1_000.0)
        tracker = SloTracker(clock, policies=[policy])

        class _Bad:
            complete = False

        class _Good:
            complete = True

        tracker.observe_query("qh", 5.0, _Bad())
        assert tracker.evaluate_policy(policy).met is False
        clock.advance(2_000.0)
        for _ in range(3):
            tracker.observe_query("qh", 5.0, _Good())
        status = tracker.evaluate_policy(policy)
        assert status.met is True and status.window_queries == 3

    def test_latency_policy_uses_nearest_rank_percentile(self):
        clock = SimClock()
        policy = SloPolicy("l", "latency_p95", 100.0)
        tracker = SloTracker(clock, policies=[policy])

        class _C:
            complete = True

        for ms in [10.0] * 19 + [500.0]:
            tracker.observe_query("qh", ms, _C())
        status = tracker.evaluate_policy(policy)
        # nearest-rank p95 of 20 samples is the 19th: still 10 ms
        assert status.observed_ms == 10.0 and status.met is True
        tracker.observe_query("qh", 500.0, _C())
        status = tracker.evaluate_policy(policy)
        assert status.observed_ms == 500.0 and status.met is False

    def test_per_hash_policy_scopes_the_window(self):
        clock = SimClock()
        policy = SloPolicy("hot", "latency_p95", 50.0, query_hash="hot_hash")
        tracker = SloTracker(clock, policies=[policy])

        class _C:
            complete = True

        tracker.observe_query("hot_hash", 10.0, _C())
        tracker.observe_query("cold_hash", 900.0, _C())
        status = tracker.evaluate_policy(policy)
        assert status.window_queries == 1 and status.met is True

    def test_duplicate_policy_name_rejected(self):
        tracker = SloTracker(SimClock(),
                             policies=[SloPolicy("a", "availability", 0.9)])
        with pytest.raises(ValueError):
            tracker.add_policy(SloPolicy("a", "completeness", 0.9))

    def test_evaluate_is_sorted_and_never_advances_time(self):
        clock = SimClock()
        tracker = SloTracker(clock, policies=[
            SloPolicy("zeta", "availability", 0.9),
            SloPolicy("alpha", "completeness", 0.9),
        ])

        class _C:
            complete = True

        tracker.observe_query("qh", 5.0, _C())
        before = clock.now
        names = [s.policy.name for s in tracker.evaluate()]
        assert names == ["alpha", "zeta"]
        assert clock.now == before


# -- regression detection ----------------------------------------------------


class TestRegressionDetector:
    def _feed(self, detector, clock, ms_values, query_hash="qh",
              advance=100.0, **kwargs):
        for ms in ms_values:
            detector.observe(observation(clock, query_hash=query_hash,
                                         virtual_ms=ms, **kwargs))
            clock.advance(advance)

    def test_baseline_trains_then_freezes(self):
        clock = SimClock()
        detector = RegressionDetector(clock, min_baseline=4, min_current=2)
        self._feed(detector, clock, [10.0, 12.0, 11.0, 10.0])
        baseline = detector.baseline("qh")
        assert baseline.observations == 4
        frozen_p95 = baseline.p95_ms
        # later (slower) observations land in the current window, not
        # the baseline — the healthy fingerprint is frozen
        self._feed(detector, clock, [80.0, 90.0])
        assert detector.baseline("qh").p95_ms == frozen_p95
        assert detector.baseline("qh").observations == 4

    def test_flags_only_the_regressed_hash(self):
        clock = SimClock()
        detector = RegressionDetector(clock, factor=2.0, min_baseline=3,
                                      min_current=2)
        self._feed(detector, clock, [10.0, 10.0, 10.0], query_hash="slowed")
        self._feed(detector, clock, [20.0, 20.0, 20.0], query_hash="steady")
        self._feed(detector, clock, [50.0, 60.0], query_hash="slowed")
        self._feed(detector, clock, [21.0, 20.0], query_hash="steady")
        flagged = detector.regressions()
        assert [r.query_hash for r in flagged] == ["slowed"]
        regression = flagged[0]
        assert regression.current_ms == 60.0
        assert regression.factor == pytest.approx(6.0)
        assert regression.suspected_causes == ("source_latency",)

    def test_below_min_current_stays_quiet(self):
        clock = SimClock()
        detector = RegressionDetector(clock, min_baseline=3, min_current=3)
        self._feed(detector, clock, [10.0, 10.0, 10.0])
        self._feed(detector, clock, [99.0, 99.0])  # only 2 current
        assert detector.regressions() == []

    def test_plan_epoch_change_is_suspected(self):
        clock = SimClock()
        detector = RegressionDetector(clock, min_baseline=2, min_current=2)
        self._feed(detector, clock, [10.0, 10.0], plan_epoch=(1, 0, 0, 0))
        self._feed(detector, clock, [99.0, 99.0], plan_epoch=(2, 0, 0, 0))
        [regression] = detector.regressions()
        assert "plan_cache_epoch_changed" in regression.suspected_causes
        assert regression.context["baseline_plan_epoch"] == "(1, 0, 0, 0)"

    def test_cache_hit_rate_drop_is_suspected(self):
        clock = SimClock()
        detector = RegressionDetector(clock, min_baseline=2, min_current=2)
        self._feed(detector, clock, [10.0, 10.0], cache_hits=9, cache_misses=1)
        self._feed(detector, clock, [99.0, 99.0], cache_hits=0, cache_misses=10)
        [regression] = detector.regressions()
        assert "cache_hit_rate_drop" in regression.suspected_causes
        assert regression.context["cache_hit_rate_delta"] < 0

    def test_reset_baseline_retrains(self):
        clock = SimClock()
        detector = RegressionDetector(clock, min_baseline=2, min_current=2)
        self._feed(detector, clock, [10.0, 10.0])
        self._feed(detector, clock, [99.0, 99.0])
        assert detector.regressions()
        detector.reset_baseline("qh")
        assert detector.baseline("qh") is None
        self._feed(detector, clock, [99.0, 99.0])  # retrains at the new normal
        assert detector.regressions() == []

    def test_old_current_observations_age_out(self):
        clock = SimClock()
        detector = RegressionDetector(clock, window_ms=1_000.0,
                                      min_baseline=2, min_current=2)
        self._feed(detector, clock, [10.0, 10.0])
        self._feed(detector, clock, [99.0, 99.0])
        assert detector.regressions()
        clock.advance(5_000.0)
        assert detector.regressions() == []  # the spike aged out


# -- alerting ----------------------------------------------------------------


def _threshold_rule(name="over", severity="warning", threshold=10):
    def condition(context):
        return {
            key: {"value": value}
            for key, value in context.get("values", {}).items()
            if value > threshold
        }

    return AlertRule(name, condition, severity)


class TestAlertManager:
    def test_fire_refresh_resolve_lifecycle(self):
        clock = SimClock()
        manager = AlertManager(clock)
        manager.add_rule(_threshold_rule())
        fired = manager.evaluate({"values": {"a": 20}})
        assert [(a.key, a.state) for a in fired] == [("a", "firing")]
        assert fired[0].fired_at_ms == 0.0
        clock.advance(100.0)
        # unchanged context refreshes in place: no new transitions
        assert manager.evaluate({"values": {"a": 25}}) == []
        assert manager.active()[0].context == {"value": 25}
        clock.advance(100.0)
        resolved = manager.evaluate({"values": {"a": 5}})
        assert [(a.key, a.state) for a in resolved] == [("a", "resolved")]
        assert resolved[0].resolved_at_ms == 200.0
        assert manager.active() == []
        assert manager.total_fired == 1 and manager.total_resolved == 1

    def test_keys_fire_in_sorted_order(self):
        manager = AlertManager(SimClock())
        manager.add_rule(_threshold_rule())
        fired = manager.evaluate({"values": {"z": 20, "a": 20, "m": 20}})
        assert [a.key for a in fired] == ["a", "m", "z"]

    def test_history_ring_is_bounded(self):
        manager = AlertManager(SimClock(), capacity=2)
        manager.add_rule(_threshold_rule())
        for key in ("a", "b", "c"):
            manager.evaluate({"values": {key: 20}})
        assert len(manager.history) == 2
        assert manager.total_fired == 3

    def test_duplicate_rule_and_bad_severity_rejected(self):
        manager = AlertManager(SimClock())
        manager.add_rule(_threshold_rule())
        with pytest.raises(ValueError):
            manager.add_rule(_threshold_rule())
        with pytest.raises(ValueError):
            AlertRule("r", lambda context: {}, severity="panic")

    def test_active_filters_by_severity(self):
        manager = AlertManager(SimClock())
        manager.add_rule(_threshold_rule("warn", "warning"))
        manager.add_rule(_threshold_rule("crit", "critical"))
        manager.evaluate({"values": {"a": 20}})
        assert len(manager.active()) == 2
        assert [a.rule for a in manager.active("critical")] == ["crit"]

    def test_breaker_open_rule_keys_on_sources(self):
        manager = AlertManager(SimClock())
        manager.add_rule(breaker_open_rule())
        fired = manager.evaluate(
            {"breakers": {"erp": "open", "crm": "closed", "log": "half-open"}}
        )
        assert sorted(a.key for a in fired) == ["erp", "log"]

    def test_default_rules_cover_the_five_signals(self):
        names = {rule.name for rule in default_rules()}
        assert names == {"slo_breach", "error_budget_low",
                         "latency_regression", "breaker_open",
                         "overload_shedding"}


# -- aggregation -------------------------------------------------------------


def _registry(counter_values=(), histogram_samples=()):
    registry = MetricsRegistry()
    for name, value in counter_values:
        registry.counter(name).inc(value)
    for name, samples in histogram_samples:
        for sample in samples:
            registry.histogram(name).observe(sample)
    return registry


class TestAggregation:
    def test_counters_and_gauges_sum(self):
        a = _registry([("queries_total", 3), ("retries", 1)])
        a.gauge("busy").set(2.0)
        b = _registry([("queries_total", 5)])
        b.gauge("busy").set(3.0)
        snap = merge_registries([a, b]).snapshot()
        assert snap["counters"] == {"queries_total": 8, "retries": 1}
        assert snap["gauges"] == {"busy": 5.0}

    def test_histograms_merge_the_sample_multiset(self):
        a = _registry(histogram_samples=[("lat", [1.0, 9.0])])
        b = _registry(histogram_samples=[("lat", [5.0])])
        merged = merge_registries([a, b]).snapshot()["histograms"]["lat"]
        assert merged["count"] == 3
        assert merged["sum"] == 15.0
        assert merged["p50"] == 5.0  # the multiset median, not an average

    def test_merge_is_order_independent(self):
        def build():
            return [
                _registry([("c", i + 1)],
                          histogram_samples=[("h", [float(i), 10.0 - i])])
                for i in range(4)
            ]

        registries = build()
        forward = merge_registries(registries).snapshot()
        backward = merge_registries(list(reversed(build()))).snapshot()
        assert json.dumps(forward, sort_keys=True) == json.dumps(
            backward, sort_keys=True
        )

    def test_merge_widens_the_sample_window(self):
        histograms = []
        for start in (0, 4):
            h = Histogram(max_samples=4)
            for i in range(4):
                h.observe(float(start + i))
            histograms.append(h)
        merged = merge_histograms(histograms)
        assert len(merged.samples) == 8  # nothing evicted by the merge
        assert merged.count == 8

    def test_fleet_snapshot_counts_instances(self):
        snap = fleet_snapshot([_registry([("c", 1)]), _registry([("c", 2)])])
        assert snap["instances"] == 2
        assert snap["merged"]["counters"]["c"] == 3

    def test_slo_report_and_artifact(self, tmp_path):
        clock = SimClock()
        tracker = SloTracker(clock, policies=[
            SloPolicy("a", "availability", 0.9),
        ], detector=RegressionDetector(clock))
        alerts = AlertManager(clock)
        alerts.add_rule(_threshold_rule())
        alerts.evaluate({"values": {"x": 20}})
        report = slo_report(tracker, alerts,
                            registries=[_registry([("c", 1)])])
        assert report["slo"]["statuses"][0]["policy"] == "a"
        assert report["regressions"]["flagged"] == []
        assert report["alerts"]["summary"]["firing"] == 1
        assert report["metrics"]["instances"] == 1
        path = write_slo_report(tmp_path / "slo.json", tracker, alerts)
        loaded = json.loads(path.read_text())
        assert loaded["slo"]["summary"]["policies"] == 1
        assert loaded["clock_ms"] == 0.0


# -- exposition --------------------------------------------------------------


class TestExposition:
    def test_round_trips_through_the_parser(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc(7)
        registry.gauge("cache.fill_fraction").set(0.375)
        histogram = registry.histogram("source.erp.fetch_virtual_ms")
        for sample in (41.5, 43.25, 40.0, 99.125):
            histogram.observe(sample)
        snapshot = registry.snapshot()
        text = prometheus_exposition(snapshot)
        parsed = parse_exposition(text)
        assert parsed["counters"]["nimble_queries_total"] == 7
        assert parsed["gauges"]["nimble_cache_fill_fraction"] == 0.375
        summary = parsed["summaries"]["nimble_source_erp_fetch_virtual_ms"]
        original = snapshot["histograms"]["source.erp.fetch_virtual_ms"]
        assert summary["quantiles"]["0.5"] == original["p50"]
        assert summary["quantiles"]["0.9"] == original["p90"]
        assert summary["quantiles"]["0.99"] == original["p99"]
        assert summary["sum"] == original["sum"]
        assert summary["count"] == original["count"]

    def test_exposition_is_deterministic_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        text = prometheus_exposition(registry.snapshot())
        assert text == prometheus_exposition(registry.snapshot())
        lines = text.splitlines()
        assert lines[0] == "# TYPE nimble_a counter"
        assert lines[2] == "# TYPE nimble_b counter"

    def test_name_sanitization(self):
        assert sanitize_metric_name("source.erp-1.ms") == "source_erp_1_ms"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("ok", prefix="nimble") == "nimble_ok"

    def test_unknown_types_and_bad_lines(self):
        parsed = parse_exposition("orphan_sample 4\n")
        assert parsed["untyped"] == {"orphan_sample": 4}
        with pytest.raises(ValueError):
            parse_exposition("{not a sample}\n")

    def test_merged_fleet_snapshot_round_trips(self):
        a = _registry([("queries_total", 2)],
                      histogram_samples=[("lat", [1.5, 2.5])])
        b = _registry([("queries_total", 3)],
                      histogram_samples=[("lat", [3.5])])
        text = prometheus_exposition(merge_registries([a, b]).snapshot())
        parsed = parse_exposition(text)
        assert parsed["counters"]["nimble_queries_total"] == 5
        assert parsed["summaries"]["nimble_lat"]["count"] == 3


# -- the engine feed ---------------------------------------------------------


class TestEngineSloFeed:
    def test_engine_feeds_the_tracker_per_top_level_query(self):
        workload = make_website_workload(8, seed=23, extended=True)
        clock = workload.registry.clock
        tracker = SloTracker(clock, policies=[
            SloPolicy("a", "availability", 0.9),
        ])
        engine = NimbleEngine(workload.catalog, slo=tracker)
        result = engine.query(PAGE_QUERY)  # runs the view sub-query too
        assert tracker.total_observed == 1  # sub-queries absorbed
        [obs] = tracker.window(60_000.0)
        assert obs.query_hash == query_hash(PAGE_QUERY)
        assert obs.virtual_ms == result.stats.elapsed_virtual_ms
        assert obs.complete is True
        assert obs.plan_epoch == engine.catalog.version

    def test_feed_carries_the_degradation_counters(self):
        workload = make_website_workload(8, seed=23, extended=True)
        clock = workload.registry.clock
        tracker = SloTracker(clock)
        engine = NimbleEngine(
            workload.catalog,
            slo=tracker,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=1),
                breaker=BreakerConfig(window=4, failure_threshold=0.5,
                                      min_calls=1, cooldown_ms=60_000.0),
            ),
        )
        workload.registry.get("erp").faults = FaultModel(
            failure_rate=1.0, seed=5
        )
        for _ in range(3):
            clock.advance(100.0)
            engine.query(STOCK_QUERY)
        trips = sum(o.breaker_trips for o in tracker.window(60_000.0))
        incomplete = sum(
            1 for o in tracker.window(60_000.0) if not o.complete
        )
        assert trips > 0 and incomplete == 3
        assert all(not o.available for o in tracker.window(60_000.0))


# -- cluster percentiles and fleet metrics -----------------------------------


class TestClusterPercentiles:
    def _cluster_with_latencies(self, latencies):
        workload = make_website_workload(6, seed=44)
        cluster = EngineCluster(NimbleEngine(workload.catalog), instances=2)
        for index, latency in enumerate(latencies):
            cluster.completed.append(
                CompletedQuery(f"i{index % 2}", 0.0, 0.0, latency, None)
            )
        return cluster

    def test_percentile_latency_pins_to_canonical_nearest_rank(self):
        # the regression that motivated the delegation: with two values
        # the old truncating index returned the max for p50
        cluster = self._cluster_with_latencies([10.0, 20.0])
        assert cluster.percentile_latency(0.50) == 10.0
        assert cluster.percentile_latency(0.50) == percentile(
            [10.0, 20.0], 0.50
        )
        for fraction in (0.25, 0.5, 0.75, 0.95, 0.99, 1.0):
            values = [5.0, 1.0, 9.0, 3.0, 7.0]
            cluster = self._cluster_with_latencies(values)
            assert cluster.percentile_latency(fraction) == percentile(
                values, fraction
            )

    def test_latency_summary_matches_canonical_definition(self):
        values = [12.0, 4.0, 8.0, 16.0]
        cluster = self._cluster_with_latencies(values)
        summary = cluster.latency_summary()
        assert summary["count"] == 4
        assert summary["p50_ms"] == percentile(values, 0.50)
        assert summary["p95_ms"] == percentile(values, 0.95)
        assert summary["max_ms"] == 16.0

    def test_instances_record_metrics_and_merge_deterministically(self):
        def run():
            workload = make_website_workload(10, seed=44)
            cluster = EngineCluster(NimbleEngine(workload.catalog),
                                    instances=3, strategy="round_robin")
            for arrival in range(6):
                cluster.submit(STOCK_QUERY, arrival * 10.0)
            return cluster

        cluster = run()
        served = sum(
            i.metrics.counter_values()["queries_total"]
            for i in cluster.instances
        )
        assert served == 6
        merged = cluster.merged_metrics().snapshot()
        assert merged["counters"]["queries_total"] == 6
        assert merged["histograms"]["query.latency_ms"]["count"] == 6
        # two identical runs produce byte-identical fleet snapshots
        assert json.dumps(cluster.fleet_snapshot(), sort_keys=True) == \
            json.dumps(run().fleet_snapshot(), sort_keys=True)


# -- the monitor -------------------------------------------------------------


class TestSloMonitor:
    def test_monitor_without_tracker_is_inert(self):
        workload = make_website_workload(6, seed=23)
        monitor = SloMonitor(NimbleEngine(workload.catalog))
        assert monitor.tracker is None and monitor.alerts is None
        assert monitor.evaluate() == []
        snap = monitor.snapshot()
        assert snap["slo_enabled"] is False and snap["statuses"] == []

    def test_evaluation_context_includes_breaker_states(self):
        workload = make_website_workload(8, seed=23, extended=True)
        clock = workload.registry.clock
        tracker = SloTracker(clock, policies=[
            SloPolicy("a", "availability", 0.9, window_ms=5_000.0),
        ])
        engine = NimbleEngine(
            workload.catalog,
            slo=tracker,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=1),
                breaker=BreakerConfig(window=4, failure_threshold=0.5,
                                      min_calls=1, cooldown_ms=60_000.0),
            ),
        )
        monitor = SloMonitor(engine)
        workload.registry.get("erp").faults = FaultModel(
            failure_rate=1.0, seed=5
        )
        for _ in range(3):
            clock.advance(100.0)
            engine.query(STOCK_QUERY)
        context = monitor.evaluation_context()
        assert context["breakers"]["erp"] == "open"
        transitions = monitor.evaluate()
        rules = {t.rule for t in transitions}
        assert "breaker_open" in rules and "slo_breach" in rules

    def test_write_report_artifact(self, tmp_path):
        workload = make_website_workload(8, seed=23, extended=True)
        clock = workload.registry.clock
        tracker = SloTracker(clock, policies=[
            SloPolicy("a", "availability", 0.9),
        ])
        engine = NimbleEngine(workload.catalog, slo=tracker,
                              metrics=MetricsRegistry())
        monitor = SloMonitor(engine)
        engine.query(STOCK_QUERY)
        monitor.evaluate()
        path = monitor.write_report(tmp_path / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded["slo"]["statuses"][0]["met"] is True
        assert loaded["alerts"]["summary"]["firing"] == 0
        assert loaded["metrics"]["merged"]["counters"]["queries_total"] == 1


# -- the zero-perturbation property ------------------------------------------


def signature(result):
    return [serialize(element) for element in result.elements]


class TestSloIsObservational:
    @given(fan_out=st.integers(1, 6), n_products=st.integers(4, 16))
    @settings(max_examples=15, deadline=None)
    def test_slo_tracking_never_changes_results_or_counters(
        self, fan_out, n_products
    ):
        def run(enabled):
            workload = make_website_workload(n_products, seed=23,
                                             extended=True)
            clock = workload.registry.clock
            slo = None
            if enabled:
                slo = SloTracker(clock, policies=[
                    SloPolicy("a", "availability", 0.99),
                    SloPolicy("p", "latency_p95", 500.0),
                ], detector=RegressionDetector(clock, min_baseline=2))
            engine = NimbleEngine(workload.catalog,
                                  max_parallel_fetches=fan_out, slo=slo)
            results = []
            for text in (STOCK_QUERY, PAGE_QUERY, STOCK_QUERY):
                results.append(engine.query(text))
                if slo is not None:
                    before = clock.now
                    slo.evaluate()
                    slo.detector.regressions()
                    assert clock.now == before
            return results

        for off, on in zip(run(enabled=False), run(enabled=True)):
            assert signature(off) == signature(on)
            assert off.completeness.complete == on.completeness.complete
            assert off.stats.counters() == on.stats.counters()
            assert off.stats.elapsed_virtual_ms == on.stats.elapsed_virtual_ms

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_zero_perturbation_under_faults(self, seed):
        def run(enabled):
            workload = make_website_workload(8, seed=23, extended=True)
            clock = workload.registry.clock
            workload.registry.get("erp").faults = FaultModel(
                failure_rate=0.4, seed=seed
            )
            slo = SloTracker(clock) if enabled else None
            engine = NimbleEngine(
                workload.catalog,
                slo=slo,
                resilience=ResiliencePolicy(
                    retry=RetryPolicy(max_attempts=3, base_backoff_ms=20.0,
                                      jitter=0.0),
                    breaker=None,
                ),
            )
            return [engine.query(STOCK_QUERY) for _ in range(4)]

        for off, on in zip(run(enabled=False), run(enabled=True)):
            assert signature(off) == signature(on)
            assert off.stats.counters() == on.stats.counters()
            assert off.stats.elapsed_virtual_ms == on.stats.elapsed_virtual_ms

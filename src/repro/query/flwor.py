"""A FLWOR (XQuery-style) front end over the same physical algebra.

Section 2.1: "XML-QL was the only existing expressive query language for
XML when we started designing our system.  Ultimately, we plan to adopt
the standard query language recommended by the W3C Query Working Group."
This module implements that plan: a FOR / LET / WHERE / ORDER BY /
RETURN dialect compiled onto the identical operator set, demonstrating
the payoff of the paper's physical-algebra design — "we expect the query
language we support to be a moving target for a while", so the algebra,
not the language, is the stable interface.

Supported shape::

    FOR $b IN "books", $s IN "stock"
    LET $title := $b/title
    WHERE $b/@year > 1995 AND $s/sku = $b/@sku
    ORDER BY $s/price DESCENDING
    RETURN <hit sku="{$b/@sku}">{$title}<price>{$s/price}</price></hit>

FOR iterates the items of a source (a Document's top-level elements, or
records); path expressions navigate elements (``/tag``, ``/@attr``,
deeper paths via the path language) and records (field access); RETURN
builds one element per binding with ``{expr}`` splices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.algebra import (
    CallbackScan,
    Compute,
    NestedLoopJoin,
    Operator,
    Plan,
    Select,
    Sort,
)
from repro.algebra.tuples import BindingTuple
from repro.errors import QuerySyntaxError
from repro.query.exprs import flex_compare
from repro.query.translate import SourceResolver
from repro.xmldm.document import Document
from repro.xmldm.nodes import Element, Text
from repro.xmldm.path import Path
from repro.xmldm.schema import atomic_to_text
from repro.xmldm.values import NULL, Collection, Null, Record

# -- path evaluation over the hybrid model -----------------------------------


def eval_steps(value: Any, steps: tuple[str, ...]) -> list[Any]:
    """Evaluate path steps against an element, record or atomic value."""
    current = [value]
    for step in steps:
        next_values: list[Any] = []
        for item in current:
            if isinstance(item, Element):
                next_values.extend(Path.parse(step).evaluate(item))
            elif isinstance(item, Record):
                name = step.lstrip("@")
                if name in item:
                    bound = item[name]
                    if isinstance(bound, Collection):
                        next_values.extend(bound)
                    else:
                        next_values.append(bound)
            # atomic values have no children: path dead-ends
        current = next_values
    return current


def atomize_first(values: list[Any]) -> Any:
    """First path result, atomized (node -> text), or NULL."""
    if not values:
        return NULL
    first = values[0]
    if isinstance(first, Element):
        return first.text_content()
    return first


# -- expression AST ------------------------------------------------------------


class FExpr:
    """Base class for FLWOR expressions."""


@dataclass(frozen=True)
class FPath(FExpr):
    var: str
    steps: tuple[str, ...]


@dataclass(frozen=True)
class FLiteral(FExpr):
    value: Any


@dataclass(frozen=True)
class FBinOp(FExpr):
    op: str
    left: FExpr
    right: FExpr


@dataclass(frozen=True)
class FNot(FExpr):
    operand: FExpr


def compile_fexpr(expr: FExpr) -> Callable[[BindingTuple], Any]:
    if isinstance(expr, FLiteral):
        return lambda row: expr.value
    if isinstance(expr, FPath):
        var, steps = expr.var, expr.steps

        def path_value(row: BindingTuple) -> Any:
            base = row.get(var, NULL)
            if isinstance(base, Null):
                return NULL
            if not steps:
                return base
            return atomize_first(eval_steps(base, steps))

        return path_value
    if isinstance(expr, FNot):
        inner = compile_fexpr(expr.operand)

        def negate(row: BindingTuple) -> Any:
            value = inner(row)
            return not bool(value) if not isinstance(value, Null) else False

        return negate
    if isinstance(expr, FBinOp):
        left = compile_fexpr(expr.left)
        right = compile_fexpr(expr.right)
        op = expr.op
        if op in ("AND", "OR"):
            if op == "AND":
                return lambda row: bool(left(row)) and bool(right(row))
            return lambda row: bool(left(row)) or bool(right(row))

        def compare(row: BindingTuple) -> bool:
            result = flex_compare(left(row), right(row))
            if result is None:
                return False
            return {
                "=": result == 0,
                "!=": result != 0,
                "<": result < 0,
                "<=": result <= 0,
                ">": result > 0,
                ">=": result >= 0,
            }[op]

        return compare
    raise QuerySyntaxError(f"cannot compile {expr!r}")


# -- RETURN templates -------------------------------------------------------------


@dataclass(frozen=True)
class RText:
    text: str


@dataclass(frozen=True)
class RSplice:
    expr: FExpr


@dataclass(frozen=True)
class RElement:
    tag: str
    attributes: tuple[tuple[str, "str | FExpr"], ...]
    children: tuple["RText | RSplice | RElement", ...]


def build_return(template: RElement, row: BindingTuple) -> Element:
    element = Element(template.tag)
    for name, value in template.attributes:
        if isinstance(value, str):
            element.attributes[name] = value
        else:
            result = compile_fexpr(value)(row)
            element.attributes[name] = (
                "" if isinstance(result, Null) else atomic_to_text(result)
                if not isinstance(result, Element)
                else result.text_content()
            )
    for child in template.children:
        if isinstance(child, RText):
            if child.text:
                element.append(Text(child.text))
        elif isinstance(child, RSplice):
            _splice(element, child.expr, row)
        else:
            element.append(build_return(child, row))
    return element


def _splice(element: Element, expr: FExpr, row: BindingTuple) -> None:
    if isinstance(expr, FPath):
        base = row.get(expr.var, NULL)
        if isinstance(base, Null):
            return
        values = eval_steps(base, expr.steps) if expr.steps else [base]
        for value in values:
            _append(element, value)
        return
    _append(element, compile_fexpr(expr)(row))


def _append(element: Element, value: Any) -> None:
    if isinstance(value, Null):
        return
    if isinstance(value, Element):
        element.append(value.copy())
    elif isinstance(value, Record):
        for name, field_value in value.items():
            wrapper = Element(name)
            _append(wrapper, field_value)
            element.append(wrapper)
    elif isinstance(value, Collection):
        for item in value:
            _append(element, item)
    else:
        text = atomic_to_text(value)
        if text:
            element.append(Text(text))


# -- query structure ---------------------------------------------------------------


@dataclass(frozen=True)
class ForBinding:
    var: str
    source: str


@dataclass(frozen=True)
class LetBinding:
    var: str
    expr: FExpr


@dataclass(frozen=True)
class OrderKey:
    expr: FExpr
    descending: bool = False


@dataclass(frozen=True)
class FlworQuery:
    fors: tuple[ForBinding, ...]
    lets: tuple[LetBinding, ...]
    where: FExpr | None
    order: tuple[OrderKey, ...]
    construct: RElement


# -- compilation --------------------------------------------------------------------


def _items_of(source_items: Iterable[Any]) -> Iterable[Any]:
    """FOR semantics: documents contribute their top-level elements."""
    for item in source_items:
        if isinstance(item, Document):
            yield from item.root.child_elements()
        elif isinstance(item, Collection):
            yield from item
        else:
            yield item


def translate_flwor(
    query: "FlworQuery | str",
    resolver: SourceResolver,
    output_var: str = "result",
) -> Plan:
    """Compile a FLWOR query onto the physical algebra."""
    if isinstance(query, str):
        query = parse_flwor(query)
    root: Operator | None = None
    for binding in query.fors:
        scan = CallbackScan(
            binding.var,
            lambda name=binding.source: _items_of(resolver(name)),
            label=binding.source,
        )
        root = scan if root is None else NestedLoopJoin(root, scan)
    assert root is not None
    for let in query.lets:
        root = Compute(root, let.var, compile_fexpr(let.expr),
                       label=f"let ${let.var}")
    if query.where is not None:
        predicate = compile_fexpr(query.where)
        root = Select(root, lambda row: bool(predicate(row)), label="where")
    if query.order:
        keys = [
            (compile_fexpr(key.expr), key.descending) for key in query.order
        ]
        root = Sort(root, keys, label="order by")
    template = query.construct
    root = Compute(root, output_var, lambda row: build_return(template, row),
                   label="return")
    return Plan(root, output_var)


# -- parser ------------------------------------------------------------------------


def parse_flwor(text: str) -> FlworQuery:
    return _FlworParser(text).parse()


class _FlworParser:
    """A compact scanner-based parser for the FLWOR dialect."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # scanning helpers ------------------------------------------------------

    def error(self, message: str) -> QuerySyntaxError:
        line = self.text.count("\n", 0, self.pos) + 1
        column = self.pos - self.text.rfind("\n", 0, self.pos)
        return QuerySyntaxError(message, line, column)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def peek_word(self) -> str:
        self.skip_ws()
        end = self.pos
        while end < len(self.text) and (self.text[end].isalpha() or self.text[end] == "_"):
            end += 1
        return self.text[self.pos : end].upper()

    def accept_word(self, word: str) -> bool:
        if self.peek_word() == word:
            self.skip_ws()
            self.pos += len(word)
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.accept_word(word):
            raise self.error(f"expected {word}")

    def accept(self, literal: str) -> bool:
        self.skip_ws()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.accept(literal):
            raise self.error(f"expected {literal!r}")

    def read_name(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-."
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start : self.pos]

    def read_var(self) -> str:
        self.expect("$")
        return self.read_name()

    def read_string(self) -> str:
        self.skip_ws()
        quote = self.text[self.pos : self.pos + 1]
        if quote not in ("'", '"'):
            raise self.error("expected a string literal")
        end = self.text.find(quote, self.pos + 1)
        if end < 0:
            raise self.error("unterminated string literal")
        value = self.text[self.pos + 1 : end]
        self.pos = end + 1
        return value

    # grammar ------------------------------------------------------------------

    def parse(self) -> FlworQuery:
        fors: list[ForBinding] = []
        self.expect_word("FOR")
        fors.append(self._parse_for_binding())
        while self.accept(","):
            fors.append(self._parse_for_binding())
        while self.peek_word() == "FOR":
            self.expect_word("FOR")
            fors.append(self._parse_for_binding())
        lets: list[LetBinding] = []
        while self.peek_word() == "LET":
            self.expect_word("LET")
            var = self.read_var()
            self.expect(":=")
            lets.append(LetBinding(var, self._parse_or()))
        where = None
        if self.accept_word("WHERE"):
            where = self._parse_or()
        order: list[OrderKey] = []
        if self.accept_word("ORDER"):
            self.expect_word("BY")
            order.append(self._parse_order_key())
            while self.accept(","):
                order.append(self._parse_order_key())
        self.expect_word("RETURN")
        construct = self._parse_element()
        self.skip_ws()
        if self.pos < len(self.text):
            raise self.error("unexpected trailing input")
        bound = {binding.var for binding in fors} | {let.var for let in lets}
        for expr_holder in ([where] if where else []) + [k.expr for k in order]:
            for var in _expr_vars(expr_holder):
                if var not in bound:
                    raise self.error(f"unbound variable ${var}")
        for var in _template_vars(construct):
            if var not in bound:
                raise self.error(f"unbound variable ${var}")
        return FlworQuery(tuple(fors), tuple(lets), where, tuple(order), construct)

    def _parse_for_binding(self) -> ForBinding:
        var = self.read_var()
        self.expect_word("IN")
        self.skip_ws()
        if self.text[self.pos : self.pos + 1] in ("'", '"'):
            source = self.read_string()
        else:
            source = self.read_name()
        return ForBinding(var, source)

    def _parse_order_key(self) -> OrderKey:
        expr = self._parse_or()
        if self.accept_word("DESCENDING"):
            return OrderKey(expr, True)
        self.accept_word("ASCENDING")
        return OrderKey(expr, False)

    # expressions -----------------------------------------------------------------

    def _parse_or(self) -> FExpr:
        left = self._parse_and()
        while self.accept_word("OR"):
            left = FBinOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> FExpr:
        left = self._parse_not()
        while self.accept_word("AND"):
            left = FBinOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> FExpr:
        if self.accept_word("NOT"):
            return FNot(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> FExpr:
        left = self._parse_primary()
        self.skip_ws()
        for op in ("!=", "<=", ">=", "=", "<", ">"):
            if self.text.startswith(op, self.pos):
                self.pos += len(op)
                return FBinOp(op, left, self._parse_primary())
        return left

    def _parse_primary(self) -> FExpr:
        self.skip_ws()
        ch = self.text[self.pos : self.pos + 1]
        if ch == "$":
            return self._parse_path()
        if ch in ("'", '"'):
            return FLiteral(self.read_string())
        if ch.isdigit() or (ch == "-" and self.text[self.pos + 1 : self.pos + 2].isdigit()):
            start = self.pos
            self.pos += 1
            while self.pos < len(self.text) and (
                self.text[self.pos].isdigit() or self.text[self.pos] == "."
            ):
                self.pos += 1
            raw = self.text[start : self.pos]
            return FLiteral(float(raw) if "." in raw else int(raw))
        if ch == "(":
            self.pos += 1
            expr = self._parse_or()
            self.expect(")")
            return expr
        raise self.error("expected an expression")

    def _parse_path(self) -> FPath:
        var = self.read_var()
        steps: list[str] = []
        while self.text.startswith("/", self.pos):
            self.pos += 1
            if self.text.startswith("@", self.pos):
                self.pos += 1
                steps.append("@" + self.read_name())
            elif self.text.startswith("text()", self.pos):
                self.pos += len("text()")
                steps.append("text()")
            else:
                steps.append(self.read_name())
        return FPath(var, tuple(steps))

    # RETURN templates -----------------------------------------------------------------

    def _parse_element(self) -> RElement:
        self.expect("<")
        tag = self.read_name()
        attributes: list[tuple[str, str | FExpr]] = []
        while True:
            self.skip_ws()
            ch = self.text[self.pos : self.pos + 1]
            if ch in (">", "/"):
                break
            name = self.read_name()
            self.expect("=")
            self.skip_ws()
            if self.text.startswith('"{', self.pos) or self.text.startswith("'{", self.pos):
                quote = self.text[self.pos]
                self.pos += 2
                expr = self._parse_or()
                self.expect("}")
                self.expect(quote)
                attributes.append((name, expr))
            elif self.text.startswith("{", self.pos):
                self.pos += 1
                expr = self._parse_or()
                self.expect("}")
                attributes.append((name, expr))
            else:
                attributes.append((name, self.read_string()))
        if self.accept("/>"):
            return RElement(tag, tuple(attributes), ())
        self.expect(">")
        children: list[RText | RSplice | RElement] = []
        buffer: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error(f"unterminated element <{tag}>")
            ch = self.text[self.pos]
            if ch == "<":
                if buffer:
                    text = "".join(buffer)
                    if text.strip():
                        children.append(RText(text))
                    buffer = []
                if self.text.startswith("</", self.pos):
                    self.pos += 2
                    closing = self.read_name()
                    if closing != tag:
                        raise self.error(
                            f"mismatched closing tag </{closing}> for <{tag}>"
                        )
                    self.expect(">")
                    return RElement(tag, tuple(attributes), tuple(children))
                children.append(self._parse_element())
            elif ch == "{":
                if buffer:
                    text = "".join(buffer)
                    if text.strip():
                        children.append(RText(text))
                    buffer = []
                self.pos += 1
                children.append(RSplice(self._parse_or()))
                self.expect("}")
            else:
                buffer.append(ch)
                self.pos += 1


def _expr_vars(expr: FExpr) -> set[str]:
    if isinstance(expr, FPath):
        return {expr.var}
    if isinstance(expr, FBinOp):
        return _expr_vars(expr.left) | _expr_vars(expr.right)
    if isinstance(expr, FNot):
        return _expr_vars(expr.operand)
    return set()


def _template_vars(template: RElement) -> set[str]:
    out: set[str] = set()
    for _, value in template.attributes:
        if isinstance(value, FExpr):
            out |= _expr_vars(value)
    for child in template.children:
        if isinstance(child, RSplice):
            out |= _expr_vars(child.expr)
        elif isinstance(child, RElement):
            out |= _template_vars(child)
    return out

"""E9 — transient faults vs the resilience ladder.

The paper's availability story (section 3.4) covers *outages*: sources
that are down for a window of time, answered with partial results (E4).
Production mediators also face *transient* faults — individual calls
that fail, stall, or drop mid-stream — and recover with retries,
circuit breakers, and degraded reads from stale caches or replicas.

E9 sweeps the per-call transient-failure rate over a five-source union
query and compares three engine configurations:

* ``none``  — the E4 baseline: one attempt, failure -> SKIP;
* ``retry`` — bounded retries with exponential backoff + a per-source
  circuit breaker;
* ``full``  — retries + breaker + stale-fallback degraded reads from a
  deliberately expired materialization cache.

Expected shape: completeness under ``none`` collapses roughly as
(1-f)^n; ``retry`` holds it near 1.0 until the fault rate overwhelms
the attempt budget (and the breaker starts failing fast); ``full``
stays near 1.0 by serving stale data, reported separately as
``stale_served`` rather than as missing sources.  Retries are *paid
for* in virtual latency — the avg-ms columns show the price of the
recovered completeness.  Everything is seeded: two runs of any point
produce identical counters.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, print_table, write_bench_json

from repro import (
    BreakerConfig,
    Catalog,
    FaultModel,
    MaterializationManager,
    NetworkModel,
    NimbleEngine,
    RefreshPolicy,
    ResiliencePolicy,
    RetryPolicy,
    SimClock,
    SourceRegistry,
    XMLSource,
)

N_SOURCES = 5
TRIALS = 60
STEP_MS = 200.0
FAULT_RATES = (0.0, 0.1, 0.2, 0.4, 0.8)
MODES = ("none", "retry", "full")

BENCH_STATS = BenchStats()


def union_query() -> str:
    clauses = ", ".join(
        f'<item><v>$v{i}</v></item> IN "s{i}.data"' for i in range(N_SOURCES)
    )
    template = "".join(f"<c{i}>$v{i}</c{i}>" for i in range(N_SOURCES))
    return f"WHERE {clauses} CONSTRUCT <all>{template}</all>"


def build_engine(fault_rate: float, mode: str) -> tuple[NimbleEngine, str]:
    clock = SimClock()
    registry = SourceRegistry(clock)
    catalog = Catalog(registry)
    for index in range(N_SOURCES):
        doc = (
            f"<feed><item><v>x{index}</v></item>"
            f"<item><v>y{index}</v></item></feed>"
        )
        registry.register(
            XMLSource(
                f"s{index}",
                {"data": doc},
                network=NetworkModel(latency_ms=8.0 + index, per_row_ms=0.2),
            )
        )
    query = union_query()
    resilience = None
    materializer = None
    if mode in ("retry", "full"):
        resilience = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, base_backoff_ms=10.0, seed=41),
            breaker=BreakerConfig(window=20, failure_threshold=0.6,
                                  min_calls=10, cooldown_ms=500.0),
            allow_stale=(mode == "full"),
        )
    if mode == "full":
        materializer = MaterializationManager(clock)
    engine = NimbleEngine(catalog, materializer=materializer,
                          resilience=resilience)
    if mode == "full":
        # prewarm the cache fault-free, then expire it immediately: every
        # later hit on it is a *stale* degraded read, never a fresh one
        engine.materialize_query_fragments(query, RefreshPolicy.ttl(1.0))
        clock.advance(10.0)
    # attach fault injection only after the prewarm ran clean
    for index in range(N_SOURCES):
        registry.get(f"s{index}").faults = FaultModel(
            failure_rate=fault_rate,
            drop_rate=fault_rate * 0.25,  # mid-stream drops ride the sweep
            seed=900 + index,
        )
    return engine, query


def run_mode(fault_rate: float, mode: str) -> dict:
    engine, query = build_engine(fault_rate, mode)
    totals = {"complete": 0, "retries": 0, "breaker_trips": 0,
              "stale_served": 0, "skipped": 0, "virtual_ms": 0.0}
    for _ in range(TRIALS):
        engine.clock.advance(STEP_MS)
        result = BENCH_STATS.absorb(engine.query(query))
        if result.completeness.complete:
            totals["complete"] += 1
        totals["retries"] += result.stats.retries
        totals["breaker_trips"] += result.stats.breaker_trips
        totals["stale_served"] += result.stats.stale_served
        totals["skipped"] += result.stats.fragments_skipped
        totals["virtual_ms"] += result.stats.elapsed_virtual_ms
    totals["complete_rate"] = totals["complete"] / TRIALS
    totals["avg_ms"] = totals["virtual_ms"] / TRIALS
    return totals


def run_experiment() -> list[list]:
    BENCH_STATS.reset()
    rows = []
    for fault_rate in FAULT_RATES:
        outcome = {mode: run_mode(fault_rate, mode) for mode in MODES}
        rows.append([
            fault_rate,
            outcome["none"]["complete_rate"],
            outcome["retry"]["complete_rate"],
            outcome["full"]["complete_rate"],
            outcome["retry"]["retries"],
            outcome["retry"]["breaker_trips"],
            outcome["full"]["stale_served"],
            outcome["none"]["avg_ms"],
            outcome["retry"]["avg_ms"],
        ])
    return rows


def report():
    rows = run_experiment()
    print_table(
        "E9: transient faults vs retry/breaker/stale-fallback resilience",
        ["fault rate", "complete (none)", "complete (retry)",
         "complete (full)", "retries", "breaker trips", "stale served",
         "avg ms (none)", "avg ms (retry)"],
        rows,
    )
    write_bench_json(
        "e9_resilience",
        ["fault rate", "complete (none)", "complete (retry)",
         "complete (full)", "retries", "breaker trips", "stale served",
         "avg ms (none)", "avg ms (retry)"],
        rows,
        headline={"worst_case_complete_full": rows[-1][3]},
        stats=BENCH_STATS,
    )
    return rows


def test_e9_resilience(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_rate = {row[0]: row for row in rows}
    # fault-free: every mode is complete, nothing is served stale
    assert by_rate[0.0][1] == by_rate[0.0][2] == by_rate[0.0][3] == 1.0
    assert by_rate[0.0][6] == 0
    # the acceptance point: at a 20% transient-failure rate, retries
    # give strictly higher completeness than one-shot calls
    assert by_rate[0.2][2] > by_rate[0.2][1]
    assert by_rate[0.2][4] > 0  # and they actually retried
    # degraded reads rescue completeness when retries are overwhelmed
    assert by_rate[0.8][3] > by_rate[0.8][2]
    assert by_rate[0.8][6] > 0
    # resilience is paid in virtual time once faults appear
    assert by_rate[0.4][8] > by_rate[0.4][7]
    # determinism: same seeds, same schedule -> identical counters
    assert run_mode(0.2, "retry") == run_mode(0.2, "retry")
    report()


if __name__ == "__main__":
    report()

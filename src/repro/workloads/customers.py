"""The customer-360 universe: overlapping, dirty multi-source data.

Simulates the paper's flagship scenario: "information about the
customers of a company is scattered across multiple databases in the
organization ... In some cases, the data sources have existed for a
long time, and in others they have resulted from continuous activities
of mergers and acquisitions."

Three sources with deliberately different shapes:

* **crm**      — ``customers(id, first_name, last_name, street, city,
  phone, email, tier)`` — the well-kept system of record;
* **billing**  — ``accounts(acct_no, name, address, balance, notes)`` —
  an acquired company's system: full name in one field ("translation
  problem"), street+city merged, legacy codes pasted into notes
  ("representational inadequacy");
* **support**  — ``tickets_users(uid, fullname, city, open_tickets)`` —
  a newer SaaS export with its own ids.

Ground truth — which records denote the same person — is returned with
the data, so cleaning precision/recall is measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sql.database import Database
from repro.workloads.dirty import DirtMachine
from repro.xmldm.values import Record

_FIRST_NAMES = (
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "yuki",
    "wei", "ahmed", "fatima", "carlos", "maria", "ivan", "olga", "raj",
    "priya",
)
_LAST_NAMES = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "tanaka", "chen", "hassan", "silva", "petrov", "kumar", "novak",
    "fischer", "rossi", "kim",
)
_STREETS = (
    "fairview avenue", "pine street", "oak boulevard", "maple drive",
    "cedar lane", "elm street", "lake road", "hill street", "park avenue",
    "river road", "sunset boulevard", "broadway", "main street",
    "second avenue", "union street",
)
_CITIES = (
    "seattle", "portland", "boise", "tacoma", "spokane", "eugene",
    "bellevue", "olympia", "salem", "vancouver",
)


@dataclass
class TrueCustomer:
    """Ground truth for one person."""

    key: int
    first_name: str
    last_name: str
    street: str
    city: str
    phone: str
    email: str
    tier: int

    @property
    def full_name(self) -> str:
        return f"{self.first_name} {self.last_name}"


@dataclass
class CustomerUniverse:
    """The generated universe: truth, per-source records, truth pairs."""

    truth: list[TrueCustomer]
    #: source name -> records (each has an 'id' field unique per source)
    records: dict[str, list[Record]]
    #: (source, id) -> truth key — the oracle the matcher is scored against
    identity: dict[tuple[str, str], int]

    def true_match_pairs(self) -> set[tuple[tuple[str, str], tuple[str, str]]]:
        """All cross-source pairs denoting the same person (canonical order)."""
        by_key: dict[int, list[tuple[str, str]]] = {}
        for ref, key in self.identity.items():
            by_key.setdefault(key, []).append(ref)
        pairs: set[tuple[tuple[str, str], tuple[str, str]]] = set()
        for refs in by_key.values():
            ordered = sorted(refs)
            for i in range(len(ordered)):
                for j in range(i + 1, len(ordered)):
                    pairs.add((ordered[i], ordered[j]))
        return pairs

    def as_databases(self) -> dict[str, Database]:
        """Load the three sources into embedded SQL databases."""
        crm = Database("crm")
        crm.execute(
            "CREATE TABLE customers (id INTEGER PRIMARY KEY, first_name TEXT,"
            " last_name TEXT, street TEXT, city TEXT, phone TEXT, email TEXT,"
            " tier INTEGER)"
        )
        crm.insert_rows(
            "customers",
            [
                [int(r["id"]), r["first_name"], r["last_name"], r["street"],
                 r["city"], r["phone"], r["email"], int(r["tier"])]
                for r in self.records["crm"]
            ],
        )
        billing = Database("billing")
        billing.execute(
            "CREATE TABLE accounts (acct_no INTEGER PRIMARY KEY, name TEXT,"
            " address TEXT, balance REAL, notes TEXT)"
        )
        billing.insert_rows(
            "accounts",
            [
                [int(r["id"]), r["name"], r["address"], float(r["balance"]),
                 r["notes"]]
                for r in self.records["billing"]
            ],
        )
        support = Database("support")
        support.execute(
            "CREATE TABLE tickets_users (uid INTEGER PRIMARY KEY, fullname TEXT,"
            " city TEXT, open_tickets INTEGER)"
        )
        support.insert_rows(
            "tickets_users",
            [
                [int(r["id"]), r["fullname"], r["city"], int(r["open_tickets"])]
                for r in self.records["support"]
            ],
        )
        return {"crm": crm, "billing": billing, "support": support}


def make_customer_universe(
    n_customers: int = 500,
    overlap: float = 0.6,
    dirt: float = 0.15,
    seed: int = 42,
    duplicate_rate: float = 0.05,
) -> CustomerUniverse:
    """Generate the universe.

    ``overlap``         fraction of customers present in billing/support too;
    ``dirt``            corruption intensity on non-CRM copies;
    ``duplicate_rate``  chance of a second (dirty) copy inside billing —
                        the merge/purge case.
    """
    rng = random.Random(seed)
    dirt_machine = DirtMachine(seed + 1)
    truth: list[TrueCustomer] = []
    for key in range(n_customers):
        first = rng.choice(_FIRST_NAMES)
        last = rng.choice(_LAST_NAMES)
        truth.append(
            TrueCustomer(
                key=key,
                first_name=first,
                last_name=last,
                street=f"{rng.randrange(1, 9999)} {rng.choice(_STREETS)}",
                city=rng.choice(_CITIES),
                phone=f"206{rng.randrange(1000000, 9999999)}",
                email=f"{first}.{last}{key}@example.com",
                tier=rng.randrange(1, 4),
            )
        )

    records: dict[str, list[Record]] = {"crm": [], "billing": [], "support": []}
    identity: dict[tuple[str, str], int] = {}

    for customer in truth:
        crm_id = str(10_000 + customer.key)
        records["crm"].append(
            Record(
                {
                    "id": crm_id,
                    "first_name": customer.first_name,
                    "last_name": customer.last_name,
                    "street": customer.street,
                    "city": customer.city,
                    "phone": customer.phone,
                    "email": customer.email,
                    "tier": customer.tier,
                }
            )
        )
        identity[("crm", crm_id)] = customer.key

    billing_no = 50_000
    for customer in truth:
        if rng.random() >= overlap:
            continue
        copies = 2 if rng.random() < duplicate_rate else 1
        for _ in range(copies):
            billing_no += 1
            name = customer.full_name
            if dirt_machine.maybe(0.4):
                name = dirt_machine.swap_name_order(name)
            name = dirt_machine.corrupt(name, dirt)
            address = dirt_machine.corrupt(
                f"{customer.street}, {customer.city}", dirt
            )
            notes = ""
            if dirt_machine.maybe(0.3):
                notes = (
                    f"migrated from legacy system {dirt_machine.legacy_code()}"
                )
            billing_id = str(billing_no)
            records["billing"].append(
                Record(
                    {
                        "id": billing_id,
                        "name": name,
                        "address": address,
                        "balance": round(rng.uniform(0, 5000), 2),
                        "notes": notes,
                    }
                )
            )
            identity[("billing", billing_id)] = customer.key

    support_no = 90_000
    for customer in truth:
        if rng.random() >= overlap:
            continue
        support_no += 1
        support_id = str(support_no)
        records["support"].append(
            Record(
                {
                    "id": support_id,
                    "fullname": dirt_machine.corrupt(customer.full_name, dirt),
                    "city": dirt_machine.corrupt(customer.city, dirt / 2),
                    "open_tickets": rng.randrange(0, 6),
                }
            )
        )
        identity[("support", support_id)] = customer.key

    return CustomerUniverse(truth, records, identity)

"""Documents: a root element plus global document-order numbering."""

from __future__ import annotations

from typing import Iterator

from repro.xmldm.nodes import Element, Node


class Document:
    """An XML document: prolog nodes, one root element, and numbering.

    XML documents are intrinsically ordered (paper, section 4); the
    document assigns every node a pre-order ``document_order`` integer so
    operators can sort and compare positions in O(1).
    """

    def __init__(self, root: Element, name: str = ""):
        self.root = root
        self.name = name
        self.prolog: list[Node] = []
        self.renumber()

    def renumber(self) -> int:
        """(Re)assign pre-order document-order numbers; returns node count.

        Must be called after structural mutation if document order is to
        be relied upon again.
        """
        counter = 0
        for node in self.root.walk():
            node.document_order = counter
            counter += 1
        return counter

    def iter_nodes(self) -> Iterator[Node]:
        """All nodes in document order."""
        return self.root.walk()

    def elements(self, tag: str | None = None) -> Iterator[Element]:
        """All elements in document order, optionally filtered by tag."""
        return self.root.descendants_or_self(tag)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return self.root == other.root

    def __repr__(self) -> str:
        label = self.name or self.root.tag
        return f"<Document {label!r}>"

"""The on-demand fragment result cache (paper section 2.1, "caching").

The materializer (:mod:`repro.materialize`) caches *pre-declared* units:
fragments and mediated views an administrator chose to keep local.  This
package adds the workload-driven layer the paper's engine also names —
"caching" alongside the query processor and the materialization manager:
every fragment the engine fetches is kept, byte-budgeted and
TTL-governed, so repeated queries and overlapping fragments are served
from memory instead of paying the network again.
"""

from repro.cache.feedback import StatisticsFeedback
from repro.cache.fragmentcache import CachedResult, FragmentResultCache
from repro.cache.keys import params_key, result_key

__all__ = [
    "CachedResult",
    "FragmentResultCache",
    "StatisticsFeedback",
    "params_key",
    "result_key",
]

"""Unit tests for SQL types, storage and indexes."""

import datetime

import pytest

from repro.errors import SQLIntegrityError, SQLSchemaError, SQLTypeError
from repro.sql.index import HashIndex, SortedIndex
from repro.sql.schema import Column, TableSchema
from repro.sql.storage import Table
from repro.sql.types import SQLType, coerce, is_truthy, sql_compare, sql_equal


class TestTypes:
    def test_type_aliases(self):
        assert SQLType.from_name("varchar") is SQLType.TEXT
        assert SQLType.from_name("INT") is SQLType.INTEGER
        assert SQLType.from_name("double") is SQLType.REAL

    def test_unknown_type(self):
        with pytest.raises(SQLTypeError):
            SQLType.from_name("blob")

    def test_coerce_integer(self):
        assert coerce("42", SQLType.INTEGER) == 42
        assert coerce(42.0, SQLType.INTEGER) == 42
        assert coerce(True, SQLType.INTEGER) == 1

    def test_coerce_integer_rejects_fraction(self):
        with pytest.raises(SQLTypeError):
            coerce(1.5, SQLType.INTEGER)

    def test_coerce_null_passthrough(self):
        assert coerce(None, SQLType.TEXT) is None

    def test_coerce_date(self):
        assert coerce("2001-04-02", SQLType.DATE) == datetime.date(2001, 4, 2)

    def test_coerce_boolean(self):
        assert coerce("true", SQLType.BOOLEAN) is True
        assert coerce(0, SQLType.BOOLEAN) is False

    def test_compare_null_is_unknown(self):
        assert sql_compare(None, 1) is None
        assert sql_equal(None, None) is None

    def test_compare_numeric_cross_type(self):
        assert sql_compare(1, 1.0) == 0
        assert sql_compare(True, 0) == 1

    def test_compare_date_with_string(self):
        assert sql_compare(datetime.date(2001, 1, 1), "2000-12-31") == 1

    def test_incompatible_comparison_raises(self):
        with pytest.raises(SQLTypeError):
            sql_compare(1, "abc")

    def test_is_truthy_only_true(self):
        assert is_truthy(True)
        assert not is_truthy(None)
        assert not is_truthy(False)
        assert not is_truthy(1)


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(SQLSchemaError):
            TableSchema("t", (Column("a", SQLType.TEXT), Column("a", SQLType.TEXT)))

    def test_composite_pk_rejected(self):
        with pytest.raises(SQLSchemaError):
            TableSchema(
                "t",
                (
                    Column("a", SQLType.INTEGER, primary_key=True),
                    Column("b", SQLType.INTEGER, primary_key=True),
                ),
            )

    def test_column_lookup(self):
        schema = TableSchema("t", (Column("a", SQLType.TEXT),))
        assert schema.column_index("a") == 0
        with pytest.raises(SQLSchemaError):
            schema.column("missing")


@pytest.fixture
def table():
    schema = TableSchema(
        "people",
        (
            Column("id", SQLType.INTEGER, primary_key=True),
            Column("name", SQLType.TEXT, nullable=False),
            Column("age", SQLType.INTEGER),
        ),
    )
    return Table(schema)


class TestTable:
    def test_insert_and_scan(self, table):
        table.insert([1, "Ann", 30])
        table.insert([2, "Bob", None])
        assert table.row_count == 2
        assert [row for _, row in table.scan()] == [(1, "Ann", 30), (2, "Bob", None)]

    def test_insert_coerces(self, table):
        table.insert(["3", "Cam", "40"])
        assert table.get(0) == (3, "Cam", 40)

    def test_pk_uniqueness(self, table):
        table.insert([1, "Ann", 30])
        with pytest.raises(SQLIntegrityError):
            table.insert([1, "Dup", 1])

    def test_not_null_enforced(self, table):
        with pytest.raises(SQLIntegrityError):
            table.insert([1, None, 30])

    def test_wrong_width_rejected(self, table):
        with pytest.raises(SQLSchemaError):
            table.insert([1, "Ann"])

    def test_insert_named_fills_null(self, table):
        table.insert_named({"id": 1, "name": "Ann"})
        assert table.get(0) == (1, "Ann", None)

    def test_insert_named_unknown_column(self, table):
        with pytest.raises(SQLSchemaError):
            table.insert_named({"id": 1, "name": "A", "oops": 2})

    def test_delete_keeps_rowids_stable(self, table):
        table.insert([1, "Ann", 30])
        table.insert([2, "Bob", 20])
        table.delete(0)
        assert table.row_count == 1
        assert table.get(0) is None
        assert table.get(1) == (2, "Bob", 20)

    def test_update(self, table):
        rowid = table.insert([1, "Ann", 30])
        table.update(rowid, {"age": 31})
        assert table.get(rowid) == (1, "Ann", 31)

    def test_update_pk_conflict(self, table):
        table.insert([1, "Ann", 30])
        rowid = table.insert([2, "Bob", 20])
        with pytest.raises(SQLIntegrityError):
            table.update(rowid, {"id": 1})

    def test_update_pk_to_itself_allowed(self, table):
        rowid = table.insert([1, "Ann", 30])
        table.update(rowid, {"id": 1, "age": 99})
        assert table.get(rowid) == (1, "Ann", 99)

    def test_truncate(self, table):
        table.insert([1, "Ann", 30])
        table.create_index("ix_age", "age")
        table.truncate()
        assert table.row_count == 0
        assert len(table.indexes["ix_age"]) == 0
        table.insert([1, "Ann", 30])  # PK index was rebuilt too
        assert table.row_count == 1


class TestIndexes:
    def test_hash_index_lookup(self):
        index = HashIndex("ix", "c")
        index.insert("a", 1)
        index.insert("a", 2)
        index.insert("b", 3)
        assert list(index.lookup("a")) == [1, 2]
        assert list(index.lookup("missing")) == []

    def test_hash_index_delete(self):
        index = HashIndex("ix", "c")
        index.insert("a", 1)
        index.delete("a", 1)
        assert list(index.lookup("a")) == []

    def test_null_keys_not_indexed(self):
        index = HashIndex("ix", "c")
        index.insert(None, 1)
        assert len(index) == 0

    def test_sorted_index_range(self):
        index = SortedIndex("ix", "c")
        for rowid, key in enumerate([5, 1, 3, 9, 7]):
            index.insert(key, rowid)
        assert list(index.range_scan(3, 7)) == [2, 0, 4]
        assert list(index.range_scan(3, 7, low_inclusive=False)) == [0, 4]
        assert list(index.range_scan(None, 3)) == [1, 2]
        assert list(index.range_scan(7, None, high_inclusive=False)) == [4, 3]

    def test_sorted_index_lookup_and_delete(self):
        index = SortedIndex("ix", "c")
        index.insert("x", 1)
        index.insert("x", 2)
        assert list(index.lookup("x")) == [1, 2]
        index.delete("x", 1)
        assert list(index.lookup("x")) == [2]

    def test_table_index_maintenance_on_update(self, table):
        table.create_index("ix_age", "age")
        rowid = table.insert([1, "Ann", 30])
        table.update(rowid, {"age": 35})
        index = table.indexes["ix_age"]
        assert list(index.lookup(30)) == []
        assert list(index.lookup(35)) == [rowid]

    def test_create_index_backfills(self, table):
        table.insert([1, "Ann", 30])
        index = table.create_index("ix_age", "age")
        assert list(index.lookup(30)) == [0]

    def test_duplicate_index_name(self, table):
        table.create_index("ix", "age")
        with pytest.raises(SQLSchemaError):
            table.create_index("ix", "name")

    def test_indexes_on(self, table):
        table.create_index("ix_age", "age")
        assert [ix.name for ix in table.indexes_on("age")] == ["ix_age"]
        assert [ix.name for ix in table.indexes_on("id")] == ["__pk_people"]

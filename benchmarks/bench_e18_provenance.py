"""E18 — answer provenance and freshness lineage.

The claims under test:

1. **Provenance is free**: the same mixed workload (cache warm-up, CDC
   churn, incremental sync, sharded scatter) runs in *identical*
   virtual time with ``provenance=True`` and ``provenance=False``, and
   produces byte-identical elements — lineage is annotation, never
   extra work on the simulated clock.
2. **The "why" chain is causal**: with a warmed-then-expired fragment
   cache, a lagging CDC feed, and a breaker tripped open by injected
   faults, ``explain_answer`` attributes the stale serve to the open
   breaker and quantifies the feed lag (applied seq vs head seq).
3. **Maintenance is visible**: ``sync_changes`` / view refresh spans
   land on the dedicated maintenance lane of the exported Chrome
   trace (``tid`` 999 with a ``thread_name`` metadata record).

Artifacts: ``BENCH_e18_provenance.json`` (tables + headline),
``PROVENANCE_e18.json`` (a full ``Provenance.as_dict()`` plus the
rendered why-chain), ``TRACE_e18_provenance.json`` (Chrome trace with
the maintenance lane).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import RESULTS_DIR, BenchStats, print_table, write_bench_json

from repro.core.engine import NimbleEngine
from repro.core.sharding import ShardRouter
from repro.materialize import MaterializationManager
from repro.mediator.catalog import Catalog
from repro.mediator.schema import MediatedSchema, ViewDef
from repro.observability import Tracer, write_chrome_trace
from repro.observability.export import MAINTENANCE_TID, chrome_trace_events
from repro.resilience import (
    BreakerConfig,
    FaultModel,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.simtime import SimClock
from repro.sources import NetworkModel, SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sources.sharding import partition_registry
from repro.sql.database import Database
from repro.xmldm import serialize

N_ROWS = 2_000
NETWORK = dict(latency_ms=10.0, per_row_ms=0.1)

ITEMS_QUERY = (
    'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items" '
    "CONSTRUCT <r><k>$k</k><v>$v</v></r> ORDER BY $k"
)
RANGE_QUERY = (
    'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items", '
    f"$k < {N_ROWS // 4} CONSTRUCT <r><k>$k</k><v>$v</v></r> ORDER BY $k"
)

VIEWS = {
    "big_items": (
        'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items", $v > 500 '
        "CONSTRUCT <r><k>$k</k><v>$v</v></r>"
    ),
    "by_group": (
        'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items" '
        "CONSTRUCT <g id=$g><n>count($v)</n><total>sum($v)</total></g>"
    ),
}


def make_rows(n: int = N_ROWS) -> list[tuple[int, int, int]]:
    return [(k, (k * 13) % 24, (k * k * 7) % 1000) for k in range(n)]


def build_deployment(rows, faults=None, **engine_kw):
    db = Database()
    db.execute(
        "CREATE TABLE t (k INTEGER PRIMARY KEY, grp INTEGER, v INTEGER)"
    )
    db.insert_rows("t", rows)
    clock = SimClock()
    registry = SourceRegistry(clock)
    source = RelationalSource("s", db, network=NetworkModel(**NETWORK))
    if faults is not None:
        source.faults = faults
    registry.register(source)
    source.enable_cdc()
    catalog = Catalog(registry)
    catalog.map_relation("items", "s", "t")
    schema = MediatedSchema("m")
    for name, text in VIEWS.items():
        schema.define(ViewDef.from_text(name, text))
    catalog.add_schema(schema)
    engine = NimbleEngine(
        catalog, materializer=MaterializationManager(clock),
        incremental=True, **engine_kw,
    )
    return engine, source


def insert_rows(source, rows):
    for k, grp, v in rows:
        source.insert_row("t", {"k": k, "grp": grp, "v": v})


def rendered(result) -> list[str]:
    return [serialize(element) for element in result.elements]


# -- claim 1: bit-identity and zero virtual-time overhead ---------------------


def run_workload(provenance: bool, bench_stats=None):
    """The mixed workload: warm cache, churn + sync, re-query, scatter."""
    engine, source = build_deployment(
        make_rows(), provenance=provenance, fragment_cache_bytes=2_000_000
    )
    started_wall = time.perf_counter()
    for name in VIEWS:
        engine.maintain_view(name)
    outputs = [rendered(engine.query(ITEMS_QUERY))]
    outputs.append(rendered(engine.query(RANGE_QUERY)))  # cache hit
    insert_rows(
        source, [(N_ROWS + i, i % 24, (i * 11) % 1000) for i in range(20)]
    )
    engine.sync_changes()
    outputs.append(rendered(engine.query(ITEMS_QUERY)))
    deployment = partition_registry(engine.catalog.registry, {"s": "k"}, 4)
    router = ShardRouter(engine, deployment)
    scattered = router.query(RANGE_QUERY)
    outputs.append(rendered(scattered))
    wall_ms = (time.perf_counter() - started_wall) * 1000.0
    if bench_stats is not None:
        bench_stats.stats.absorb(engine.cdc_stats)
    last_provenance = scattered.provenance
    return {
        "outputs": outputs,
        "virtual_ms": engine.clock.now,
        "wall_ms": wall_ms,
        "provenance": last_provenance,
    }


# -- claim 2: explain_answer attributes the stale serve -----------------------


def staleness_injection():
    """Warm cache -> feed moves -> TTL expires -> breaker trips ->
    the stale rung serves, and the why-chain names both causes."""
    engine, source = build_deployment(
        make_rows(200),
        provenance=True,
        fragment_cache_bytes=500_000,
        fragment_cache_ttl_ms=1_000.0,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2, base_backoff_ms=10.0),
            breaker=BreakerConfig(window=4, failure_threshold=0.5,
                                  min_calls=2, cooldown_ms=60_000.0),
        ),
    )
    engine.query(ITEMS_QUERY)  # warm (live)
    insert_rows(source, [(900 + i, 1, 9) for i in range(5)])  # feed moves
    engine.clock.advance(5_000.0)  # cached entry expires (kept resident)
    source.faults = FaultModel(failure_rate=1.0, seed=3)
    stale = engine.query(ITEMS_QUERY)
    chain = engine.explain_answer(stale)
    breaker = engine.resilient.breakers["s"]
    assert stale.provenance.origin_counts() == {"stale_cache": 1}, (
        stale.provenance.origin_counts()
    )
    assert breaker.state.value == "open"
    assert "because breaker 's' is OPEN" in chain, chain
    assert "feed 's' is 5 changes ahead of this answer" in chain, chain
    return stale.provenance, chain


# -- claim 3: maintenance lane in the Chrome export ---------------------------


def maintenance_trace():
    engine, source = build_deployment(make_rows(200))
    for name in VIEWS:
        engine.maintain_view(name)
    tracer = Tracer(engine.clock)
    engine.use_tracer(tracer)
    engine.query(ITEMS_QUERY)
    insert_rows(source, [(900 + i, i % 24, i * 7) for i in range(10)])
    engine.sync_changes()
    payload = chrome_trace_events(tracer.traces)
    lane_events = [
        event for event in payload["traceEvents"]
        if event["tid"] == MAINTENANCE_TID and event.get("ph") == "X"
    ]
    named_lane = any(
        event.get("ph") == "M" and event["args"]["name"] == "maintenance"
        for event in payload["traceEvents"]
    )
    assert lane_events, "no maintenance spans landed on the dedicated lane"
    assert named_lane, "maintenance lane has no thread_name metadata"
    kinds = sorted({event["cat"] for event in lane_events})
    return tracer, len(lane_events), kinds


# -- report -------------------------------------------------------------------


def run_experiment():
    bench_stats = BenchStats()
    bench_stats.reset()

    off = run_workload(False, bench_stats)
    on = run_workload(True, bench_stats)

    assert on["outputs"] == off["outputs"], (
        "provenance=True changed the answer bytes"
    )
    virtual_overhead = on["virtual_ms"] - off["virtual_ms"]
    assert virtual_overhead == 0.0, (
        f"provenance perturbed virtual time by {virtual_overhead} ms"
    )
    provenance = on["provenance"]
    assert provenance is not None and provenance.shards

    lineage_provenance, chain = staleness_injection()
    tracer, lane_spans, lane_kinds = maintenance_trace()

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    trace_path = RESULTS_DIR / "TRACE_e18_provenance.json"
    write_chrome_trace(trace_path, tracer.traces)
    print(f"[bench] wrote {trace_path}")

    provenance_path = RESULTS_DIR / "PROVENANCE_e18.json"
    provenance_path.write_text(json.dumps({
        "workload_answer": provenance.as_dict(),
        "stale_answer": lineage_provenance.as_dict(),
        "why_chain": chain.splitlines(),
    }, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {provenance_path}")

    result_rows = sum(len(fragment) for fragment in on["outputs"])
    rows = [
        ["provenance off", off["virtual_ms"], round(off["wall_ms"], 2), 0],
        ["provenance on", on["virtual_ms"], round(on["wall_ms"], 2),
         len(provenance.origins)],
        ["overhead", virtual_overhead,
         round(on["wall_ms"] - off["wall_ms"], 2), 0],
        ["(result rows)", 0.0, 0.0, result_rows],
    ]
    lineage_rows = [
        [origin.source, origin.kind, origin.rows,
         round(origin.staleness_ms, 1),
         origin.shard if origin.shard is not None else "-"]
        for origin in lineage_provenance.origins + provenance.origins
    ]
    return rows, lineage_rows, chain, lane_spans, lane_kinds, bench_stats


def report():
    rows, lineage_rows, chain, lane_spans, lane_kinds, bench_stats = (
        run_experiment()
    )
    print_table(
        f"E18: provenance overhead on the mixed workload ({N_ROWS:,} rows, "
        "cache + CDC sync + 4-shard scatter)",
        ["config", "virtual ms", "wall ms", "origins"],
        rows,
    )
    print_table(
        "E18: fragment lineage (stale-injection answer + sharded answer)",
        ["source", "origin", "rows", "staleness ms", "shard"],
        lineage_rows,
    )
    print("\nwhy-chain for the stale answer:")
    for line in chain.splitlines():
        print(f"  {line}")
    print(f"\nmaintenance lane: {lane_spans} spans ({', '.join(lane_kinds)})")

    by_config = {row[0]: row for row in rows}
    write_bench_json(
        "e18_provenance",
        ["config", "virtual ms", "wall ms", "origins"],
        rows,
        headline={
            "virtual_overhead_ms": by_config["overhead"][1],
            "wall_overhead_ms": by_config["overhead"][2],
            "origins_annotated": by_config["provenance on"][3],
            "maintenance_lane_spans": lane_spans,
            "why_chain_lines": len(chain.splitlines()),
        },
        extra_tables={
            "lineage": (
                ["source", "origin", "rows", "staleness ms", "shard"],
                lineage_rows,
            ),
        },
        stats=bench_stats,
    )
    return rows


def test_e18_provenance(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)[0]
    by_config = {row[0]: row for row in rows}
    # the load-bearing claim: zero virtual-time perturbation
    assert by_config["overhead"][1] == 0.0
    assert by_config["provenance on"][3] > 0  # origins were annotated


if __name__ == "__main__":
    report()

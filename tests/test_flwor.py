"""Unit tests for the FLWOR (XQuery-style) front end."""

import pytest

from repro.core import NimbleEngine, PartialResultPolicy
from repro.errors import QuerySyntaxError
from repro.query.flwor import (
    FlworQuery,
    eval_steps,
    parse_flwor,
    translate_flwor,
)
from repro.sources import AvailabilityModel, FlakySource, XMLSource
from repro.xmldm import parse_document, serialize
from repro.xmldm.values import Collection, Record

BOOKS = parse_document(
    '<catalog>'
    '<book year="1994" sku="A1"><title>TCP</title></book>'
    '<book year="2000" sku="B2"><title>Web Data</title></book>'
    '<book year="2001" sku="C3"><title>Mediators</title></book>'
    "</catalog>"
)
STOCK = [
    Record({"sku": "A1", "price": 65.95}),
    Record({"sku": "B2", "price": 39.95}),
    Record({"sku": "C3", "price": 55.0}),
]


def resolver(name):
    return {"books": [BOOKS], "stock": STOCK}[name]


class TestPathEvaluation:
    def test_element_child_step(self):
        book = BOOKS.root.first_child("book")
        results = eval_steps(book, ("title",))
        assert results[0].text_content() == "TCP"

    def test_element_attribute_step(self):
        book = BOOKS.root.first_child("book")
        assert eval_steps(book, ("@year",)) == ["1994"]

    def test_record_field_step(self):
        assert eval_steps(STOCK[0], ("price",)) == [65.95]

    def test_record_collection_field_flattens(self):
        record = Record({"tags": Collection(["a", "b"])})
        assert eval_steps(record, ("tags",)) == ["a", "b"]

    def test_dead_end_path(self):
        assert eval_steps(STOCK[0], ("nope", "deeper")) == []


class TestParser:
    def test_full_query_shape(self):
        query = parse_flwor(
            'FOR $b IN "books" LET $t := $b/title '
            "WHERE $b/@year > 1995 ORDER BY $t DESCENDING "
            "RETURN <r>{$t}</r>"
        )
        assert isinstance(query, FlworQuery)
        assert query.fors[0].var == "b"
        assert query.lets[0].var == "t"
        assert query.order[0].descending
        assert query.construct.tag == "r"

    def test_multiple_for_bindings(self):
        query = parse_flwor(
            'FOR $a IN "books", $b IN "stock" RETURN <r>{$a/title}</r>'
        )
        assert len(query.fors) == 2

    def test_unbound_variable_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_flwor('FOR $a IN "books" RETURN <r>{$zz}</r>')

    def test_mismatched_return_tag(self):
        with pytest.raises(QuerySyntaxError):
            parse_flwor('FOR $a IN "books" RETURN <r>{$a}</x>')

    def test_trailing_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_flwor('FOR $a IN "books" RETURN <r/> extra')

    def test_attribute_splice_forms(self):
        query = parse_flwor(
            'FOR $b IN "books" RETURN <r a="{$b/@sku}" b="lit"/>'
        )
        assert not isinstance(query.construct.attributes[1][1], object.__class__)


class TestExecution:
    def test_filter_and_order(self):
        plan = translate_flwor(
            'FOR $b IN "books" WHERE $b/@year > 1995 '
            "ORDER BY $b/@year DESCENDING RETURN <t>{$b/title}</t>",
            resolver,
        )
        assert [e.text_content() for e in plan.results()] == [
            "Mediators",
            "Web Data",
        ]

    def test_join_across_models(self):
        plan = translate_flwor(
            'FOR $b IN "books", $s IN "stock" '
            "WHERE $b/@sku = $s/sku AND $s/price < 60 "
            "ORDER BY $s/price "
            'RETURN <hit sku="{$b/@sku}"><p>{$s/price}</p></hit>',
            resolver,
        )
        results = plan.results()
        assert [e.attributes["sku"] for e in results] == ["B2", "C3"]

    def test_let_binding(self):
        plan = translate_flwor(
            'FOR $b IN "books" LET $y := $b/@year '
            "WHERE $y = 2000 RETURN <r>{$y}</r>",
            resolver,
        )
        assert [e.text_content() for e in plan.results()] == ["2000"]

    def test_splice_element_copies_node(self):
        plan = translate_flwor(
            'FOR $b IN "books" WHERE $b/@sku = "A1" '
            "RETURN <wrap>{$b/title}</wrap>",
            resolver,
        )
        assert serialize(plan.results()[0]) == "<wrap><title>TCP</title></wrap>"

    def test_per_binding_no_grouping(self):
        # FLWOR is per-binding: three books -> three results
        plan = translate_flwor(
            'FOR $b IN "books" RETURN <r>{$b/title}</r>', resolver
        )
        assert len(plan.results()) == 3

    def test_nested_return_elements(self):
        plan = translate_flwor(
            'FOR $s IN "stock" WHERE $s/sku = "B2" '
            "RETURN <o><inner><p>{$s/price}</p></inner></o>",
            resolver,
        )
        assert serialize(plan.results()[0]) == (
            "<o><inner><p>39.95</p></inner></o>"
        )

    def test_literal_text_in_return(self):
        plan = translate_flwor(
            'FOR $s IN "stock" WHERE $s/sku = "B2" '
            "RETURN <r>price: {$s/price}</r>",
            resolver,
        )
        assert plan.results()[0].text_content() == "price: 39.95"


class TestEngineIntegration:
    def test_flwor_over_catalog(self, catalog):
        engine = NimbleEngine(catalog)
        result = engine.flwor_query(
            'FOR $c IN "customers" WHERE $c/city = "Seattle" '
            "ORDER BY $c/name RETURN <hit>{$c/name}</hit>"
        )
        assert [e.text_content() for e in result.elements] == ["Ann", "Cam"]
        assert result.completeness.complete
        assert result.stats.rows_transferred == 4  # wholesale fetch

    def test_flwor_over_view(self, catalog):
        from repro.mediator.schema import MediatedSchema

        schema = MediatedSchema("s")
        schema.define_view(
            "tier_one",
            'WHERE <c><name>$n</name><tier>$t</tier></c> IN "customers", '
            "$t = 1 CONSTRUCT <cust><name>$n</name></cust>",
        )
        catalog.add_schema(schema)
        engine = NimbleEngine(catalog)
        result = engine.flwor_query(
            'FOR $c IN "tier_one" ORDER BY $c/name RETURN <x>{$c/name}</x>'
        )
        assert [e.text_content() for e in result.elements] == ["Ann", "Cam"]

    def test_flwor_partial_results(self, catalog):
        registry = catalog.registry
        flaky = FlakySource(
            XMLSource("gone", {"d": "<r><i><v>1</v></i></r>"}),
            AvailabilityModel(availability=0.99),
        )
        registry.register(flaky)
        flaky.force_offline()
        catalog.map_relation("gone_items", "gone", "d")
        engine = NimbleEngine(catalog)
        result = engine.flwor_query(
            'FOR $c IN "customers", $g IN "gone_items" '
            "RETURN <r>{$c/name}</r>"
        )
        assert not result.completeness.complete
        assert "gone" in result.completeness.missing_sources

    def test_flwor_and_xmlql_agree(self, catalog):
        engine = NimbleEngine(catalog)
        xmlql = engine.query(
            'WHERE <c><name>$n</name><tier>$t</tier></c> IN "customers", '
            "$t = 1 CONSTRUCT <r>$n</r> ORDER BY $n"
        )
        flwor = engine.flwor_query(
            'FOR $c IN "customers" WHERE $c/tier = 1 '
            "ORDER BY $c/name RETURN <r>{$c/name}</r>"
        )
        assert [e.text_content() for e in xmlql.elements] == [
            e.text_content() for e in flwor.elements
        ]

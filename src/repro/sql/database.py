"""The Database facade: DDL, DML, queries, statistics and accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SQLSchemaError
from repro.sql import ast
from repro.sql.executor import Evaluator, Row
from repro.sql.parser import parse_script, parse_statement
from repro.sql.planner import Planner, PreparedSelect
from repro.sql.schema import Column, TableSchema
from repro.sql.storage import Table
from repro.sql.types import SQLType, sort_key


@dataclass
class ResultSet:
    """A query result: column names and a list of row tuples."""

    columns: tuple[str, ...]
    rows: list[tuple]

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def dicts(self) -> list[dict[str, Any]]:
        """Rows as name->value dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> Any:
        """First column of the first row (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]


class Database:
    """An in-memory SQL database.

    >>> db = Database("crm")
    >>> db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
    ResultSet(columns=(), rows=[])
    >>> db.execute("INSERT INTO t VALUES (1, 'Ann')")
    ResultSet(columns=(), rows=[])
    >>> db.execute("SELECT name FROM t WHERE id = 1").scalar()
    'Ann'

    ``counters`` tracks ``rows_scanned``, ``columns_read`` (how many
    columns each scan materialized — projection pushdown shrinks it)
    and ``statements`` so callers (the wrapper layer, benchmark E5) can
    observe how much physical work each statement did.
    """

    def __init__(self, name: str = "db"):
        self.name = name
        self.tables: dict[str, Table] = {}
        self.counters: dict[str, int] = {
            "rows_scanned": 0,
            "columns_read": 0,
            "statements": 0,
        }

    # -- catalog -------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise SQLSchemaError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self.tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise SQLSchemaError(f"unknown table {name!r}")
        del self.tables[name]

    def table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise SQLSchemaError(f"unknown table {name!r}")
        return table

    def table_names(self) -> list[str]:
        return sorted(self.tables)

    # -- statistics ------------------------------------------------------------

    def row_count(self, table_name: str) -> int:
        return self.table(table_name).row_count

    def distinct_count(self, table_name: str, column: str) -> int:
        """Exact distinct-value count (the catalog samples this for costs)."""
        table = self.table(table_name)
        position = table.schema.column_index(column)
        return len({row[position] for _, row in table.scan()})

    # -- execution ---------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Parse and run one statement."""
        statement = parse_statement(sql)
        return self.execute_statement(statement, params)

    def execute_script(self, sql: str) -> None:
        """Run a ';'-separated script (DDL/DML, results discarded)."""
        for statement in parse_script(sql):
            self.execute_statement(statement, ())

    def execute_statement(
        self, statement: ast.Statement, params: Sequence[Any] = ()
    ) -> ResultSet:
        self.counters["statements"] += 1
        evaluator = Evaluator(tuple(params))
        if isinstance(statement, ast.SelectStmt):
            return self._run_select(statement, evaluator)
        if isinstance(statement, ast.InsertStmt):
            return self._run_insert(statement, evaluator)
        if isinstance(statement, ast.UpdateStmt):
            return self._run_update(statement, evaluator)
        if isinstance(statement, ast.DeleteStmt):
            return self._run_delete(statement, evaluator)
        if isinstance(statement, ast.CreateTableStmt):
            return self._run_create_table(statement)
        if isinstance(statement, ast.CreateIndexStmt):
            self.table(statement.table).create_index(statement.name, statement.column)
            return ResultSet((), [])
        if isinstance(statement, ast.DropTableStmt):
            self.drop_table(statement.table)
            return ResultSet((), [])
        raise SQLSchemaError(f"unsupported statement {type(statement).__name__}")

    def explain(self, sql: str) -> str:
        """Return the physical plan for a SELECT as indented text."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStmt):
            raise SQLSchemaError("EXPLAIN supports only SELECT")
        prepared = Planner(self.tables, self.counters).plan(statement)
        return prepared.root.explain()

    # -- statement runners ---------------------------------------------------------

    def _run_select(self, stmt: ast.SelectStmt, evaluator: Evaluator) -> ResultSet:
        prepared: PreparedSelect = Planner(self.tables, self.counters).plan(stmt)
        rows: list[tuple] = []
        for row in prepared.root.rows(evaluator):
            rows.append(
                tuple(evaluator.evaluate(expr, row) for expr in prepared.output_exprs)
            )
        if prepared.distinct:
            rows = _distinct(rows)
        return ResultSet(prepared.column_names, rows)

    def _run_insert(self, stmt: ast.InsertStmt, evaluator: Evaluator) -> ResultSet:
        table = self.table(stmt.table)
        empty = Row({})
        for row_exprs in stmt.rows:
            values = [evaluator.evaluate(expr, empty) for expr in row_exprs]
            if stmt.columns:
                if len(values) != len(stmt.columns):
                    raise SQLSchemaError(
                        f"INSERT column/value count mismatch for {stmt.table!r}"
                    )
                table.insert_named(dict(zip(stmt.columns, values)))
            else:
                table.insert(values)
        return ResultSet((), [])

    def _run_update(self, stmt: ast.UpdateStmt, evaluator: Evaluator) -> ResultSet:
        table = self.table(stmt.table)
        names = table.schema.column_names
        targets: list[int] = []
        for rowid, values in table.scan():
            row = Row({stmt.table: dict(zip(names, values))})
            if stmt.where is None or evaluator.truth(stmt.where, row):
                targets.append(rowid)
        for rowid in targets:
            values = table.get(rowid)
            assert values is not None
            row = Row({stmt.table: dict(zip(names, values))})
            changes = {
                column: evaluator.evaluate(expr, row)
                for column, expr in stmt.assignments
            }
            table.update(rowid, changes)
        return ResultSet((), [])

    def _run_delete(self, stmt: ast.DeleteStmt, evaluator: Evaluator) -> ResultSet:
        table = self.table(stmt.table)
        names = table.schema.column_names
        targets = []
        for rowid, values in table.scan():
            row = Row({stmt.table: dict(zip(names, values))})
            if stmt.where is None or evaluator.truth(stmt.where, row):
                targets.append(rowid)
        for rowid in targets:
            table.delete(rowid)
        return ResultSet((), [])

    def _run_create_table(self, stmt: ast.CreateTableStmt) -> ResultSet:
        columns = tuple(
            Column(
                definition.name,
                SQLType.from_name(definition.type_name),
                nullable=definition.nullable,
                primary_key=definition.primary_key,
            )
            for definition in stmt.columns
        )
        self.create_table(TableSchema(stmt.table, columns))
        return ResultSet((), [])

    # -- bulk loading -----------------------------------------------------------

    def insert_rows(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Fast-path bulk insert bypassing the parser; returns count."""
        table = self.table(table_name)
        count = 0
        for row in rows:
            table.insert(row)
            count += 1
        return count


def _distinct(rows: list[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    unique: list[tuple] = []
    for row in rows:
        key = tuple(sort_key(value) for value in row)
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique

"""The management console: one structured view of the whole deployment.

Section 4's closing requirement: "configuration and management tools
that make it possible for administrators to set up, monitor, and
understand, the system."  The console reports — as data and as text —
the sources (type, capabilities, health, traffic), the mediated names,
the materialization store, replication jobs and engine counters.
"""

from __future__ import annotations

from typing import Any

from repro.admin.monitor import (
    CacheMonitor,
    FreshnessMonitor,
    HealthMonitor,
    OverloadMonitor,
    SloMonitor,
    TraceMonitor,
)
from repro.admin.replication import DataAdministrator
from repro.core.engine import NimbleEngine
from repro.mediator.catalog import DocumentTarget
from repro.mediator.mapping import RelationMapping
from repro.mediator.schema import ViewDef
from repro.observability.provenance import render_origin_counts


class ManagementConsole:
    """Read-only administrative view over an engine and its periphery."""

    def __init__(
        self,
        engine: NimbleEngine,
        monitor: HealthMonitor | None = None,
        administrator: DataAdministrator | None = None,
        cache_monitor: CacheMonitor | None = None,
        trace_monitor: TraceMonitor | None = None,
        slo_monitor: SloMonitor | None = None,
        overload_monitor: OverloadMonitor | None = None,
        freshness_monitor: FreshnessMonitor | None = None,
    ):
        self.engine = engine
        self.monitor = monitor
        self.administrator = administrator
        self.cache_monitor = cache_monitor
        self.trace_monitor = trace_monitor
        self.slo_monitor = slo_monitor
        self.overload_monitor = overload_monitor
        self.freshness_monitor = freshness_monitor

    # -- structured report ---------------------------------------------------

    def system_report(self) -> dict[str, Any]:
        catalog = self.engine.catalog
        registry = catalog.registry
        sources = []
        for source in registry:
            profile = source.capabilities
            entry: dict[str, Any] = {
                "name": source.name,
                "type": type(getattr(source, "inner", source)).__name__,
                "available": source.available(),
                "capabilities": {
                    "selections": profile.selections,
                    "joins": profile.joins,
                    "parameterized": profile.parameterized,
                },
                "network": {
                    "latency_ms": source.network.latency_ms,
                    "calls": source.network.calls,
                    "rows_transferred": source.network.rows_transferred,
                },
                "relations": {
                    name: source.cardinality(name)
                    for name in source.relations()
                },
            }
            if self.monitor is not None:
                health = self.monitor.health.get(source.name)
                if health is not None:
                    entry["uptime_fraction"] = health.uptime_fraction
            sources.append(entry)

        mediated = []
        for name in catalog.known_names():
            resolved = catalog.resolve(name)
            if isinstance(resolved, ViewDef):
                kind = "view"
                target = ", ".join(resolved.referenced_names())
            elif isinstance(resolved, RelationMapping):
                kind = "mapping"
                target = f"{resolved.source_name}.{resolved.source_relation}"
            else:
                assert isinstance(resolved, DocumentTarget)
                kind = "document"
                target = f"{resolved.source_name}.{resolved.relation}"
            mediated.append({"name": name, "kind": kind, "target": target})

        report: dict[str, Any] = {
            "clock_ms": self.engine.clock.now,
            "engine": {
                "name": self.engine.name,
                "queries_run": self.engine.queries_run,
                "default_policy": self.engine.default_policy.value,
                "pushdown": self.engine.pushdown,
            },
            "sources": sources,
            "mediated_names": mediated,
        }
        if self.engine.materializer is not None:
            manager = self.engine.materializer
            report["materialization"] = {
                **manager.summary(),
                "views_detail": [
                    {
                        "source": view.fragment.source,
                        "rows": view.row_count,
                        "fresh": view.is_fresh(self.engine.clock.now),
                        "hits": view.hits,
                        "policy": view.policy.kind,
                    }
                    for view in manager.store
                ],
            }
        if self.administrator is not None:
            report["replication"] = [
                {
                    "name": job.name,
                    "source": job.source.name,
                    "target": job.target_table,
                    "period_ms": job.period_ms,
                    "runs": job.runs,
                    "rows": job.rows_replicated,
                    "failures": job.failures,
                }
                for job in self.administrator.jobs.values()
            ]
        if self.cache_monitor is not None:
            report["caching"] = self.cache_monitor.snapshot()
        if self.trace_monitor is not None:
            report["observability"] = self.trace_monitor.snapshot()
        if self.slo_monitor is not None:
            report["slo"] = self.slo_monitor.snapshot()
        if self.overload_monitor is not None:
            report["overload"] = self.overload_monitor.snapshot()
        if self.freshness_monitor is not None:
            report["freshness"] = self.freshness_monitor.snapshot()
        return report

    # -- text rendering ---------------------------------------------------------

    def render(self) -> str:
        """The report as indented text for a terminal."""
        report = self.system_report()
        lines = [
            f"=== {report['engine']['name']} @ {report['clock_ms']:.0f} ms ===",
            f"queries run: {report['engine']['queries_run']}, "
            f"policy: {report['engine']['default_policy']}, "
            f"pushdown: {report['engine']['pushdown']}",
            "",
            "sources:",
        ]
        for source in report["sources"]:
            status = "UP" if source["available"] else "DOWN"
            uptime = (
                f", uptime {source['uptime_fraction']:.0%}"
                if "uptime_fraction" in source
                else ""
            )
            lines.append(
                f"  [{status:4}] {source['name']} ({source['type']}) "
                f"calls={source['network']['calls']} "
                f"rows={source['network']['rows_transferred']}{uptime}"
            )
            for relation, cardinality in source["relations"].items():
                lines.append(f"          {relation}: ~{cardinality} rows")
        lines.append("")
        lines.append("mediated names:")
        for item in report["mediated_names"]:
            lines.append(f"  {item['name']} [{item['kind']}] -> {item['target']}")
        if "materialization" in report:
            info = report["materialization"]
            lines.append("")
            lines.append(
                f"materialized views: {info['views']} "
                f"({info['rows']} rows; {info['hits']} hits / "
                f"{info['misses']} misses)"
            )
            for view in info["views_detail"]:
                freshness = "fresh" if view["fresh"] else "STALE"
                lines.append(
                    f"  {view['source']}: {view['rows']} rows, "
                    f"{view['policy']}, {freshness}, {view['hits']} hits"
                )
        if "replication" in report:
            lines.append("")
            lines.append("replication jobs:")
            for job in report["replication"]:
                lines.append(
                    f"  {job['name']}: {job['source']} -> {job['target']} "
                    f"every {job['period_ms']:.0f} ms "
                    f"({job['runs']} runs, {job['rows']} rows, "
                    f"{job['failures']} failures)"
                )
        if "caching" in report:
            info = report["caching"]
            lines.append("")
            lines.append(
                f"caching: plan cache {info['plan_cache_entries']} entries "
                f"({info['plan_cache_hits']} hits / "
                f"{info['plan_cache_misses']} misses)"
            )
            fragment = info.get("fragment_cache")
            if fragment is not None:
                lines.append(
                    f"  fragment cache: {fragment.get('entries', 0)} entries, "
                    f"fill {fragment.get('fill_fraction', 0.0):.0%}"
                )
        if "observability" in report:
            info = report["observability"]
            lines.append("")
            tracing = "on" if info["tracing_enabled"] else "off"
            lines.append(
                f"observability: tracing {tracing} "
                f"({info['traces_retained']} traces retained)"
            )
            log = info.get("query_log")
            if log is not None:
                lines.append(
                    f"  query log: {log['retained']} retained, "
                    f"{log['total_slow']} slow, "
                    f"{log['total_incomplete']} incomplete"
                )
            for record in info.get("slow", []):
                origins = render_origin_counts(record["origins"])
                lines.append(
                    f"  slow {record['query_hash']}: "
                    f"{record['elapsed_virtual_ms']:.1f} ms virtual, "
                    f"origins[{origins or '-'}]"
                )
        if "slo" in report:
            info = report["slo"]
            lines.append("")
            lines.append(
                "slo: " + ("enabled" if info["slo_enabled"] else "disabled")
            )
            for status in info["statuses"]:
                verdict = "MET" if status["met"] else "BREACHED"
                lines.append(
                    f"  [{verdict:8}] {status['policy']} "
                    f"({status['objective']}) "
                    f"compliance={status['compliance']:.3f} "
                    f"budget_left={status['budget_remaining_fraction']:.0%}"
                )
            for regression in info["regressions"]:
                lines.append(
                    f"  [REGRESSED] {regression['query_hash']} "
                    f"{regression['baseline_ms']:.1f} -> "
                    f"{regression['current_ms']:.1f} ms "
                    f"({', '.join(regression['suspected_causes'])})"
                )
            for alert in info.get("active_alerts", []):
                lines.append(
                    f"  [ALERT:{alert['severity']}] "
                    f"{alert['rule']}/{alert['key']} "
                    f"since {alert['fired_at_ms']:.0f} ms"
                )
        if "overload" in report:
            info = report["overload"]
            lines.append("")
            shedder = info.get("shedder")
            if shedder is not None:
                lines.append(
                    f"overload: brownout {shedder['level_name']} "
                    f"(budget {shedder['budget_remaining']:.0%} remaining, "
                    f"{shedder['shed_queries']} shed)"
                )
            else:
                lines.append("overload: shedder off")
            admission = info.get("admission")
            if admission is not None:
                lines.append(
                    f"  admission: {admission['in_flight']} in flight, "
                    f"queue depth {admission['queue_depth']}, "
                    f"{admission['rejected_total']} rejected, "
                    f"{admission['queue_timeouts']} queue timeouts"
                )
            hedging = info.get("hedging")
            if hedging is not None:
                state = "on" if hedging["enabled"] else "off"
                lines.append(
                    f"  hedging: {state} "
                    f"(p95 x {hedging['delay_factor']}, "
                    f"clamp [{hedging['min_delay_ms']:.0f}, "
                    f"{hedging['max_delay_ms']:.0f}] ms)"
                )
            cluster = info.get("cluster")
            if cluster is not None:
                lines.append(
                    f"  fleet: {cluster['completed']} completed, "
                    f"{cluster['rejected']} rejected, "
                    f"{cluster['rerouted']} rerouted, "
                    f"backlog {cluster['queue_wait_ms']:.0f} ms "
                    f"across {cluster['queue_depth']} instances"
                )
        if "freshness" in report:
            info = report["freshness"]
            lines.append("")
            state = "on" if info["enabled"] else "off"
            counters = info["counters"]
            lines.append(
                f"incremental maintenance: {state} "
                f"({counters['views_delta_refreshed']} delta refreshes / "
                f"{counters['views_full_rebuilt']} full rebuilds, "
                f"{counters['delta_rows_applied']} delta rows)"
            )
            for name, view in info["views"].items():
                synced = (
                    "in sync" if view["seq_lag"] == 0
                    else f"lag {view['seq_lag']} changes, "
                         f"stale {view['staleness_ms']:.0f} ms"
                )
                lines.append(f"  {name} [{view['mode']}]: {synced}")
            for source, seq in info["feeds"].items():
                lines.append(f"  feed {source}: seq {seq}")
        return "\n".join(lines)

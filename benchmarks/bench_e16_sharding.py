"""E16 — sharded scatter-gather execution.

The claims under test:

1. **Throughput scaling**: a key-range partitioned deployment answers a
   storm of scan/aggregate/top-K queries at >= 6x the virtual-time
   throughput of one engine once the shard count reaches 16 — shard
   fetches overlap on the parallel-wave scheduler, so a wave costs the
   *max* of its shard latencies instead of their sum.
2. **Shard pruning**: a query whose predicate names the shard key
   executes only the shards whose key ranges admit it; the rest are
   pruned before any fetch is issued.
3. **Partial aggregation**: grouped aggregates ship per-group states —
   not member rows — so gather bytes shrink with the group count, not
   the row count.
4. **Bit-identity**: every shard count returns byte-identical elements
   to the unsharded engine, for every query shape in the battery.

All timing is virtual (``SimClock``): the network model charges each
shard fetch latency + per-row transfer time, the scatter wave overlaps
them, and throughput is queries per virtual second.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.core import NimbleEngine, ShardRouter
from repro.mediator.catalog import Catalog
from repro.simtime import SimClock
from repro.sources import NetworkModel, SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sources.sharding import partition_registry
from repro.sql.database import Database
from repro.xmldm import serialize

N_ROWS = 4_800
SHARD_COUNTS = (1, 2, 4, 8, 16)
TARGET_SPEEDUP = 6.0
STORM = 40  # queries per configuration


def make_rows(n: int = N_ROWS) -> list[tuple[int, int, int]]:
    return [(k, (k * 13) % 24, (k * k * 7) % 1000) for k in range(n)]


def build_engine(rows, network=None, **engine_kw) -> NimbleEngine:
    db = Database()
    db.execute(
        "CREATE TABLE t (k INTEGER PRIMARY KEY, grp INTEGER, v INTEGER)"
    )
    db.insert_rows("t", rows)
    registry = SourceRegistry(SimClock())
    registry.register(RelationalSource("s", db, network=network))
    catalog = Catalog(registry)
    catalog.map_relation("items", "s", "t")
    return NimbleEngine(catalog, **engine_kw)


def build_router(rows, n_shards, network=None, **engine_kw) -> ShardRouter:
    engine = build_engine(rows, network, **engine_kw)
    deployment = partition_registry(
        engine.catalog.registry, {"s": "k"}, n_shards
    )
    return ShardRouter(engine, deployment)


NETWORK = dict(latency_ms=5.0, per_row_ms=0.05)

STORM_QUERIES = [
    'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items" '
    'CONSTRUCT <g k=$g><total>sum($v)</total><n>count($v)</n></g>',
    'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $v > 500 '
    'CONSTRUCT <r>$k</r> ORDER BY $v DESC LIMIT 10',
    'WHERE <i><k>$k</k><grp>$g</grp></i> IN "items" CONSTRUCT <d>$g</d>',
    'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $v > 990 '
    'CONSTRUCT <r k=$k>$v</r> ORDER BY $k',
]

AGGREGATE_QUERY = STORM_QUERIES[0]
PRUNABLE_QUERY = (
    'WHERE <i><k>$k</k><v>$v</v></i> IN "items", '
    f'$k >= {N_ROWS - N_ROWS // 16} CONSTRUCT <r>$k</r> ORDER BY $k'
)


# -- throughput: a query storm against growing shard counts -------------------


def storm_sweep(rows, bench_stats) -> tuple[list[list], dict[str, float]]:
    table = []
    baseline_qps = None
    speedups: dict[str, float] = {}
    reference: list[list[str]] | None = None
    for n_shards in SHARD_COUNTS:
        router = build_router(rows, n_shards, NetworkModel(**NETWORK))
        clock = router.clock
        started = clock.now
        outputs = []
        for i in range(STORM):
            result = bench_stats.absorb(
                router.query(STORM_QUERIES[i % len(STORM_QUERIES)])
            )
            if i < len(STORM_QUERIES):
                outputs.append([serialize(e) for e in result.elements])
        elapsed_ms = clock.now - started
        if reference is None:
            reference = outputs
        else:
            assert outputs == reference, f"{n_shards} shards diverged"
        qps = STORM / (elapsed_ms / 1000.0)
        if baseline_qps is None:
            baseline_qps = qps
        speedup = qps / baseline_qps
        speedups[str(n_shards)] = round(speedup, 2)
        table.append([
            n_shards, STORM, round(elapsed_ms, 1), round(qps, 1),
            round(speedup, 2),
        ])
    return table, speedups


# -- pruning: predicate on the shard key touches matching shards only ---------


def pruning_rows(rows, bench_stats) -> list[list]:
    table = []
    for n_shards in (4, 16):
        router = build_router(rows, n_shards, NetworkModel(**NETWORK))
        result = bench_stats.absorb(router.query(PRUNABLE_QUERY))
        counters = result.stats.shard_counters()
        expected = rendered(build_engine(rows).query(PRUNABLE_QUERY))
        assert rendered(result) == expected, "pruned result diverged"
        assert counters["shards_executed"] == 1, counters
        assert counters["shards_pruned"] == n_shards - 1, counters
        table.append([
            n_shards,
            counters["shards_executed"],
            counters["shards_pruned"],
            round(result.stats.elapsed_virtual_ms, 1),
        ])
    return table


def rendered(result) -> list[str]:
    return [serialize(e) for e in result.elements]


# -- gather bytes: partial aggregates vs shipping rows ------------------------


def gather_bytes_rows(rows, bench_stats) -> list[list]:
    """Grouped aggregate at 8 shards: states on the wire vs whole rows.

    The row-shipping figure comes from the same scatter with the merge
    forced to ``row_union`` via a distinct-free, aggregate-free probe of
    identical row width — the ordered scan moves every binding row.
    """
    aggregate = build_router(rows, 8, NetworkModel(**NETWORK))
    agg_result = bench_stats.absorb(aggregate.query(AGGREGATE_QUERY))

    scan_query = (
        'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items" '
        'CONSTRUCT <r k=$k><g>$g</g><v>$v</v></r> ORDER BY $k'
    )
    scan = build_router(rows, 8, NetworkModel(**NETWORK))
    scan_result = bench_stats.absorb(scan.query(scan_query))

    agg_gather = agg_result.stats.gather_rows
    table = [
        ["partial aggregates", agg_gather,
         agg_result.stats.bytes_transferred],
        ["row shipping (scan)", scan_result.stats.gather_rows,
         scan_result.stats.bytes_transferred],
    ]
    assert agg_gather < scan_result.stats.gather_rows
    return table


# -- bit identity across shard counts -----------------------------------------


def bit_identity_battery(rows, bench_stats) -> int:
    battery = STORM_QUERIES + [PRUNABLE_QUERY]
    checked = 0
    for query in battery:
        expected = rendered(
            bench_stats.absorb(build_engine(rows).query(query))
        )
        for n_shards in (2, 8):
            router = build_router(rows, n_shards)
            got = rendered(bench_stats.absorb(router.query(query)))
            assert got == expected, (query, n_shards)
            checked += 1
    return checked


def report():
    from common import BenchStats, print_table, write_bench_json

    bench_stats = BenchStats()
    bench_stats.reset()
    rows = make_rows()

    storm_table, speedups = storm_sweep(rows, bench_stats)
    print_table(
        f"E16: storm throughput vs shard count ({N_ROWS:,} rows, "
        f"{STORM} queries)",
        ["shards", "queries", "virtual ms", "queries/sec", "speedup"],
        storm_table,
    )
    prune_table = pruning_rows(rows, bench_stats)
    print_table(
        "E16: shard pruning on a key-range predicate",
        ["shards", "executed", "pruned", "virtual ms"],
        prune_table,
    )
    bytes_table = gather_bytes_rows(rows, bench_stats)
    print_table(
        "E16: gather size, partial aggregates vs row shipping (8 shards)",
        ["merge", "gather rows", "bytes moved"],
        bytes_table,
    )
    cells = bit_identity_battery(rows, bench_stats)
    print(f"\nbit-identity battery: {cells} query x shard-count cells verified")

    at_16 = speedups.get("16", 0.0)
    assert at_16 >= TARGET_SPEEDUP, (
        f"sharded speedup {at_16}x at 16 shards is below the "
        f"{TARGET_SPEEDUP}x target"
    )
    write_bench_json(
        "e16_sharding",
        ["shards", "queries", "virtual ms", "queries/sec", "speedup"],
        storm_table,
        headline={
            "speedup_at_16": at_16,
            "best_speedup": max(speedups.values()),
            "bit_identity_cells": cells,
            "gather_rows_aggregate": bytes_table[0][1],
            "gather_rows_shipping": bytes_table[1][1],
        },
        extra_tables={
            "pruning": (
                ["shards", "executed", "pruned", "virtual ms"],
                prune_table,
            ),
            "gather_bytes": (
                ["merge", "gather rows", "bytes moved"],
                bytes_table,
            ),
        },
        stats=bench_stats,
    )
    return storm_table


def test_e16_scatter_gather(benchmark):
    rows = make_rows(600)
    router = build_router(rows, 4)

    def scatter():
        return len(router.query(AGGREGATE_QUERY).elements)

    assert benchmark(scatter) == 24


def test_e16_pruned_scan(benchmark):
    rows = make_rows(600)
    router = build_router(rows, 4)
    query = ('WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k >= 450 '
             'CONSTRUCT <r>$k</r>')

    def pruned():
        return len(router.query(query).elements)

    assert benchmark(pruned) == 150


if __name__ == "__main__":
    report()

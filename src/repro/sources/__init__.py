"""Source wrappers: uniform access to heterogeneous data sources.

The paper's engine provides "robust and reasonably efficient access to a
wide variety of data source systems" (section 4).  Every wrapper here

* exports a set of named relations/collections with record types;
* advertises a :class:`CapabilityProfile` describing which query
  fragments it can evaluate natively (selections? joins? parameterized
  access?), which the optimizer uses to decide what to push;
* executes :class:`Fragment` objects, charging a simulated network model
  (per-call latency + per-row transfer) against the shared
  :class:`~repro.simtime.SimClock`;
* can be offline — the availability machinery behind the paper's
  partial-results design (section 3.4) lives in
  :class:`~repro.sources.flaky.FlakySource`.
"""

from repro.sources.base import (
    Access,
    CapabilityProfile,
    DataSource,
    Fragment,
    NetworkModel,
)
from repro.sources.hierarchical import DirectoryEntry, HierarchicalSource
from repro.sources.flaky import AvailabilityModel, FlakySource
from repro.sources.registry import SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sources.webservice import WebServiceSource
from repro.sources.xmlfile import XMLSource

from repro.sources.sharding import (
    KeyRange,
    ShardMap,
    ShardedDeployment,
    make_ranges,
    partition_registry,
)

__all__ = [
    "Access",
    "AvailabilityModel",
    "CapabilityProfile",
    "DataSource",
    "DirectoryEntry",
    "FlakySource",
    "Fragment",
    "HierarchicalSource",
    "KeyRange",
    "NetworkModel",
    "RelationalSource",
    "ShardMap",
    "ShardedDeployment",
    "SourceRegistry",
    "WebServiceSource",
    "XMLSource",
    "make_ranges",
    "partition_registry",
]

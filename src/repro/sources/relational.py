"""Wrapper for relational sources backed by the embedded SQL engine."""

from __future__ import annotations

from typing import Any, Iterable

from repro.sources.base import CapabilityProfile, DataSource, Fragment, NetworkModel
from repro.sources.sqlgen import generate_sql
from repro.simtime import SimClock
from repro.sql.database import Database
from repro.sql.types import SQLType
from repro.xmldm.schema import Field, RecordType
from repro.xmldm.values import NULL, Record

_SQL_TO_MODEL = {
    SQLType.INTEGER: "number",
    SQLType.REAL: "number",
    SQLType.TEXT: "string",
    SQLType.BOOLEAN: "boolean",
    SQLType.DATE: "date",
}


class RelationalSource(DataSource):
    """A remote RDB: full pushdown capabilities, SQL on the wire.

    The wrapper compiles each fragment to SQL with
    :func:`repro.sources.sqlgen.generate_sql`, runs it on the embedded
    engine, and returns records keyed by the fragment's variables.  The
    last statement sent is kept on ``last_sql`` so tests and benchmarks
    can assert what was pushed.
    """

    capabilities = CapabilityProfile(
        selections=True,
        projections=True,
        joins=True,
        aggregates=True,
        parameterized=True,
    )

    def __init__(
        self,
        name: str,
        database: Database,
        clock: SimClock | None = None,
        network: NetworkModel | None = None,
    ):
        super().__init__(name, clock, network)
        self.database = database
        self.last_sql: str | None = None

    def relations(self) -> dict[str, RecordType]:
        exported: dict[str, RecordType] = {}
        for table_name in self.database.table_names():
            schema = self.database.table(table_name).schema
            exported[table_name] = RecordType(
                table_name,
                tuple(
                    Field(column.name, _SQL_TO_MODEL[column.type], column.nullable)
                    for column in schema.columns
                ),
            )
        return exported

    def cardinality(self, relation: str) -> int:
        return self.database.row_count(relation)

    def _fetch_all(self, relation: str):
        result = self.database.execute(f"SELECT * FROM {relation}")
        for row in result.rows:
            yield Record(
                {
                    name: (NULL if value is None else value)
                    for name, value in zip(result.columns, row)
                }
            )

    def _execute(self, fragment: Fragment, params: dict[str, Any]) -> Iterable[Record]:
        generated = generate_sql(fragment)
        self.last_sql = generated.text
        result = self.database.execute(generated.text, generated.bind(params))
        for row in result.rows:
            yield Record(
                {
                    name: (NULL if value is None else value)
                    for name, value in zip(result.columns, row)
                }
            )

"""Direct GAV mappings: mediated relation -> source relation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.pattern import AttributePattern, TreePattern
from repro.errors import MediationError
from repro.query import ast as qast


@dataclass(frozen=True)
class RelationMapping:
    """Binds a mediated relation name to one relation of one source.

    ``field_map`` renames mediated field names to source field names
    (identity for unlisted fields), absorbing per-source schema
    variation — the mundane half of semantic heterogeneity.
    """

    mediated_name: str
    source_name: str
    source_relation: str
    field_map: dict[str, str] = field(default_factory=dict)

    def source_field(self, mediated_field: str) -> str:
        return self.field_map.get(mediated_field, mediated_field)

    def rewrite_pattern(self, pattern: qast.PatternElement) -> TreePattern:
        """Rewrite a query pattern into source-field terms.

        The pattern's root tag is ignored (the access names the
        relation); its children name mediated fields, renamed here.
        Nested children are rejected for mapped relations — mapped
        sources export flat records.
        """
        children: list[TreePattern] = []
        for child in pattern.children:
            if child.children:
                raise MediationError(
                    f"mapped relation {self.mediated_name!r} has flat fields; "
                    f"nested pattern under <{child.tag}> is not answerable"
                )
            children.append(
                TreePattern(
                    tag=self.source_field(child.tag),
                    text_var=child.text_var,
                    text_literal=child.text_literal,
                )
            )
        attributes = tuple(
            AttributePattern(self.source_field(a.name), var=a.var, literal=a.literal)
            for a in pattern.attributes
        )
        return TreePattern(
            tag=self.source_relation,
            attributes=attributes,
            children=tuple(children),
            text_var=pattern.text_var,
            text_literal=pattern.text_literal,
            element_var=pattern.element_var,
        )

"""E7 — one physical algebra for relational and XML shapes.

Paper claims (sections 3.1 and 4): the data model and algebra were
designed so that "the algebra supported the operations on standard data
models efficiently, and supported operations that combine data from
multiple models efficiently as well"; required XML features include
document order, navigation, and recursion.

These are genuine wall-clock microbenchmarks (pytest-benchmark measures
them): the same operator set over Records (relational shape) and over
element trees (XML shape), plus the XML-specific operators.

Expected shape: record-shaped and element-shaped joins are within a
small constant factor of each other (one engine, no model tax), and the
XML-specific operators (navigation, recursion, grouped construction)
run in linear-ish time.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.algebra import (
    AttributePattern,
    BindingTuple,
    BindingsSource,
    CollectionScan,
    Construct,
    ConstructTemplate,
    FixPoint,
    GroupBy,
    HashJoin,
    Navigate,
    PatternMatch,
    Select,
    Sort,
    TemplateVar,
    TreePattern,
)
from repro.algebra.grouping import AggregateSpec
from repro.xmldm import Document, Element, Record

N = 4_000


def make_records():
    left = [Record({"k": i, "name": f"name{i}"}) for i in range(N)]
    right = [Record({"k": i, "city": f"city{i % 50}"}) for i in range(0, N, 2)]
    return left, right


def make_document(n: int = N) -> Document:
    root = Element("feed")
    for i in range(n):
        item = Element("item", {"k": str(i)})
        item.append(Element("name", children=[f"name{i}"]))
        item.append(Element("city", children=[f"city{i % 50}"]))
        root.append(item)
    return Document(root)


def record_join() -> int:
    left, right = make_records()
    left_scan = PatternMatch(
        CollectionScan("row", left),
        "row",
        TreePattern("r", children=(TreePattern("k", text_var="k"),
                                   TreePattern("name", text_var="n"))),
    )
    right_scan = PatternMatch(
        CollectionScan("row2", right),
        "row2",
        TreePattern("r", children=(TreePattern("k", text_var="k"),
                                   TreePattern("city", text_var="c"))),
    )
    return sum(1 for _ in HashJoin(left_scan, right_scan, ("k",)))


_DOC = make_document()


def element_match_and_join() -> int:
    pattern = TreePattern(
        "item",
        attributes=(AttributePattern("k", var="k"),),
        children=(TreePattern("name", text_var="n"),),
    )
    left = PatternMatch(CollectionScan("d", [_DOC]), "d", pattern)
    right_pattern = TreePattern(
        "item",
        attributes=(AttributePattern("k", var="k"),),
        children=(TreePattern("city", text_var="c"),),
    )
    right = PatternMatch(CollectionScan("d2", [_DOC]), "d2", right_pattern)
    return sum(1 for _ in HashJoin(left, right, ("k",)))


def navigation() -> int:
    op = Navigate(CollectionScan("d", [_DOC.root]), "d", "//item/name", "n")
    return sum(1 for _ in op)


def recursion_chain() -> int:
    seed = BindingsSource([BindingTuple({"a": 0, "b": 1})])

    def step(delta):
        out = []
        for row in delta:
            nxt = row["b"] + 1
            if nxt <= 2_000:
                out.append(BindingTuple({"a": row["a"], "b": nxt}))
        return out

    return sum(1 for _ in FixPoint(seed, step))


def grouped_construct() -> int:
    rows = [
        BindingTuple({"city": f"city{i % 50}", "name": f"name{i}"})
        for i in range(N)
    ]
    template = ConstructTemplate(
        "city",
        attributes=(("name", TemplateVar("city")),),
        children=(ConstructTemplate("p", children=(TemplateVar("name"),)),),
    )
    return sum(1 for _ in Construct(BindingsSource(rows), template, "out"))


def group_and_sort() -> int:
    rows = [BindingTuple({"g": i % 97, "v": float(i)}) for i in range(N)]
    grouped = GroupBy(
        BindingsSource(rows), ["g"],
        [AggregateSpec("total", "sum", lambda r: r["v"])],
    )
    ordered = Sort(grouped, [(lambda r: r["total"], True)])
    return sum(1 for _ in ordered)


def test_e7_record_join(benchmark):
    assert benchmark(record_join) == N // 2


def test_e7_element_join(benchmark):
    assert benchmark(element_match_and_join) == N


def test_e7_navigation(benchmark):
    assert benchmark(navigation) == N


def test_e7_recursion(benchmark):
    assert benchmark(recursion_chain) == 2_000


def test_e7_grouped_construct(benchmark):
    assert benchmark(grouped_construct) == 50


def test_e7_group_and_sort(benchmark):
    assert benchmark(group_and_sort) == 97


def report():
    import time

    from common import BenchStats, print_table, write_bench_json

    rows = []
    for label, fn in (
        ("hash join, records (4k x 2k)", record_join),
        ("hash join, element trees (4k x 4k)", element_match_and_join),
        ("navigation //item/name (4k)", navigation),
        ("fixpoint chain (2k rounds)", recursion_chain),
        ("grouped construct (4k rows -> 50 groups)", grouped_construct),
        ("group+sort (4k rows, 97 groups)", group_and_sort),
    ):
        started = time.perf_counter()
        result = fn()
        elapsed = (time.perf_counter() - started) * 1000
        rows.append([label, result, round(elapsed, 1)])
    print_table(
        "E7: algebra microbenchmarks (wall clock)",
        ["operation", "output rows", "wall ms"],
        rows,
    )
    write_bench_json(
        "e7_algebra",
        ["operation", "output rows", "wall ms"],
        rows,
        headline={"total_wall_ms": round(sum(row[2] for row in rows), 1)},
        # the algebra microbenchmarks run no engine queries; the all-zero
        # counter union keeps the BENCH_*.json schema uniform
        stats=BenchStats(),
    )
    return rows


if __name__ == "__main__":
    report()

"""Ablations — isolating the design choices DESIGN.md §4 calls out.

Each ablation switches off exactly one mechanism and measures the
difference on a fixed workload:

* **A1 fragment merging** — joining two same-source clauses *at the
  source* vs shipping both relations and joining at the engine (the
  decomposer's ``pushdown`` flag also disables merging, so the deltas
  here bound what E5 attributes to merging specifically);
* **A2 view memoization** — a query referencing the same mediated view
  twice, with and without the per-execution view cache;
* **A3 SNM window** — the sorted-neighborhood window size against
  candidate pairs and recall (the knob behind E3's fixed window=9);
* **A4 construct grouping** — grouped element building vs per-binding
  construction on a skewed input (what the implicit-Skolem grouping
  rule costs and saves).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, print_table, write_bench_json

from repro import (
    Catalog,
    NetworkModel,
    NimbleEngine,
    RelationalSource,
    SimClock,
    SourceRegistry,
)
from repro.algebra import (
    BindingTuple,
    BindingsSource,
    Construct,
    ConstructTemplate,
    TemplateVar,
)
from repro.cleaning import (
    CleaningFlow,
    FieldRule,
    FlowMode,
    LinkStep,
    MatchStep,
    RecordMatcher,
    jaro_winkler,
)
from repro.cleaning.normalize import NormalizerRegistry
from repro.mediator.schema import MediatedSchema
from repro.workloads import make_customer_universe
from repro.xmldm.values import Record


def build_engine(pushdown: bool = True):
    universe = make_customer_universe(300, seed=6)
    clock = SimClock()
    registry = SourceRegistry(clock)
    for name, db in universe.as_databases().items():
        registry.register(
            RelationalSource(name, db,
                             network=NetworkModel(latency_ms=50, per_row_ms=0.5))
        )
    catalog = Catalog(registry)
    catalog.map_relation("customers", "crm", "customers")
    catalog.map_relation("accounts", "billing", "accounts")
    return NimbleEngine(catalog, pushdown=pushdown), clock


# -- A1: fragment merging -----------------------------------------------------

A1_QUERY = (
    'WHERE <c><id>$i</id><first_name>$f</first_name></c> IN "customers", '
    '<c2><id>$i</id><tier>$t</tier></c2> IN "customers", $t = 1 '
    "CONSTRUCT <r>$f</r>"
)


BENCH_STATS = BenchStats()


def ablation_merging() -> list[list]:
    rows = []
    for label, pushdown in (("merged (one fragment)", True),
                            ("split (engine-side join)", False)):
        engine, clock = build_engine(pushdown)
        before = clock.now
        result = BENCH_STATS.absorb(engine.query(A1_QUERY))
        rows.append([
            label,
            result.stats.fragments_executed,
            result.stats.rows_transferred,
            clock.now - before,
            len(result.elements),
        ])
    return rows


# -- A2: view memoization ------------------------------------------------------

A2_QUERY = (
    'WHERE <x>$a</x> IN "names", <x>$b</x> IN "names" '
    "CONSTRUCT <pair><a>$a</a><b>$b</b></pair>"
)


def ablation_view_memo() -> list[list]:
    rows = []
    for label, memoize in (("memoized", True), ("re-executed", False)):
        engine, clock = build_engine()
        schema = MediatedSchema("m")
        schema.define_view(
            "names",
            'WHERE <c><first_name>$n</first_name></c> IN "customers" '
            "CONSTRUCT <x>$n</x>",
        )
        engine.catalog.add_schema(schema)
        if not memoize:
            # disable the per-execution view cache
            import repro.core.engine as engine_module

            original = engine_module._ExecutionContext.fetch_view

            def uncached(self, view):
                result = self.engine._execute(
                    view.query, self.policy, self.required_sources, parent=self
                )
                return result.elements

            engine_module._ExecutionContext.fetch_view = uncached
        try:
            before = clock.now
            result = BENCH_STATS.absorb(engine.query(A2_QUERY))
            rows.append([
                label,
                result.stats.fragments_executed,
                clock.now - before,
                len(result.elements),
            ])
        finally:
            if not memoize:
                engine_module._ExecutionContext.fetch_view = original
    return rows


# -- A3: SNM window sweep ----------------------------------------------------------

def ablation_snm_window() -> list[list]:
    universe = make_customer_universe(400, overlap=0.5, dirt=0.1, seed=13)
    registry = NormalizerRegistry()
    datasets = {}
    for source, records in universe.records.items():
        rows = []
        for record in records:
            if source == "crm":
                name = f"{record['first_name']} {record['last_name']}"
            elif source == "billing":
                name = record["name"]
            else:
                name = record["fullname"]
            rows.append(Record({"id": record["id"],
                                "name": registry.apply("name", name)}))
        datasets[source] = rows
    truth = universe.true_match_pairs()
    out = []
    for window in (3, 5, 9, 17, 33):
        matcher = RecordMatcher(
            [FieldRule("name", metric=jaro_winkler)],
            match_threshold=0.95, possible_threshold=0.85,
        )
        flow = CleaningFlow(
            "a3",
            [MatchStep(matcher, blocking="snm", key_field="name",
                       window=window), LinkStep()],
        )
        started = time.perf_counter()
        result = flow.run(datasets, FlowMode.EXTRACTION)
        elapsed = (time.perf_counter() - started) * 1000
        found = {tuple(sorted(p)) for p in result.matched_pairs}
        tp = len(found & truth)
        out.append([window, result.pairs_compared, round(elapsed),
                    tp / len(truth)])
    return out


# -- A4: construct grouping ------------------------------------------------------------

def ablation_construct() -> list[list]:
    n = 6_000
    rows = [
        BindingTuple({"city": f"city{i % 40}", "name": f"name{i}"})
        for i in range(n)
    ]
    grouped_template = ConstructTemplate(
        "city",
        attributes=(("name", TemplateVar("city")),),
        children=(ConstructTemplate("p", children=(TemplateVar("name"),)),),
    )
    flat_template = ConstructTemplate(
        "row",
        children=(
            ConstructTemplate("city", children=(TemplateVar("city"),)),
            ConstructTemplate("p", children=(TemplateVar("name"),)),
        ),
    )
    out = []
    for label, template in (("grouped (implicit Skolem)", grouped_template),
                            ("per-binding", flat_template)):
        started = time.perf_counter()
        produced = sum(
            1 for _ in Construct(BindingsSource(rows), template, "out")
        )
        elapsed = (time.perf_counter() - started) * 1000
        out.append([label, produced, round(elapsed, 1)])
    return out


# -- A5: compiled pushdown path vs wholesale front end ------------------------------

def ablation_frontends() -> list[list]:
    """XML-QL (decomposed, pushed) vs FLWOR (wholesale fetch) on one ask."""
    rows = []
    for label, run in (
        ("XML-QL (pushdown)", lambda engine: engine.query(
            'WHERE <c><id>$i</id><tier>$t</tier></c> '
            'IN "customers", $t = 1 CONSTRUCT <r>$i</r>'
        )),
        ("FLWOR (wholesale)", lambda engine: engine.flwor_query(
            'FOR $c IN "customers" WHERE $c/tier = 1 '
            "RETURN <r>{$c/id}</r>"
        )),
    ):
        engine, clock = build_engine()
        before = clock.now
        result = BENCH_STATS.absorb(run(engine))
        rows.append([
            label,
            result.stats.rows_transferred,
            clock.now - before,
            len(result.elements),
        ])
    return rows


def run_experiment():
    BENCH_STATS.reset()
    return (
        ablation_merging(),
        ablation_view_memo(),
        ablation_snm_window(),
        ablation_construct(),
        ablation_frontends(),
    )


def report():
    merging, memo, window, construct, frontends = run_experiment()
    print_table(
        "A1: same-source fragment merging",
        ["plan", "fragments", "rows transferred", "virtual ms", "results"],
        merging,
    )
    print_table(
        "A2: view memoization within one query",
        ["mode", "fragments executed", "virtual ms", "results"],
        memo,
    )
    print_table(
        "A3: sorted-neighborhood window (400-customer universe)",
        ["window", "pairs compared", "wall ms", "recall"],
        window,
    )
    print_table(
        "A4: construct grouping vs per-binding (6k rows)",
        ["mode", "elements built", "wall ms"],
        construct,
    )
    print_table(
        "A5: compiled (XML-QL pushdown) vs wholesale (FLWOR) front end",
        ["front end", "rows transferred", "virtual ms", "results"],
        frontends,
    )
    write_bench_json(
        "ablations",
        ["plan", "fragments", "rows transferred", "virtual ms", "results"],
        merging,
        headline={"merged_virtual_ms": merging[0][3]},
        extra_tables={
            "memoization": (["mode", "fragments executed", "virtual ms",
                             "results"], memo),
            "window": (["window", "pairs compared", "wall ms", "recall"],
                       window),
            "construct": (["mode", "elements built", "wall ms"], construct),
            "frontends": (["front end", "rows transferred", "virtual ms",
                           "results"], frontends),
        },
        stats=BENCH_STATS,
    )
    return merging, memo, window, construct, frontends


def test_ablations(benchmark):
    merging, memo, window, construct, frontends = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    # A1: merging halves the fragments and slashes rows moved
    assert merging[0][1] < merging[1][1]
    assert merging[0][2] < merging[1][2]
    assert merging[0][4] == merging[1][4]
    # A2: memoization halves the remote work for the double-view query
    assert memo[0][1] == memo[1][1] / 2
    assert memo[0][3] == memo[1][3]
    # A3: wider windows buy recall with more pairs (monotone at extremes)
    assert window[0][1] < window[-1][1]
    assert window[0][3] <= window[-1][3]
    # A4: both modes consume the same input; grouping emits fewer elements
    assert construct[0][1] == 40
    assert construct[1][1] == 6_000
    # A5: same answers; the compiled path moves far fewer rows
    assert frontends[0][3] == frontends[1][3]
    assert frontends[0][1] < frontends[1][1]
    report()


if __name__ == "__main__":
    report()

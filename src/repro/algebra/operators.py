"""Core tuple-at-a-time operators: select, project, compute, sort, union."""

from __future__ import annotations

from functools import cmp_to_key
from typing import Any, Callable, Iterator, Sequence

from repro.algebra.tuples import BindingTuple
from repro.xmldm.values import compare_values

Predicate = Callable[[BindingTuple], bool]
ValueFn = Callable[[BindingTuple], Any]


class Operator:
    """Base class: an iterable of binding tuples with explain support.

    ``rows_out`` counts tuples produced across all iterations; the
    engine resets counters per query to report per-operator cardinality.
    ``rows_in`` derives consumption from the children: pull-based
    iteration means a child's ``rows_out`` is exactly what this
    operator pulled, so the two never disagree.

    For EXPLAIN ANALYZE, :meth:`bind_analyze` attaches a virtual clock;
    iteration then charges the virtual time spent producing each row to
    ``virtual_ms``.  The measure is *inclusive* (a parent's time
    contains its children's — they produce inside the parent's pull);
    the renderer reports it as such.
    """

    def __init__(self, *children: "Operator"):
        self.children: tuple[Operator, ...] = children
        self.rows_out = 0
        self.virtual_ms = 0.0
        self._analyze_clock = None

    @property
    def rows_in(self) -> int:
        """Tuples pulled from the children so far."""
        return sum(child.rows_out for child in self.children)

    def __iter__(self) -> Iterator[BindingTuple]:
        clock = self._analyze_clock
        if clock is None:
            for row in self._produce():
                self.rows_out += 1
                yield row
            return
        produce = self._produce()
        while True:
            started = clock.now
            try:
                row = next(produce)
            except StopIteration:
                self.virtual_ms += clock.now - started
                return
            self.virtual_ms += clock.now - started
            self.rows_out += 1
            yield row

    def _produce(self) -> Iterator[BindingTuple]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def analyze_stats(self) -> dict[str, Any]:
        """Per-operator annotations for ``explain(analyze=True)``."""
        return {
            "rows_out": self.rows_out,
            "rows_in": self.rows_in,
            "virtual_ms": round(self.virtual_ms, 3),
        }

    def explain(self, depth: int = 0, analyze: bool = False) -> str:
        line = "  " * depth + self.describe()
        if analyze:
            annotations = ", ".join(
                f"{key}={value}" for key, value in self.analyze_stats().items()
            )
            line += f"  ({annotations})"
        lines = [line]
        for child in self.children:
            lines.append(child.explain(depth + 1, analyze))
        return "\n".join(lines)

    def bind_analyze(self, clock) -> None:
        """Attach a virtual clock for per-operator timing (recursive)."""
        self._analyze_clock = clock
        for child in self.children:
            child.bind_analyze(clock)

    def reset_counters(self) -> None:
        self.rows_out = 0
        self.virtual_ms = 0.0
        for child in self.children:
            child.reset_counters()

    def walk(self) -> Iterator["Operator"]:
        yield self
        for child in self.children:
            yield from child.walk()


class Select(Operator):
    """Keep tuples satisfying a predicate."""

    def __init__(self, child: Operator, predicate: Predicate, label: str = ""):
        super().__init__(child)
        self.predicate = predicate
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            if self.predicate(row):
                yield row

    def describe(self) -> str:
        return f"Select({self.label})" if self.label else "Select"


class Project(Operator):
    """Keep only the named variables."""

    def __init__(self, child: Operator, variables: Sequence[str]):
        super().__init__(child)
        self.variables = tuple(variables)

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            yield row.project(self.variables)

    def describe(self) -> str:
        return f"Project({', '.join('$' + v for v in self.variables)})"


class Compute(Operator):
    """Bind a new variable to a computed value."""

    def __init__(self, child: Operator, var: str, fn: ValueFn, label: str = ""):
        super().__init__(child)
        self.var = var
        self.fn = fn
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            extended = row.extend(self.var, self.fn(row))
            if extended is not None:
                yield extended

    def describe(self) -> str:
        suffix = f" = {self.label}" if self.label else ""
        return f"Compute(${self.var}{suffix})"


class Distinct(Operator):
    """Remove duplicate tuples over the named variables (default: all)."""

    def __init__(self, child: Operator, variables: Sequence[str] | None = None):
        super().__init__(child)
        self.variables = tuple(variables) if variables is not None else None

    def _produce(self) -> Iterator[BindingTuple]:
        seen: list[BindingTuple] = []
        seen_keys: set[str] = set()
        for row in self.children[0]:
            view = row if self.variables is None else row.project(self.variables)
            key = repr(sorted(view.as_dict().items()))
            if key in seen_keys:
                continue
            seen_keys.add(key)
            yield row

    def describe(self) -> str:
        if self.variables is None:
            return "Distinct"
        return f"Distinct({', '.join('$' + v for v in self.variables)})"


class Union(Operator):
    """Concatenate the outputs of several children (bag union)."""

    def __init__(self, *children: Operator):
        super().__init__(*children)

    def _produce(self) -> Iterator[BindingTuple]:
        for child in self.children:
            yield from child

    def describe(self) -> str:
        return f"Union({len(self.children)})"


class Sort(Operator):
    """Sort by key expressions using the model's total value order."""

    def __init__(
        self,
        child: Operator,
        keys: Sequence[tuple[ValueFn, bool]],
        label: str = "",
    ):
        """``keys`` is a list of (value function, descending?) pairs."""
        super().__init__(child)
        self.keys = list(keys)
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        rows = list(self.children[0])

        def compare(a: BindingTuple, b: BindingTuple) -> int:
            for fn, descending in self.keys:
                result = compare_values(fn(a), fn(b))
                if result != 0:
                    return -result if descending else result
            return 0

        rows.sort(key=cmp_to_key(compare))
        yield from rows

    def describe(self) -> str:
        return f"Sort({self.label or len(self.keys)})"


class Limit(Operator):
    """Pass through at most ``count`` tuples (after any ordering)."""

    def __init__(self, child: Operator, count: int):
        super().__init__(child)
        if count < 0:
            raise ValueError("limit must be non-negative")
        self.count = count

    def _produce(self) -> Iterator[BindingTuple]:
        produced = 0
        for row in self.children[0]:
            if produced >= self.count:
                return
            produced += 1
            yield row

    def describe(self) -> str:
        return f"Limit({self.count})"

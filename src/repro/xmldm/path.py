"""Navigation paths: an XPath-like language over the data model.

The paper's conclusion (section 4) names "navigation-style access (which
includes navigating the XML document structure up, down and sideways)" as
a required feature.  This module provides it as a small path language:

* steps separated by ``/``; a leading ``/`` starts at the tree root and
  ``//`` means descendant-or-self;
* name tests (``book``), wildcard (``*``), attribute access (``@year``,
  ``@*``), ``text()``, ``.`` and ``..``;
* explicit axes for sideways/upward motion:
  ``ancestor::``, ``parent::``, ``self::``, ``child::``, ``descendant::``,
  ``following-sibling::``, ``preceding-sibling::``;
* predicates: ``[3]`` (1-based position), ``[@id='x']``, ``[title]``,
  ``[price=10]``, ``[tag='value']``.

Results come back in document order with duplicates removed.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import PathSyntaxError
from repro.xmldm.document import Document
from repro.xmldm.nodes import Element, Node, Text

_AXES = (
    "ancestor-or-self",
    "ancestor",
    "descendant-or-self",
    "descendant",
    "following-sibling",
    "preceding-sibling",
    "parent",
    "child",
    "self",
    "attribute",
)


class _Predicate:
    """A step predicate: position, existence, or comparison."""

    def __init__(
        self,
        position: int | None = None,
        test_path: "Path | None" = None,
        value: str | float | None = None,
    ):
        self.position = position
        self.test_path = test_path
        self.value = value

    def matches(self, node: Node, position: int) -> bool:
        if self.position is not None:
            return position == self.position
        assert self.test_path is not None
        results = self.test_path.evaluate(node)
        if self.value is None:
            return bool(results)
        for result in results:
            text = result.text_content() if isinstance(result, Node) else str(result)
            if isinstance(self.value, float):
                try:
                    if float(text) == self.value:
                        return True
                except ValueError:
                    continue
            elif text == self.value:
                return True
        return False


class _Step:
    """One navigation step: axis + name test + predicates."""

    def __init__(self, axis: str, name: str, predicates: list[_Predicate]):
        self.axis = axis
        self.name = name  # tag name, '*', or attribute name
        self.predicates = predicates

    def apply(self, node: Node) -> Iterator[Any]:
        candidates = self._axis_nodes(node)
        if not self.predicates:
            yield from candidates
            return
        matched: Iterable[Any] = list(candidates)
        for predicate in self.predicates:
            matched = [
                item
                for position, item in enumerate(matched, start=1)
                if isinstance(item, Node) and predicate.matches(item, position)
            ]
        yield from matched

    def _axis_nodes(self, node: Node) -> Iterator[Any]:
        axis, name = self.axis, self.name
        if axis == "attribute":
            if isinstance(node, Element):
                if name == "*":
                    yield from node.attributes.values()
                elif name in node.attributes:
                    yield node.attributes[name]
            return
        if axis == "text":
            if isinstance(node, Element):
                for child in node.children:
                    if isinstance(child, Text):
                        yield child.value
            return
        if axis == "self":
            if self._name_matches(node):
                yield node
            return
        if axis == "parent":
            if node.parent is not None and self._name_matches(node.parent):
                yield node.parent
            return
        if axis == "ancestor":
            for ancestor in node.ancestors():
                if self._name_matches(ancestor):
                    yield ancestor
            return
        if axis == "ancestor-or-self":
            if self._name_matches(node):
                yield node
            for ancestor in node.ancestors():
                if self._name_matches(ancestor):
                    yield ancestor
            return
        if axis == "child":
            if isinstance(node, Element):
                for child in node.children:
                    if self._name_matches(child):
                        yield child
            return
        if axis == "descendant":
            if isinstance(node, Element):
                for child in node.children:
                    if self._name_matches(child):
                        yield child
                    if isinstance(child, Element):
                        yield from _descendants_matching(child, self._name_matches)
            return
        if axis == "descendant-or-self":
            if self._name_matches(node):
                yield node
            if isinstance(node, Element):
                yield from _descendants_matching(node, self._name_matches)
            return
        if axis == "following-sibling":
            for sibling in node.following_siblings():
                if self._name_matches(sibling):
                    yield sibling
            return
        if axis == "preceding-sibling":
            siblings = list(node.preceding_siblings())
            for sibling in reversed(siblings):  # document order
                if self._name_matches(sibling):
                    yield sibling
            return
        raise PathSyntaxError(f"unknown axis {axis!r}")

    def _name_matches(self, node: Node) -> bool:
        if self.name == "*":
            return isinstance(node, Element)
        return isinstance(node, Element) and node.tag == self.name

    def __repr__(self) -> str:
        return f"_Step({self.axis}::{self.name}, {len(self.predicates)} preds)"


def _descendants_matching(element: Element, matches) -> Iterator[Node]:
    for child in element.children:
        if matches(child):
            yield child
        if isinstance(child, Element):
            yield from _descendants_matching(child, matches)


class Path:
    """A compiled navigation path.

    >>> path = Path.parse("//book[@lang='en']/title")
    >>> [t.text_content() for t in path.evaluate(doc)]   # doctest: +SKIP
    """

    def __init__(self, steps: list[_Step], absolute: bool, text: str):
        self._steps = steps
        self._absolute = absolute
        self.text = text

    @classmethod
    def parse(cls, text: str) -> "Path":
        return _PathParser(text).parse()

    def evaluate(self, context: Node | Document) -> list[Any]:
        """Evaluate against ``context``; nodes return in document order."""
        if isinstance(context, Document):
            start: Node = context.root
            absolute_root = context.root
        else:
            start = context
            absolute_root = context.root() if self._absolute else context  # type: ignore[assignment]
        current: list[Any] = [absolute_root if self._absolute else start]
        steps = self._steps
        if self._absolute and steps:
            # An absolute path's first step names the root element itself
            # (we evaluate from the root element, not a document node).
            first = steps[0]
            if first.axis == "child":
                steps = [_Step("self", first.name, first.predicates)] + steps[1:]
            elif first.axis == "descendant":
                steps = [
                    _Step("descendant-or-self", first.name, first.predicates)
                ] + steps[1:]
        for step in steps:
            next_items: list[Any] = []
            seen: set[int] = set()
            for item in current:
                if not isinstance(item, Node):
                    continue  # cannot navigate below an attribute string
                for result in step.apply(item):
                    key = id(result)
                    if isinstance(result, Node):
                        if key in seen:
                            continue
                        seen.add(key)
                    next_items.append(result)
            current = next_items
        current.sort(
            key=lambda item: item.document_order
            if isinstance(item, Node) and item.document_order >= 0
            else -1
        )
        return current

    def __repr__(self) -> str:
        return f"Path({self.text!r})"


def evaluate_path(text: str, context: Node | Document) -> list[Any]:
    """Parse and evaluate ``text`` against ``context`` in one call."""
    return Path.parse(text).evaluate(context)


class _PathParser:
    def __init__(self, text: str):
        self.text = text.strip()
        self.pos = 0

    def error(self, message: str) -> PathSyntaxError:
        return PathSyntaxError(f"{message} at offset {self.pos} in {self.text!r}")

    def parse(self) -> Path:
        if not self.text:
            raise self.error("empty path")
        steps: list[_Step] = []
        absolute = False
        if self.text.startswith("//"):
            absolute = True
            self.pos = 2
            steps.append(self._parse_step(descendant=True))
        elif self.text.startswith("/"):
            absolute = True
            self.pos = 1
            if self.pos < len(self.text):
                steps.append(self._parse_step(descendant=False))
        else:
            steps.append(self._parse_step(descendant=False))
        while self.pos < len(self.text):
            if self.text.startswith("//", self.pos):
                self.pos += 2
                steps.append(self._parse_step(descendant=True))
            elif self.text.startswith("/", self.pos):
                self.pos += 1
                steps.append(self._parse_step(descendant=False))
            else:
                raise self.error("expected '/'")
        return Path(steps, absolute, self.text)

    def _parse_step(self, descendant: bool) -> _Step:
        if self.text.startswith("..", self.pos):
            self.pos += 2
            return _Step("parent", "*", [])
        if self.text.startswith(".", self.pos):
            self.pos += 1
            return _Step("self", "*", [])
        if self.text.startswith("@", self.pos):
            self.pos += 1
            name = self._read_name(allow_star=True)
            return _Step("attribute", name, [])
        if self.text.startswith("text()", self.pos):
            self.pos += len("text()")
            return _Step("text", "*", [])
        axis = "descendant" if descendant else "child"
        for candidate in _AXES:
            prefix = candidate + "::"
            if self.text.startswith(prefix, self.pos):
                axis = candidate
                self.pos += len(prefix)
                break
        name = self._read_name(allow_star=True)
        predicates = []
        while self.pos < len(self.text) and self.text[self.pos] == "[":
            predicates.append(self._parse_predicate())
        return _Step(axis, name, predicates)

    def _read_name(self, allow_star: bool) -> str:
        if allow_star and self.text.startswith("*", self.pos):
            self.pos += 1
            return "*"
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-.:"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start : self.pos]

    def _parse_predicate(self) -> _Predicate:
        assert self.text[self.pos] == "["
        end = self.text.find("]", self.pos)
        if end < 0:
            raise self.error("unterminated predicate")
        body = self.text[self.pos + 1 : end].strip()
        self.pos = end + 1
        if not body:
            raise self.error("empty predicate")
        if body.isdigit():
            return _Predicate(position=int(body))
        if "=" in body:
            left, right = body.split("=", 1)
            left, right = left.strip(), right.strip()
            value: str | float
            if right.startswith(("'", '"')) and right.endswith(right[0]) and len(right) >= 2:
                value = right[1:-1]
            else:
                try:
                    value = float(right)
                except ValueError:
                    raise self.error(f"bad predicate literal {right!r}") from None
            return _Predicate(test_path=Path.parse(left), value=value)
        return _Predicate(test_path=Path.parse(body))

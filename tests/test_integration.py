"""Integration tests: full scenarios across subsystems."""

import pytest

from repro.cleaning import (
    CleaningFlow,
    FieldRule,
    FlowMode,
    LinkStep,
    MatchStep,
    NormalizeStep,
    RecordMatcher,
    jaro_winkler,
)
from repro.cleaning.normalize import NormalizerRegistry
from repro.core import (
    EngineCluster,
    Lens,
    LensServer,
    NimbleEngine,
    PartialResultPolicy,
)
from repro.core.lens import LensParameter
from repro.materialize import MaterializationManager
from repro.mediator import Catalog, MediatedSchema
from repro.simtime import SimClock
from repro.sources import (
    AvailabilityModel,
    FlakySource,
    NetworkModel,
    RelationalSource,
    SourceRegistry,
)
from repro.workloads import make_customer_universe, make_website_workload
from repro.xmldm import serialize
from repro.xmldm.values import Record


class TestCustomer360Scenario:
    """The paper's flagship scenario end to end: merge-and-acquire data,
    integrate it behind a mediated schema, clean it, query it."""

    @pytest.fixture
    def universe(self):
        return make_customer_universe(60, overlap=0.5, dirt=0.1, seed=11)

    @pytest.fixture
    def engine(self, universe):
        clock = SimClock()
        registry = SourceRegistry(clock)
        for name, db in universe.as_databases().items():
            registry.register(
                RelationalSource(name, db, network=NetworkModel(latency_ms=30.0,
                                                                per_row_ms=0.2))
            )
        catalog = Catalog(registry)
        catalog.map_relation("crm_customers", "crm", "customers")
        catalog.map_relation("billing_accounts", "billing", "accounts")
        catalog.map_relation("support_users", "support", "tickets_users")
        return NimbleEngine(catalog)

    def test_federated_counts(self, engine, universe):
        result = engine.query(
            'WHERE <c><id>$i</id></c> IN "crm_customers" CONSTRUCT <r>$i</r>'
        )
        assert len(result.elements) == 60

    def test_selective_query_pushes_conditions(self, engine):
        result = engine.query(
            'WHERE <c><first_name>$f</first_name><tier>$t</tier></c> '
            'IN "crm_customers", $t = 1 CONSTRUCT <r>$f</r>'
        )
        # the tier condition ran at the source: far fewer rows than the
        # 60 customers came over the wire (construct dedups names, so
        # the element count is a lower bound on transferred rows)
        assert len(result.elements) <= result.stats.rows_transferred < 40

    def test_cleaning_produces_golden_records(self, universe):
        registry = NormalizerRegistry()

        def unify(source, record):
            if source == "crm":
                name = f"{record['first_name']} {record['last_name']}"
                city = record["city"]
            elif source == "billing":
                name = record["name"]
                city = record["address"].rpartition(",")[2]
            else:
                name = record["fullname"]
                city = record["city"]
            return Record({
                "id": record["id"],
                "name": registry.apply("name", name),
                "city": registry.apply("city", city),
            })

        datasets = {
            source: [unify(source, r) for r in records]
            for source, records in universe.records.items()
        }
        matcher = RecordMatcher(
            [
                FieldRule("name", metric=jaro_winkler, weight=2.0),
                FieldRule("city", metric=jaro_winkler, weight=1.0),
            ],
            match_threshold=0.95,
            possible_threshold=0.75,
        )
        flow = CleaningFlow(
            "c360",
            [
                NormalizeStep("name", "whitespace"),
                MatchStep(matcher, blocking="multipass", key_field="name",
                          window=9),
                LinkStep(source_priority=("crm", "billing", "support")),
            ],
        )
        result = flow.run(datasets, FlowMode.EXTRACTION)
        truth = universe.true_match_pairs()
        found = {tuple(sorted(pair)) for pair in result.matched_pairs}
        true_positives = len(found & truth)
        precision = true_positives / max(len(found), 1)
        recall = true_positives / len(truth)
        assert precision > 0.95
        assert recall > 0.75

    def test_lens_over_integrated_view(self, engine):
        catalog = engine.catalog
        schema = MediatedSchema("c360")
        schema.define_view(
            "customer_summary",
            'WHERE <c><id>$i</id><first_name>$f</first_name>'
            '<city>$city</city></c> IN "crm_customers" '
            "CONSTRUCT <cust><id>$i</id><name>$f</name>"
            "<city>$city</city></cust>",
        )
        catalog.add_schema(schema)
        server = LensServer(engine)
        server.access.add_user("site", "pw", {"web"})
        server.register(
            Lens(
                name="by_city",
                queries={"q": (
                    'WHERE <cust><name>$n</name><city>$c</city></cust> '
                    'IN "customer_summary", $c = {city} '
                    "CONSTRUCT <hit>$n</hit>"
                )},
                parameters=(LensParameter("city"),),
                required_roles=frozenset({"web"}),
                default_device="web",
            )
        )
        invocation = server.login_and_invoke(
            "by_city", "q", "site", "pw", params={"city": "seattle"}
        )
        assert invocation.rendered.startswith('<div class="results">')


class TestWebsiteScenario:
    def test_product_page_view_and_reviews(self):
        workload = make_website_workload(20, seed=5)
        engine = NimbleEngine(workload.catalog)
        result = engine.query(
            'WHERE <page sku=$s><name>$n</name><price>$p</price></page> '
            'IN "product_page", $p < 100 '
            "CONSTRUCT <cheap sku=$s><name>$n</name></cheap>"
        )
        assert 0 < len(result.elements) < 20
        assert result.completeness.complete

    def test_cluster_serves_page_load(self):
        workload = make_website_workload(10, seed=5)
        engine = NimbleEngine(workload.catalog)
        cluster = EngineCluster(engine, instances=3)
        query = (
            'WHERE <page sku=$s><name>$n</name></page> IN "product_page" '
            "CONSTRUCT <row>$n</row>"
        )
        completed = cluster.run_schedule([(float(i), query) for i in range(6)])
        assert len(completed) == 6
        assert all(c.result.elements for c in completed)

    def test_materialization_accelerates_site(self):
        workload = make_website_workload(15, seed=5)
        manager = MaterializationManager(workload.clock)
        engine = NimbleEngine(workload.catalog, materializer=manager)
        query = (
            'WHERE <s><sku>$s</sku><price>$p</price></s> IN "stock" '
            "CONSTRUCT <r><s>$s</s><p>$p</p></r>"
        )
        cold = engine.query(query).stats.elapsed_virtual_ms
        engine.materialize_query_fragments(query)
        warm = engine.query(query).stats.elapsed_virtual_ms
        assert warm < cold

    def test_partial_results_on_review_outage(self):
        workload = make_website_workload(5, seed=5)
        registry = workload.registry
        reviews = registry.get("reviews")
        flaky = FlakySource(reviews, AvailabilityModel(availability=0.99))
        flaky.force_offline()
        registry._sources["reviews"] = flaky  # swap in the outage wrapper
        engine = NimbleEngine(workload.catalog)
        result = engine.query(
            'WHERE <s><sku>$s</sku><price>$p</price></s> IN "stock", '
            '<r><sku>$s</sku><rating>$rate</rating></r> IN "review_summary" '
            "CONSTRUCT <row><s>$s</s><rate>$rate</rate></row>",
            policy=PartialResultPolicy.SKIP,
        )
        assert not result.completeness.complete
        assert "reviews" in result.completeness.missing_sources

"""The integration engine: end-to-end XML-QL query service."""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Any

from repro.cache.feedback import StatisticsFeedback
from repro.cache.fragmentcache import FragmentResultCache
from repro.cache.keys import params_key, result_key
from repro.core.partial import Completeness, PartialResultPolicy
from repro.errors import (
    MediationError,
    QueryRejected,
    SourceUnavailableError,
)
from repro.algebra.tuples import BindingTuple
from repro.algebra.vector import ColumnStatsRepository
from repro.materialize.incremental import IncrementalMaterializer
from repro.materialize.manager import MaterializationManager
from repro.materialize.matching import access_key
from repro.materialize.policy import RefreshPolicy
from repro.mediator.catalog import Catalog
from repro.mediator.schema import ViewDef
from repro.observability.metrics import MetricsRegistry
from repro.observability.provenance import (
    ORIGIN_CACHE,
    ORIGIN_CONTAINMENT,
    ORIGIN_HEDGED,
    ORIGIN_LIVE,
    ORIGIN_MATERIALIZED,
    ORIGIN_REPLICA,
    ORIGIN_SHED,
    ORIGIN_SKIPPED,
    ORIGIN_STALE_CACHE,
    ORIGIN_STALE_MATERIALIZED,
    ORIGIN_VIEW,
    FragmentOrigin,
    Provenance,
    explain_provenance,
    origin_counts,
)
from repro.observability.querylog import QueryLog, query_hash
from repro.observability.slo import SloTracker
from repro.observability.tracing import NULL_TRACER, Span, Tracer, format_trace
from repro.optimizer.costs import CostModel
from repro.optimizer.decomposer import DecomposedQuery, FragmentUnit, decompose
from repro.optimizer.planner import PlanBuilder, independent_fragment_units
from repro.query import ast as qast
from repro.query.binder import bind_query
from repro.query.parser import parse_query
from repro.resilience.admission import Admission, AdmissionController, Priority
from repro.resilience.executor import ResiliencePolicy, ResilientExecutor
from repro.resilience.fallback import FallbackRegistry
from repro.resilience.overload import HedgePolicy, LoadShedder
from repro.simtime import SimClock, TaskGroup, Timeline
from repro.sources.base import DataSource, Fragment, NetworkModel
from repro.xmldm.nodes import Element
from repro.xmldm.values import Record


@dataclass
class EngineStats:
    """Per-query execution accounting."""

    elapsed_virtual_ms: float = 0.0
    elapsed_wall_ms: float = 0.0
    fragments_executed: int = 0
    fragments_from_cache: int = 0
    fragments_skipped: int = 0
    rows_transferred: int = 0
    remote_calls: int = 0
    retries: int = 0
    breaker_trips: int = 0
    stale_served: int = 0
    deadline_misses: int = 0
    plan_cache_hits: int = 0
    parallel_waves: int = 0
    batch_calls: int = 0
    fragment_cache_hits: int = 0
    fragment_cache_misses: int = 0
    fragment_cache_evictions: int = 0
    containment_hits: int = 0
    singleflight_dedups: int = 0
    estimate_feedback_updates: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    fragments_shed: int = 0
    stale_cache_served: int = 0
    bytes_transferred: int = 0
    values_transferred: int = 0
    shards_executed: int = 0
    shards_pruned: int = 0
    shards_stats_skipped: int = 0
    scatter_queries: int = 0
    coordinator_fallbacks: int = 0
    gather_rows: int = 0
    changes_applied: int = 0
    delta_rows_applied: int = 0
    views_delta_refreshed: int = 0
    views_full_rebuilt: int = 0
    cache_entries_patched: int = 0
    cache_entries_evicted: int = 0
    cache_entries_retained: int = 0
    plan_text: str = ""

    #: integer counters folded into a parent query's stats (sub-queries
    #: for views) — the single place the counter list is spelled out
    _COUNTERS = (
        "fragments_executed", "fragments_from_cache", "fragments_skipped",
        "rows_transferred", "remote_calls", "retries", "breaker_trips",
        "stale_served", "deadline_misses", "plan_cache_hits",
    )
    #: counters describing the *shape* of the schedule (waves, batches);
    #: these legitimately vary with fan-out/batch-size while the set
    #: above stays invariant, so they are kept out of ``counters()``
    _SCHEDULE_COUNTERS = ("parallel_waves", "batch_calls")
    #: fragment-result-cache accounting; reported via ``cache_counters()``
    #: and excluded from ``counters()`` because cache residency (warm vs
    #: cold, single-flight vs serial hit) legitimately shifts which of
    #: these fire while results stay identical
    _CACHE_COUNTERS = (
        "fragment_cache_hits", "fragment_cache_misses",
        "fragment_cache_evictions", "containment_hits",
        "singleflight_dedups", "estimate_feedback_updates",
    )
    #: overload-protection accounting (hedging, brownout shedding);
    #: excluded from ``counters()`` because hedging/shedding are load
    #: adaptations — when they are off (the determinism-checked
    #: configuration) every one of these is zero
    _OVERLOAD_COUNTERS = (
        "hedges_launched", "hedges_won", "fragments_shed",
        "stale_cache_served",
    )
    #: per-column transfer volume (estimated payload bytes / field
    #: values moved from sources); excluded from ``counters()`` because
    #: cache residency and projection pushdown legitimately change how
    #: much is transferred while results stay identical
    _TRANSFER_COUNTERS = ("bytes_transferred", "values_transferred")
    #: scatter-gather routing accounting (shards visited, shards pruned
    #: by range or statistics, coordinator fallbacks); excluded from
    #: ``counters()`` because shard count is a deployment choice — the
    #: determinism checks compare sharded against unsharded runs whose
    #: routing counters legitimately differ while results are identical
    _SHARD_COUNTERS = (
        "shards_executed", "shards_pruned", "shards_stats_skipped",
        "scatter_queries", "coordinator_fallbacks", "gather_rows",
    )
    #: change-data-capture accounting (deltas drained into maintained
    #: views, scoped cache invalidation outcomes); excluded from
    #: ``counters()`` because maintenance activity depends on the write
    #: schedule and cache configuration — when CDC is off (the
    #: determinism-checked configuration) every one of these is zero
    _CDC_COUNTERS = (
        "changes_applied", "delta_rows_applied", "views_delta_refreshed",
        "views_full_rebuilt", "cache_entries_patched",
        "cache_entries_evicted", "cache_entries_retained",
    )

    def absorb(self, other: "EngineStats") -> None:
        """Fold a sub-execution's counters into this one."""
        for name in (self._COUNTERS + self._SCHEDULE_COUNTERS
                     + self._CACHE_COUNTERS + self._OVERLOAD_COUNTERS
                     + self._TRANSFER_COUNTERS + self._SHARD_COUNTERS
                     + self._CDC_COUNTERS):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def counters(self) -> dict[str, int]:
        """The integer counters as a dict (determinism checks, reports)."""
        return {name: getattr(self, name) for name in self._COUNTERS}

    def cache_counters(self) -> dict[str, int]:
        """The fragment-cache counters as a dict (cache experiments)."""
        return {name: getattr(self, name) for name in self._CACHE_COUNTERS}

    def overload_counters(self) -> dict[str, int]:
        """The overload-protection counters as a dict (storm experiments)."""
        return {name: getattr(self, name) for name in self._OVERLOAD_COUNTERS}

    def transfer_counters(self) -> dict[str, int]:
        """The per-column transfer counters (projection experiments)."""
        return {name: getattr(self, name) for name in self._TRANSFER_COUNTERS}

    def shard_counters(self) -> dict[str, int]:
        """The scatter-gather routing counters (sharding experiments)."""
        return {name: getattr(self, name) for name in self._SHARD_COUNTERS}

    def cdc_counters(self) -> dict[str, int]:
        """The change-data-capture counters (incremental experiments)."""
        return {name: getattr(self, name) for name in self._CDC_COUNTERS}

    def as_dict(self) -> dict[str, int]:
        """Union of every counter group.

        Key order is the declaration order of the seven tuples — stable
        across runs, so JSON emissions diff cleanly between PRs.
        """
        return {
            name: getattr(self, name)
            for name in self._COUNTERS + self._SCHEDULE_COUNTERS
            + self._CACHE_COUNTERS + self._OVERLOAD_COUNTERS
            + self._TRANSFER_COUNTERS + self._SHARD_COUNTERS
            + self._CDC_COUNTERS
        }


@dataclass
class AnalyzedQuery:
    """What :meth:`NimbleEngine.explain_analyze` returns.

    ``plan_text`` is the annotated physical plan (actual row counts,
    inclusive virtual time, estimated-vs-actual cardinalities);
    ``result`` the executed query's :class:`QueryResult`; ``trace`` the
    execution's span tree (None only if tracing was torn down early).
    """

    plan_text: str
    result: QueryResult
    trace: Span | None

    def __str__(self) -> str:
        text = self.plan_text
        if self.trace is not None:
            text += "\n\n-- trace --\n" + format_trace(self.trace)
        return text


@dataclass
class QueryResult:
    """What a query returns: elements, completeness, accounting."""

    elements: list[Element]
    completeness: Completeness
    stats: EngineStats
    #: answer lineage (version vector, per-fragment origins); attached
    #: only when the engine runs with ``provenance=True``
    provenance: Provenance | None = None

    def __iter__(self):
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def first(self) -> Element | None:
        return self.elements[0] if self.elements else None


@dataclass
class BindingResult:
    """A shard-local execution's output: binding rows, not elements.

    The scatter-gather router consumes these — construction, ordering
    and limiting happen after the gather merge, so shards ship rows (or
    reductions of rows) rather than rendered XML.
    """

    rows: list[BindingTuple]
    completeness: Completeness
    stats: EngineStats
    #: shard-local lineage, folded into the coordinator's record by the
    #: gather; attached only under ``provenance=True``
    provenance: Provenance | None = None


class _ExecutionContext:
    """One query execution: policy, completeness, view memo, accounting."""

    def __init__(self, engine: "NimbleEngine", policy: PartialResultPolicy,
                 required_sources: frozenset[str],
                 deadline_at: float | None = None,
                 priority: Priority = Priority.NORMAL):
        self.engine = engine
        self.policy = policy
        self.required_sources = required_sources
        self.priority = Priority(priority)
        self.completeness = Completeness()
        self.stats = EngineStats()
        #: per-fragment origin annotations (the provenance layer).
        #: Always collected — appends never advance the clock and never
        #: touch the determinism-checked counters, so results stay
        #: bit-identical whether or not a Provenance record is built.
        self.origins: list[FragmentOrigin] = []
        self._view_memo: dict[str, list[Element]] = {}
        #: results fetched ahead of plan execution by the scheduler,
        #: keyed by unit identity; consumed (popped) by fetch_fragment
        self._prefetched: dict[int, list[Record]] = {}
        resilience = engine.resilience
        if deadline_at is not None:
            self.deadline_at = deadline_at
        elif resilience is not None and resilience.query_deadline_ms is not None:
            self.deadline_at = engine.clock.now + resilience.query_deadline_ms
        else:
            self.deadline_at = None

    # -- provenance ----------------------------------------------------------

    def record_origin(self, source: str, kind: str, rows: int = 0,
                      staleness_ms: float = 0.0, detail: str = "") -> None:
        """Annotate one served fragment's lineage (observational only)."""
        self.origins.append(
            FragmentOrigin(source, kind, rows, staleness_ms, detail)
        )

    # -- the resilient call path ---------------------------------------------

    def call_source(self, source: DataSource, attempt_fn) -> Any:
        """One logical source call under the engine's resilience policy."""
        if self.engine.resilient is None:
            return attempt_fn()
        return self.engine.resilient.call(
            source.name, attempt_fn, self.stats, self.deadline_at
        )

    def charge_network(self, network: NetworkModel,
                       before: tuple[int, int, int, int]) -> None:
        """Derive remote-call accounting from the network model's counters.

        ``before`` is a :meth:`NetworkModel.snapshot` taken before the
        call.  This is the one place ``remote_calls``/
        ``rows_transferred``/``bytes_transferred``/``values_transferred``
        are computed, as deltas of the source's :class:`NetworkModel` —
        so retried attempts and partially transferred (dropped) streams
        are each counted exactly once, never re-derived at the call
        sites.
        """
        calls, rows, payload_bytes, values = before
        self.stats.remote_calls += network.calls - calls
        self.stats.rows_transferred += network.rows_transferred - rows
        self.stats.bytes_transferred += network.bytes_transferred - payload_bytes
        self.stats.values_transferred += network.values_transferred - values

    def give_up(self, fragment: Fragment | None, source_name: str,
                error: SourceUnavailableError,
                params: dict[str, Any] | None = None) -> list:
        """Terminal failure: degraded read if possible, else skip/raise."""
        tracer = self.engine.tracer
        if self.policy is not PartialResultPolicy.FAIL and params is None:
            fallback = self._degraded_read(fragment)
            if fallback is not None:
                records, origin, age_ms = fallback
                self.stats.stale_served += 1
                self.completeness.record_stale(source_name)
                self.record_origin(source_name, origin, len(records), age_ms)
                tracer.event("stale_served", source=source_name,
                             rows=len(records), via=origin)
                return records
        if self.policy is PartialResultPolicy.FAIL:
            raise error
        if (
            self.policy is PartialResultPolicy.REQUIRE
            and source_name in self.required_sources
        ):
            raise error
        self.completeness.record_skip(source_name)
        self.stats.fragments_skipped += 1
        self.record_origin(source_name, ORIGIN_SKIPPED)
        tracer.event("fragment_skipped", source=source_name)
        return []

    def _degraded_read(
        self, fragment: Fragment | None
    ) -> tuple[list[Record], str, float] | None:
        """Stale materialized fragment, then an expired fragment-cache
        entry, then a registered replica, or None.  Returns the served
        records plus which rung answered and the data's virtual age —
        the inputs the provenance annotation and trace events need."""
        engine = self.engine
        if fragment is None:
            return None
        if engine.resilience is not None and not engine.resilience.allow_stale:
            return None
        if engine.materializer is not None:
            served = engine.materializer.serve(fragment, allow_stale=True)
            if served is not None:
                info = engine.materializer.last_serve
                age = (engine.clock.now - info["loaded_at"]
                       if info is not None else 0.0)
                return served, ORIGIN_STALE_MATERIALIZED, age
        if engine.fragment_cache is not None:
            hit = engine.fragment_cache.lookup_stale(
                fragment, None, engine.catalog.version
            )
            if hit is not None:
                self.stats.stale_cache_served += 1
                return hit.records, ORIGIN_STALE_CACHE, hit.age_ms
        if engine.fallbacks is not None:
            resolved = engine.fallbacks.resolve(fragment)
            if resolved is not None:
                return resolved, ORIGIN_REPLICA, 0.0
        return None

    # -- the concurrent fetch scheduler --------------------------------------

    def prefetch(self, units: list[FragmentUnit]) -> None:
        """Overlap the independent fragments' fetches over virtual time.

        The units are fetched in waves of ``max_parallel_fetches``; each
        wave is a :class:`TaskGroup` whose members run on their own
        timelines, so the shared clock advances by the slowest member
        rather than the sum — the virtual-time model of a fetch pool.
        Results land in ``_prefetched`` for the plan's FragmentScans.
        Fetches stay in plan order, so source-call sequences (and with
        them fault injection and all the stats counters) are identical
        to the serial run.
        """
        fan_out = self.engine.max_parallel_fetches
        if fan_out <= 1 or len(units) <= 1:
            return
        tracer = self.engine.tracer
        for start in range(0, len(units), fan_out):
            wave = units[start:start + fan_out]
            group = TaskGroup(self.engine.clock)
            with tracer.span("wave", name=f"wave-{start // fan_out}",
                             size=len(wave)) as wave_span:
                #: single-flight: result key -> (leader timeline, leader id);
                #: identical fragments in one wave cost one source call
                leaders: dict[str, tuple[Any, int]] = {}
                for unit in wave:
                    key = None
                    if self._cache_for(unit.source) is not None:
                        key = result_key(unit.fragment)
                    if key is not None and key in leaders:
                        leader_timeline, leader_id = leaders[key]
                        with group.task(unit.source.name):
                            # join the in-flight fetch: both timelines fork
                            # at the wave start, so the duplicate finishes
                            # exactly when its leader does
                            with tracer.span("fetch", name=unit.source.name,
                                             source=unit.source.name) as span:
                                tracer.event("singleflight_join",
                                             source=unit.source.name)
                                self.engine.clock.advance_to(
                                    leader_timeline.now
                                )
                                if span.recording:
                                    span.set(rows=len(
                                        self._prefetched[leader_id]
                                    ))
                        self._prefetched[id(unit)] = list(
                            self._prefetched[leader_id]
                        )
                        self.stats.singleflight_dedups += 1
                        continue
                    with group.task(unit.source.name) as timeline:
                        records = self.fetch_fragment(unit)
                    self._prefetched[id(unit)] = records
                    if key is not None:
                        leaders[key] = (timeline, id(unit))
                serial_ms = group.elapsed_serial
                group.join()
                if wave_span.recording:
                    # the per-task serial sum; the wave itself costs the max
                    wave_span.set(serial_ms=serial_ms,
                                  tasks=len(group.timelines))
            self.stats.parallel_waves += 1

    # -- the calls FragmentScan / view scans make ----------------------------

    def fetch_fragment(
        self, unit: FragmentUnit, params: dict[str, Any] | None = None
    ) -> list[Record]:
        """The three-tier read path: fragment cache, materialized view,
        live source.  A cache hit happens before :meth:`call_source`, so
        it can never spend a retry budget or consult a breaker."""
        if params is None and id(unit) in self._prefetched:
            return self._prefetched.pop(id(unit))
        engine = self.engine
        fragment = unit.fragment
        source = unit.source
        with engine.tracer.span(
            "fetch", name=source.name, source=source.name,
            dependent=params is not None,
        ) as span:
            if span.recording:
                span.set(fragment=fragment.describe())
            cache = self._cache_for(source)
            shedder = engine.shedder
            if (cache is not None and shedder is not None
                    and shedder.allow_stale):
                # brownout serve-stale rung: an expired exact entry beats
                # a remote call while the error budget is burning
                hit = cache.lookup_stale(fragment, params,
                                         engine.catalog.version)
                if hit is not None:
                    self.stats.stale_cache_served += 1
                    if hit.stale:
                        self.stats.stale_served += 1
                        self.completeness.record_stale(source.name)
                    self.record_origin(
                        source.name,
                        ORIGIN_STALE_CACHE if hit.stale else ORIGIN_CACHE,
                        len(hit.records), hit.age_ms,
                    )
                    if span.recording:
                        span.set(served_from="fragment_cache_stale",
                                 rows=len(hit.records))
                    return hit.records
            if cache is not None:
                hit = cache.lookup(fragment, params, engine.catalog.version)
                if hit is not None:
                    self.stats.fragment_cache_hits += 1
                    if hit.containment:
                        self.stats.containment_hits += 1
                    self.record_origin(
                        source.name,
                        ORIGIN_CONTAINMENT if hit.containment
                        else ORIGIN_CACHE,
                        len(hit.records), hit.age_ms,
                    )
                    if span.recording:
                        span.set(served_from="fragment_cache",
                                 rows=len(hit.records))
                    return hit.records
                self.stats.fragment_cache_misses += 1
            if params is None and engine.materializer is not None:
                served = engine.materializer.serve(fragment)
                if served is not None:
                    self.stats.fragments_from_cache += 1
                    info = engine.materializer.last_serve
                    self.record_origin(
                        source.name, ORIGIN_MATERIALIZED, len(served),
                        (engine.clock.now - info["loaded_at"]
                         if info is not None else 0.0),
                        detail=(str(info["key"])
                                if info is not None else ""),
                    )
                    if span.recording:
                        span.set(served_from="materialized", rows=len(served))
                    return served
            if self._should_shed(source.name):
                self._shed_fragment(source.name, span)
                return []
            if params is None:
                delay = self._hedge_delay(source, fragment)
                if math.isfinite(delay):
                    return self._hedged_fetch(unit, span, delay)
            network = source.network
            before = network.snapshot()
            started = engine.clock.now
            try:
                records = self.call_source(
                    source, lambda: source.execute(fragment, params)
                )
            except SourceUnavailableError as error:
                self.charge_network(network, before)
                return self.give_up(fragment, source.name, error, params)
            self.charge_network(network, before)
            cost = engine.clock.now - started
            self.stats.fragments_executed += 1
            self.record_origin(source.name, ORIGIN_LIVE, len(records))
            if engine.metrics is not None:
                engine.metrics.histogram(
                    f"source.{source.name}.fetch_virtual_ms"
                ).observe(cost)
            self._observe(fragment, len(records))
            if engine.materializer is not None and params is None:
                engine.materializer.record_remote(fragment, source, cost,
                                                  len(records))
            if cache is not None:
                self.stats.fragment_cache_evictions += cache.insert(
                    fragment, params, records, engine.catalog.version
                )
            if span.recording:
                span.set(served_from="remote", rows=len(records))
            return records

    # -- overload protection: shedding and hedging ---------------------------

    def _should_shed(self, source_name: str) -> bool:
        """Brownout shed-lenses rung: skip this optional source?"""
        shedder = self.engine.shedder
        return (
            shedder is not None
            and self.policy is not PartialResultPolicy.FAIL
            and source_name not in self.required_sources
            and shedder.should_shed_source(source_name, self.priority)
        )

    def _shed_fragment(self, source_name: str, span=None,
                       probes: int = 1) -> None:
        """Record one shed fetch decision (Completeness-annotated skip)."""
        self.stats.fragments_shed += probes
        self.stats.fragments_skipped += 1
        self.completeness.record_skip(source_name)
        self.record_origin(source_name, ORIGIN_SHED,
                           detail=f"{probes} probes" if probes > 1 else "")
        self.engine.tracer.event("lens_shed", source=source_name)
        if span is not None and span.recording:
            span.set(served_from="shed")

    def _hedge_delay(self, source: DataSource, fragment: Fragment) -> float:
        """The virtual delay before a backup fetch fires, or ``inf``.

        ``inf`` (don't hedge) when hedging is off, the brownout ladder
        has disabled it, the source has too little latency history, or
        no registered replica could answer the fragment.
        """
        engine = self.engine
        if engine.hedging is None or engine.fallbacks is None:
            return math.inf
        shedder = engine.shedder
        if shedder is not None and not shedder.allows_hedging:
            return math.inf
        delay = engine.hedging.delay_ms(engine.metrics, source.name)
        if not math.isfinite(delay):
            return math.inf
        if not engine.fallbacks.has_replica(fragment):
            return math.inf
        return delay

    def _hedged_fetch(self, unit: FragmentUnit, span,
                      delay_ms: float) -> list[Record]:
        """Race the primary fetch against a replica launched after
        ``delay_ms``; first result wins, the straggler is cancelled.

        The primary runs on a private timeline so the shared clock can
        settle on the *winner's* completion instant (a ``TaskGroup``
        would charge the max — the opposite of first-result-wins).
        """
        engine = self.engine
        source, fragment = unit.source, unit.fragment
        clock = engine.clock
        network = source.network
        before = network.snapshot()
        start = clock.now
        primary = Timeline(start, f"primary:{source.name}")
        primary_error: SourceUnavailableError | None = None
        records: list[Record] = []
        try:
            with clock.running(primary):
                records = self.call_source(
                    source, lambda: source.execute(fragment, None)
                )
        except SourceUnavailableError as error:
            primary_error = error
        primary_done = primary.now
        elapsed = primary_done - start
        hedge_at = start + delay_ms
        if primary_error is None and engine.metrics is not None:
            # the primary's *true* elapsed feeds the per-source
            # histogram: recording the hedged (shorter) completion would
            # shrink the adaptive delay toward min_delay in a loop
            engine.metrics.histogram(
                f"source.{source.name}.fetch_virtual_ms"
            ).observe(elapsed)
        if primary_done <= hedge_at:
            # the primary settled (either way) before the hedge fired
            clock.advance_to(primary_done)
            self.charge_network(network, before)
            if primary_error is not None:
                return self.give_up(fragment, source.name, primary_error)
            return self._finish_remote(unit, records, elapsed, span)
        self.stats.hedges_launched += 1
        engine.tracer.event("hedge_launched", source=source.name,
                            delay_ms=delay_ms)
        backup = engine.fallbacks.resolve(fragment)
        if backup is not None:
            # the replica resolves locally the moment it launches, so it
            # finishes first: cancel the straggling primary (its network
            # charges stand — the bytes were already in flight)
            self.stats.hedges_won += 1
            self.completeness.record_hedged(source.name)
            self.record_origin(source.name, ORIGIN_HEDGED, len(backup),
                               detail=f"hedge fired at +{delay_ms:.1f} ms")
            engine.tracer.event("hedge_won", source=source.name)
            clock.advance_to(hedge_at)
            self.charge_network(network, before)
            self._observe(fragment, len(backup))
            cache = self._cache_for(source)
            if cache is not None:
                self.stats.fragment_cache_evictions += cache.insert(
                    fragment, None, backup, engine.catalog.version
                )
            if span.recording:
                span.set(served_from="hedge", rows=len(backup))
            return backup
        # the registered provider had nothing after all: wait it out
        clock.advance_to(primary_done)
        self.charge_network(network, before)
        if primary_error is not None:
            return self.give_up(fragment, source.name, primary_error)
        return self._finish_remote(unit, records, elapsed, span)

    def _finish_remote(self, unit: FragmentUnit, records: list[Record],
                       cost: float, span) -> list[Record]:
        """Post-remote bookkeeping shared by the hedged fetch path."""
        engine = self.engine
        self.stats.fragments_executed += 1
        self.record_origin(unit.source.name, ORIGIN_LIVE, len(records))
        self._observe(unit.fragment, len(records))
        if engine.materializer is not None:
            engine.materializer.record_remote(unit.fragment, unit.source,
                                              cost, len(records))
        cache = self._cache_for(unit.source)
        if cache is not None:
            self.stats.fragment_cache_evictions += cache.insert(
                unit.fragment, None, records, engine.catalog.version
            )
        if span.recording:
            span.set(served_from="remote", rows=len(records))
        return records

    def fetch_fragment_batch(
        self, unit: FragmentUnit, param_sets: list[dict[str, Any]]
    ) -> list[list[Record]]:
        """One batched probe of a parameterized source (dependent join).

        Returns one record list per parameter set, aligned by position.
        ``fragments_executed`` counts *logical* probes (one per set) so
        the counter is invariant under batch size; the amortization
        shows up in ``remote_calls``, which is derived from the network
        model and therefore counts the single physical call.

        With a fragment cache, the batch shares the per-parameter
        entries the per-row path writes: cached probes are answered
        locally, identical parameter sets within the batch collapse to
        one remote probe (single-flight), and only the remainder goes
        over the network.
        """
        if not param_sets:
            return []
        with self.engine.tracer.span(
            "batch", name=unit.source.name, source=unit.source.name,
            probes=len(param_sets),
        ) as span:
            cache = self._cache_for(unit.source)
            if cache is None:
                fetched = self._remote_batch(unit, param_sets)
                return (fetched if fetched is not None
                        else [[] for _ in param_sets])
            epoch = self.engine.catalog.version
            results: list[list[Record]] = [[] for _ in param_sets]
            positions_by_key: dict[str, list[int]] = {}
            params_by_key: dict[str, dict[str, Any]] = {}
            for index, params in enumerate(param_sets):
                hit = cache.lookup(unit.fragment, params, epoch)
                if hit is not None:
                    self.stats.fragment_cache_hits += 1
                    self.record_origin(
                        unit.source.name,
                        ORIGIN_CONTAINMENT if hit.containment
                        else ORIGIN_CACHE,
                        len(hit.records), hit.age_ms,
                    )
                    results[index] = hit.records
                    continue
                self.stats.fragment_cache_misses += 1
                key = params_key(params)
                if key in positions_by_key:
                    self.stats.singleflight_dedups += 1
                    self.engine.tracer.event("singleflight_probe",
                                             source=unit.source.name)
                positions_by_key.setdefault(key, []).append(index)
                params_by_key[key] = dict(params)
            if span.recording:
                span.set(remote_probes=len(positions_by_key))
            if positions_by_key:
                unique_sets = [params_by_key[key] for key in positions_by_key]
                fetched = self._remote_batch(unit, unique_sets)
                if fetched is not None:
                    for key, records in zip(positions_by_key, fetched):
                        self.stats.fragment_cache_evictions += cache.insert(
                            unit.fragment, params_by_key[key], records, epoch
                        )
                        for position in positions_by_key[key]:
                            results[position] = list(records)
            return results

    def _remote_batch(
        self, unit: FragmentUnit, param_sets: list[dict[str, Any]]
    ) -> list[list[Record]] | None:
        """The physical batched call; None signals a skipped failure."""
        source = unit.source
        if self._should_shed(source.name):
            self._shed_fragment(source.name, probes=len(param_sets))
            return None
        network = source.network
        before = network.snapshot()
        started = self.engine.clock.now
        try:
            results = self.call_source(
                source, lambda: source.execute_batch(unit.fragment, param_sets)
            )
        except SourceUnavailableError as error:
            self.charge_network(network, before)
            self.give_up(unit.fragment, source.name, error,
                         params=param_sets[0])
            return None
        self.charge_network(network, before)
        if self.engine.metrics is not None:
            self.engine.metrics.histogram(
                f"source.{source.name}.fetch_virtual_ms"
            ).observe(self.engine.clock.now - started)
        self.stats.fragments_executed += len(param_sets)
        self.stats.batch_calls += 1
        for records in results:
            self.record_origin(unit.source.name, ORIGIN_LIVE, len(records),
                               detail="batched probe")
            self._observe(unit.fragment, len(records))
        return results

    # -- cache plumbing ------------------------------------------------------

    def _cache_for(self, source: DataSource):
        """The engine's fragment cache, if the source admits caching."""
        if self.engine.fragment_cache is None:
            return None
        if not source.capabilities.cacheable:
            return None
        return self.engine.fragment_cache

    def _observe(self, fragment: Fragment, rows: int) -> None:
        """Feed one observed cardinality back into the cost model."""
        if self.engine.feedback is None:
            return
        self.engine.feedback.observe(fragment, rows)
        self.stats.estimate_feedback_updates += 1

    def column_stats_for(self, unit: FragmentUnit):
        """The stats table batch shredding should populate, or None.

        Only unconditioned, non-parameterized fragments contribute: a
        conditioned fetch observes a filtered subset whose bounds
        under-cover the relation, which would make stats-based shard
        skipping unsound.  Keying by access shape lets any later query
        over the same accesses reuse the full-scan statistics.
        """
        repo = self.engine.column_stats
        if repo is None:
            return None
        fragment = unit.fragment
        if fragment.conditions or fragment.input_vars:
            return None
        return repo.table(access_key(fragment))

    def fetch_view(self, view: ViewDef) -> list[Element]:
        if view.name in self._view_memo:
            return self._view_memo[view.name]
        with self.engine.tracer.span("view", name=view.name) as span:
            if self.engine.materializer is not None:
                served = self.engine.materializer.serve_view(view.name)
                if served is not None:
                    self.stats.fragments_from_cache += 1
                    self._view_memo[view.name] = served
                    info = self.engine.materializer.last_serve
                    detail = ""
                    maintained = (
                        self.engine.incremental.views.get(view.name)
                        if self.engine.incremental is not None else None
                    )
                    if maintained is not None:
                        detail = "high-water " + ", ".join(
                            f"{src}@{seq}" for src, seq
                            in sorted(maintained.high_water.items())
                        )
                    self.record_origin(
                        view.name, ORIGIN_VIEW, len(served),
                        (self.engine.clock.now - info["loaded_at"]
                         if info is not None else 0.0),
                        detail=detail,
                    )
                    if span.recording:
                        span.set(served_from="materialized",
                                 rows=len(served))
                    return served
            result = self.engine._execute(view.query, self.policy,
                                          self.required_sources, parent=self)
            self._view_memo[view.name] = result.elements
            if span.recording:
                span.set(served_from="sub_query", rows=len(result.elements))
            return result.elements


class NimbleEngine:
    """The query service over a catalog of sources and mediated schemas.

    >>> engine = NimbleEngine(catalog)                      # doctest: +SKIP
    >>> result = engine.query('WHERE ... CONSTRUCT ...')    # doctest: +SKIP
    >>> result.completeness.complete                        # doctest: +SKIP

    ``default_policy`` answers the paper's open question about defaults:
    SKIP with annotation, overridable per query.

    ``max_parallel_fetches`` is the fetch-pool fan-out: up to that many
    independent remote fragments are overlapped per wave of virtual
    time (1 = the serial engine).  ``batch_size`` > 1 buffers dependent
    joins against batch-capable sources into that many probes per
    remote call.  Neither changes result sets — only the latency and
    call profile.  Compiled plans (parse → bind → decompose) are cached
    per query text up to ``plan_cache_size`` entries and invalidated
    whenever the catalog's version epoch moves.

    ``fragment_cache_bytes`` > 0 turns on the on-demand fragment result
    cache: every fetched fragment (independent, dependent probe, or
    batched probe) is kept in a byte-budgeted LRU keyed by fragment
    shape + parameters, TTL-governed (``fragment_cache_ttl_ms``
    default, ``fragment_cache_policies`` per source) and invalidated on
    the catalog epoch.  The read path becomes three-tier: fragment
    cache, then materialized view, then live source.  Containment
    serving (``fragment_cache_containment``) answers a narrower
    fragment from a broader cached one by filtering locally.  Observed
    row counts feed the cost model (``statistics_feedback``; None =
    follow the cache knob) so repeated queries plan with real
    cardinalities.  Cache hits never touch the resilience ladder: no
    retry budget is spent and no breaker is consulted.

    ``vectorized=True`` switches plan execution to the batched columnar
    path (``batch_rows`` rows per :class:`~repro.algebra.RecordBatch`);
    ``projection_pushdown=True`` prunes each fragment's transferred
    columns to the variables the rest of the query consumes.  Both are
    off by default and bit-identical to the row path — they change only
    throughput and the ``bytes_transferred``/``values_transferred``
    transfer counters.

    Observability: pass a :class:`~repro.observability.Tracer` to
    record a span tree per query (fetches, waves, batched probes, view
    sub-queries, with retry/breaker/cache events), a
    :class:`~repro.observability.MetricsRegistry` to aggregate
    counters and per-source latency histograms across queries, and a
    :class:`~repro.observability.QueryLog` to keep a bounded log of
    recent executions with a slow-query flag.  All three default to
    off; tracing off means the no-op tracer — zero virtual-time
    overhead and byte-identical results and counters.
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel | None = None,
        materializer: MaterializationManager | None = None,
        default_policy: PartialResultPolicy = PartialResultPolicy.SKIP,
        pushdown: bool = True,
        name: str = "engine",
        resilience: ResiliencePolicy | None = None,
        fallbacks: FallbackRegistry | None = None,
        max_parallel_fetches: int = 4,
        batch_size: int = 1,
        plan_cache_size: int = 64,
        fragment_cache_bytes: int = 0,
        fragment_cache_ttl_ms: float = 60_000.0,
        fragment_cache_policies: dict[str, RefreshPolicy] | None = None,
        fragment_cache_containment: bool = True,
        statistics_feedback: bool | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        query_log: QueryLog | None = None,
        slo: SloTracker | None = None,
        admission: AdmissionController | None = None,
        shedder: LoadShedder | None = None,
        hedging: HedgePolicy | None = None,
        vectorized: bool = False,
        batch_rows: int = 1024,
        projection_pushdown: bool = False,
        fragment_cache_scope: str = "",
        column_statistics: bool = False,
        incremental: bool = False,
        provenance: bool = False,
    ):
        self.catalog = catalog
        self.clock: SimClock = catalog.registry.clock
        self.metrics = metrics
        self.query_log = query_log
        self.slo = slo
        self.admission = admission
        self.shedder = shedder
        self.hedging = hedging
        self.cost_model = cost_model or CostModel()
        self.materializer = materializer
        self.default_policy = default_policy
        self.pushdown = pushdown
        self.name = name
        self.resilience = resilience
        self.resilient = (
            ResilientExecutor(self.clock, resilience)
            if resilience is not None else None
        )
        self.fallbacks = fallbacks
        if max_parallel_fetches < 1:
            raise ValueError("max_parallel_fetches must be >= 1")
        self.max_parallel_fetches = max_parallel_fetches
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        #: columnar execution knobs — off by default; the vectorized
        #: path is bit-identical to the row path, batch_rows only
        #: trades peak memory against per-batch dispatch overhead
        self.vectorized = vectorized
        self.batch_rows = batch_rows
        self.projection_pushdown = projection_pushdown
        if fragment_cache_bytes < 0:
            raise ValueError("fragment_cache_bytes must be >= 0")
        self.fragment_cache = (
            FragmentResultCache(
                self.clock,
                self.cost_model,
                max_bytes=fragment_cache_bytes,
                default_policy=RefreshPolicy.ttl(fragment_cache_ttl_ms),
                policies=fragment_cache_policies,
                containment=fragment_cache_containment,
                # expired entries stay resident so brownout serve-stale
                # and the degraded-read ladder can answer from them
                keep_expired=True,
                # shard-local engines share nothing: a scope prefix keeps
                # their keys disjoint even if a cache were ever shared
                scope=fragment_cache_scope,
            )
            if fragment_cache_bytes > 0 else None
        )
        #: per-column min/max/distinct statistics observed during batch
        #: shredding (vectorized path), keyed by fragment access shape;
        #: feeds cost-model selectivity and stats-based shard skipping
        self.column_stats = ColumnStatsRepository() if column_statistics else None
        if self.column_stats is not None:
            self.cost_model.bind_column_stats(self._column_stats_lookup)
        use_feedback = (
            statistics_feedback if statistics_feedback is not None
            else self.fragment_cache is not None
        )
        self.feedback = StatisticsFeedback() if use_feedback else None
        if self.feedback is not None:
            self.cost_model.bind_feedback(self.feedback)
        if self.fragment_cache is not None:
            self.cost_model.bind_residency(self._fragment_residency)
        self.builder = PlanBuilder(
            self.cost_model,
            batch_size=batch_size,
            materializer=materializer,
            dedup_dependent_probes=self.fragment_cache is not None,
        )
        if plan_cache_size < 0:
            raise ValueError("plan_cache_size must be >= 0")
        self.plan_cache_size = plan_cache_size
        #: query text -> (catalog epoch, compiled DecomposedQuery), LRU
        self._plan_cache: OrderedDict[str, tuple[Any, DecomposedQuery]] = (
            OrderedDict()
        )
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.queries_run = 0
        if incremental and materializer is None:
            raise ValueError(
                "incremental maintenance requires a materializer to publish "
                "maintained views through"
            )
        #: incremental view maintenance (ISSUE 9): maintained views and
        #: their per-source high-water marks live here; refresh happens
        #: inside sync_changes()
        self.incremental = (
            IncrementalMaterializer().bind(self) if incremental else None
        )
        #: CDC accounting is engine-lifetime, not per-query: maintenance
        #: runs between queries, so its counters never belong to any one
        #: query's stats
        self.cdc_stats = EngineStats()
        #: per-source cursor of the last change sequence already applied
        #: to the fragment cache and materialized store
        self._cdc_cache_seq: dict[str, int] = {}
        #: attach a Provenance record (version vector + per-fragment
        #: origins) to every top-level answer; strictly observational —
        #: results and counters are bit-identical either way
        self.provenance = provenance
        #: engine-lifetime serve counts per origin kind (feeds the
        #: freshness gauges regardless of the per-answer knob)
        self.origin_totals: dict[str, int] = {}
        self.tracer: Tracer = NULL_TRACER
        self.use_tracer(tracer or NULL_TRACER)

    @property
    def batch_size(self) -> int:
        return self.builder.batch_size

    def use_tracer(self, tracer) -> None:
        """(Re)wire a tracer through every traced component.

        The resilient executor and the fragment cache are engine-owned
        and always follow.  Sources are *shared* (a registry can back
        several engines), so an enabled tracer claims them, while a
        null tracer only releases sources this engine's previous tracer
        had claimed — never another engine's.
        """
        previous = self.tracer
        self.tracer = tracer
        if self.resilient is not None:
            self.resilient.tracer = tracer
        if self.fragment_cache is not None:
            self.fragment_cache.tracer = tracer
        for source in self.catalog.registry:
            if tracer.enabled or getattr(source, "tracer", None) is previous:
                source.tracer = tracer

    # -- public API ------------------------------------------------------------

    def query(
        self,
        text: str | qast.Query,
        policy: PartialResultPolicy | None = None,
        required_sources: set[str] | None = None,
        priority: Priority = Priority.NORMAL,
    ) -> QueryResult:
        """Run one XML-QL query and return annotated results.

        ``priority`` feeds the overload-protection gate: under brownout
        the shedder may refuse BACKGROUND/LOW work up front (raising
        :class:`~repro.errors.QueryRejected` with a virtual-time
        ``retry_after_ms``), and mid-query the brownout ladder may serve
        stale or shed optional sources for lower-priority queries.  With
        no admission controller or shedder wired, priority is inert.
        """
        effective = policy or self.default_policy
        if required_sources and effective is not PartialResultPolicy.FAIL:
            effective = PartialResultPolicy.REQUIRE
        with self._admission_scope(priority):
            result = self._execute(text, effective,
                                   frozenset(required_sources or ()),
                                   priority=priority)
        return result

    def flwor_query(
        self,
        text: str,
        policy: PartialResultPolicy | None = None,
        required_sources: set[str] | None = None,
        priority: Priority = Priority.NORMAL,
    ) -> QueryResult:
        """Run a FLWOR (XQuery-style) query over the same catalog.

        The paper planned to "adopt the standard query language
        recommended by the W3C Query Working Group"; because only a
        physical algebra was built, swapping the language is a front-end
        change.  FLWOR sources are fetched wholesale (no pushdown) —
        the unoptimized access path — with the same partial-results
        policies, including REQUIRE over ``required_sources``.
        """
        from repro.mediator.mapping import RelationMapping
        from repro.mediator.schema import ViewDef
        from repro.query.flwor import translate_flwor

        effective = policy or self.default_policy
        if required_sources and effective is not PartialResultPolicy.FAIL:
            effective = PartialResultPolicy.REQUIRE
        admission = self._admit(priority)
        self.queries_run += 1
        context = _ExecutionContext(self, effective,
                                    frozenset(required_sources or ()),
                                    priority=priority)

        def resolver(name: str):
            resolved = self.catalog.resolve(name)
            if isinstance(resolved, ViewDef):
                return context.fetch_view(resolved)
            if isinstance(resolved, RelationMapping):
                source = self.catalog.registry.get(resolved.source_name)
                relation = resolved.source_relation
            else:
                source = self.catalog.registry.get(resolved.source_name)
                relation = resolved.relation
            network = source.network
            before = network.snapshot()
            with self.tracer.span("fetch", name=source.name,
                                  source=source.name, wholesale=True) as span:
                try:
                    items = context.call_source(
                        source, lambda: source.fetch_all(relation)
                    )
                except SourceUnavailableError as error:
                    context.charge_network(network, before)
                    # wholesale fetches are not fragment-keyed, so there is
                    # no stale fallback here — skip or raise per policy
                    return context.give_up(None, source.name, error)
                context.charge_network(network, before)
                context.stats.fragments_executed += 1
                context.record_origin(source.name, ORIGIN_LIVE, len(items),
                                      detail="wholesale")
                if span.recording:
                    span.set(rows=len(items))
                return items

        try:
            with self.tracer.span("query", policy=effective.name,
                                  dialect="flwor") as root:
                if root.recording:
                    root.set(query_hash=query_hash(text))
                with self.tracer.span("parse"):
                    plan = translate_flwor(text, resolver)
                started_virtual = self.clock.now
                started_wall = time.perf_counter()
                with self.tracer.span("execute"):
                    elements = plan.results()
                context.stats.elapsed_virtual_ms = (
                    self.clock.now - started_virtual
                )
                context.stats.elapsed_wall_ms = (
                    (time.perf_counter() - started_wall) * 1000
                )
                context.stats.plan_text = plan.explain()
                if root.recording:
                    root.set(
                        elapsed_virtual_ms=context.stats.elapsed_virtual_ms,
                        rows=len(elements),
                        complete=context.completeness.complete,
                    )
        except BaseException:
            if admission is not None:
                self.admission.cancel(admission)
            raise
        if admission is not None:
            self.admission.complete(admission)
        self._record_query(text, root.trace_id, context)
        return QueryResult(
            elements, context.completeness, context.stats,
            provenance=self._build_provenance(root.trace_id,
                                              context.origins),
        )

    def explain(self, text: str | qast.Query) -> str:
        """The physical plan the engine would run, as indented text.

        Goes through the compiled-plan cache exactly like execution
        does: explaining a cached query reuses (and re-validates
        against the catalog epoch) the same :class:`DecomposedQuery`
        that would execute, so the explanation can never disagree with
        the plan a subsequent ``query()`` runs — and the engine-level
        ``plan_cache_hits``/``plan_cache_misses`` move consistently.
        """
        decomposed = self._compile(text)
        context = _ExecutionContext(self, self.default_policy, frozenset())
        plan = self.builder.build(decomposed, context)
        return plan.explain()

    def explain_analyze(
        self,
        text: str | qast.Query,
        policy: PartialResultPolicy | None = None,
        required_sources: set[str] | None = None,
    ) -> "AnalyzedQuery":
        """Execute the query with full instrumentation and explain it.

        Unlike :meth:`explain`, this *runs* the query: every operator
        reports actual row counts (``rows_out``/``rows_in``), inclusive
        virtual time, and — for fragment scans — the planner's estimate
        (the feedback EWMA once the fragment has run before) against
        the actual cardinality.  A span trace of the execution rides
        along; when the engine has no tracer, a temporary one is wired
        for the duration of the call.  ``str()`` of the result renders
        the annotated plan plus the span tree.
        """
        tracer = self.tracer
        temporary = not tracer.enabled
        if temporary:
            tracer = Tracer(self.clock)
            self.use_tracer(tracer)
        effective = policy or self.default_policy
        if required_sources and effective is not PartialResultPolicy.FAIL:
            effective = PartialResultPolicy.REQUIRE
        try:
            result = self._execute(text, effective,
                                   frozenset(required_sources or ()),
                                   analyze=True)
        finally:
            if temporary:
                self.use_tracer(NULL_TRACER)
        return AnalyzedQuery(result.stats.plan_text, result,
                             tracer.last_trace)

    def materialize_query_fragments(self, text: str | qast.Query,
                                    policy=None) -> int:
        """Materialize every remote fragment a query would execute.

        The management-tools path: "enable specification of which data
        sources (or queries over data sources) should be materialized in
        a local store".  Returns the number of fragments materialized.
        Fetches run through an execution context under FAIL policy, so
        they get the engine's resilience ladder (retries, breakers) and
        network-delta accounting like every other source call.
        """
        if self.materializer is None:
            raise MediationError("engine has no materialization manager")
        decomposed = self._compile(text)
        context = _ExecutionContext(self, PartialResultPolicy.FAIL, frozenset())
        count = 0
        for unit in decomposed.units:
            if not isinstance(unit, FragmentUnit) or unit.dependent:
                continue
            if self.materializer.store.get(
                _fragment_store_key(unit.fragment)
            ) is not None:
                continue
            self.materializer.materialize(
                unit.fragment,
                lambda f, u=unit: context.fetch_fragment(u),
                policy,
            )
            count += 1
        return count

    def materialize_view(self, name: str, policy=None):
        """Materialize a mediated view's result elements in the local store.

        This is the paper's headline materialization unit: "one does not
        design a warehouse schema.  Instead, one materializes views over
        the mediated schema."  The view stays fresh per its policy; the
        engine transparently serves it on later queries.
        """
        if self.materializer is None:
            raise MediationError("engine has no materialization manager")
        resolved = self.catalog.resolve(name)
        if not isinstance(resolved, ViewDef):
            raise MediationError(f"{name!r} is not a mediated view")

        def fetch() -> list[Element]:
            return self._execute(
                resolved.query, PartialResultPolicy.FAIL, frozenset()
            ).elements

        return self.materializer.materialize_view(name, fetch, policy)

    def refresh_materialized_views(self) -> int:
        """Re-execute every stale materialized mediated view."""
        if self.materializer is None:
            return 0

        def fetch(name: str) -> list[Element]:
            resolved = self.catalog.resolve(name)
            assert isinstance(resolved, ViewDef)
            return self._execute(
                resolved.query, PartialResultPolicy.FAIL, frozenset()
            ).elements

        return self.materializer.refresh_stale_views(fetch)

    # -- incremental maintenance (CDC) ---------------------------------------------

    def maintain_view(self, name: str):
        """Start maintaining a mediated view incrementally.

        The view is loaded once from the sources, published into the
        materialization manager under a *manual* refresh policy, and
        thereafter kept fresh by :meth:`sync_changes` draining the
        sources' change feeds — refresh cost is proportional to the
        delta, not the view.
        """
        if self.incremental is None:
            raise MediationError(
                "engine was not built with incremental=True"
            )
        return self.incremental.maintain(name)

    def sync_changes(self, patch: bool = True) -> dict[str, Any]:
        """Drain every source change feed: caches first, then views.

        For each change past this engine's per-source cursor the
        fragment cache and the materialized store make a *scoped*
        decision — retain entries the change provably misses, patch
        entries whose records can be fixed in place, evict only the
        rest.  This replaces the old catalog-epoch bump that evicted
        everything on any write.  Maintained views then refresh off the
        same feeds.  Cache sync deliberately runs *before* view
        refresh: local view rebuilds consult cost-model residency, so
        residency must settle first for refreshed output to be
        bit-identical with a fresh execution planned afterwards.
        """
        report: dict[str, Any] = {
            "changes": 0, "cache_patched": 0, "cache_evicted": 0,
            "cache_retained": 0, "store_patched": 0, "store_invalidated": 0,
            "store_retained": 0, "views": {},
        }
        with self.tracer.span("cdc_sync") as sync_span:
            for source in self.catalog.registry:
                log = source.changelog
                if log is None:
                    continue
                cursor = self._cdc_cache_seq.get(source.name, 0)
                pending = list(log.since(cursor))
                with self.tracer.span(
                    "cdc_feed", name=source.name, source=source.name,
                    from_seq=cursor, to_seq=log.latest_seq,
                    changes=len(pending),
                ) if pending else nullcontext():
                    for change in pending:
                        key_field = log.key_field(change.relation)
                        report["changes"] += 1
                        if self.fragment_cache is not None:
                            patched, evicted, retained = (
                                self.fragment_cache.apply_change(
                                    change, key_field, patch=patch
                                )
                            )
                            report["cache_patched"] += patched
                            report["cache_evicted"] += evicted
                            report["cache_retained"] += retained
                            self.cdc_stats.cache_entries_patched += patched
                            self.cdc_stats.cache_entries_evicted += evicted
                            self.cdc_stats.cache_entries_retained += retained
                        if self.materializer is not None:
                            patched, invalidated, retained = (
                                self.materializer.store.apply_change(
                                    change, key_field, now_ms=self.clock.now,
                                    patch=patch,
                                )
                            )
                            report["store_patched"] += patched
                            report["store_invalidated"] += invalidated
                            report["store_retained"] += retained
                        if self.metrics is not None:
                            self.metrics.histogram(
                                "cdc.refresh_lag_ms"
                            ).observe(self.clock.now - change.at_ms)
                self._cdc_cache_seq[source.name] = log.latest_seq
                if self.metrics is not None:
                    self.metrics.gauge(f"cdc.{source.name}.seq").set(
                        log.latest_seq
                    )
            if self.incremental is not None:
                report["views"] = self.incremental.refresh()
            if sync_span.recording:
                sync_span.set(
                    changes=report["changes"],
                    cache_patched=report["cache_patched"],
                    cache_evicted=report["cache_evicted"],
                    cache_retained=report["cache_retained"],
                    views_refreshed=len(report["views"]),
                )
        return report

    def _cdc_fetch_context(self) -> _ExecutionContext:
        """A fresh context for CDC-driven fragment fetches.

        Maintenance fetches fail hard (a partially loaded maintained
        view would silently serve wrong answers) and never appear in
        the query log — their stats are absorbed into ``cdc_stats``.
        """
        return _ExecutionContext(
            self, PartialResultPolicy.FAIL, frozenset()
        )

    def _cdc_execute(self, query: qast.Query) -> list[Element]:
        """Run a full view query for maintenance, outside the query log."""
        context = self._cdc_fetch_context()
        result = self._execute(
            query, PartialResultPolicy.FAIL, frozenset(), parent=context
        )
        self.cdc_stats.absorb(context.stats)
        return result.elements

    # -- internals ----------------------------------------------------------------

    def _admit(self, priority: Priority) -> Admission | None:
        """The overload gate: the shedder's rung, then a token.

        Runs before any work is done for the query.  The shedder's
        refresh re-reads the SLO error budget so the brownout level a
        query executes under is the one its own admission saw.  Either
        stage may raise :class:`QueryRejected` (counted in
        ``queries_rejected`` when a metrics registry is wired).
        """
        try:
            if self.shedder is not None:
                self.shedder.refresh()
                if self.metrics is not None:
                    self.metrics.gauge("overload.brownout_level").set(
                        int(self.shedder.level)
                    )
                self.shedder.check_admit(priority)
            if self.admission is not None:
                return self.admission.admit(priority)
        except QueryRejected:
            if self.metrics is not None:
                self.metrics.counter("queries_rejected").inc()
            self.tracer.event("query_rejected", priority=int(priority))
            raise
        return None

    @contextmanager
    def _admission_scope(self, priority: Priority):
        """Admit, then release the token on the way out (cancel on error)."""
        admission = self._admit(priority)
        try:
            yield admission
        except BaseException:
            if admission is not None:
                self.admission.cancel(admission)
            raise
        if admission is not None:
            self.admission.complete(admission)

    def _fragment_residency(self, fragment: Fragment) -> int | None:
        """Fresh cached row count of a fragment (the cost model's hook)."""
        if self.fragment_cache is None:
            return None
        return self.fragment_cache.resident_rows(fragment, self.catalog.version)

    def _column_stats_lookup(self, fragment: Fragment, var: str):
        """Observed column statistics for a fragment's variable, if any.

        Statistics are keyed by access shape (conditions excluded), so
        a conditioned fragment reuses the statistics its unconditioned
        scan gathered — the sound direction: full-scan statistics cover
        any filtered subset.
        """
        if self.column_stats is None:
            return None
        return self.column_stats.column(access_key(fragment), var)

    def _compile(self, query: str | qast.Query,
                 stats: EngineStats | None = None) -> DecomposedQuery:
        """Parse→bind→decompose, cached per query text + catalog epoch.

        The cache is keyed by the literal query text and consulted
        *before* parsing — a cached query costs one dict lookup, no
        re-parse, no re-plan.  An entry is only valid while the
        catalog's version epoch (bumped on any source, mapping, schema,
        or view registration) matches the one it was compiled under.
        ASTs passed directly bypass the cache.  The compiled
        :class:`DecomposedQuery` is immutable after decomposition, so
        reuse across executions is safe — the plan builder constructs
        fresh operators every run.
        """
        text = query if isinstance(query, str) else None
        epoch = self.catalog.version
        caching = text is not None and self.plan_cache_size > 0
        if caching:
            entry = self._plan_cache.get(text)
            if entry is not None and entry[0] == epoch:
                self._plan_cache.move_to_end(text)
                self.plan_cache_hits += 1
                self.tracer.event("plan_cache_hit")
                if stats is not None:
                    stats.plan_cache_hits += 1
                return entry[1]
        tracer = self.tracer
        if text is not None:
            with tracer.span("parse"):
                query = parse_query(text)
        with tracer.span("bind"):
            bound = bind_query(query)
        with tracer.span("decompose"):
            decomposed = decompose(bound, self.catalog, self.pushdown,
                                   projection=self.projection_pushdown)
        if caching:
            self.plan_cache_misses += 1
            self._plan_cache[text] = (epoch, decomposed)
            self._plan_cache.move_to_end(text)
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return decomposed

    def _execute(
        self,
        query: str | qast.Query,
        policy: PartialResultPolicy,
        required_sources: frozenset[str],
        parent: _ExecutionContext | None = None,
        analyze: bool = False,
        priority: Priority = Priority.NORMAL,
    ) -> QueryResult:
        self.queries_run += 1
        context = _ExecutionContext(
            self, policy, required_sources,
            deadline_at=parent.deadline_at if parent is not None else None,
            priority=parent.priority if parent is not None else priority,
        )
        text = query if isinstance(query, str) else None
        tracer = self.tracer
        with tracer.span("query", policy=policy.name) as root:
            if root.recording and text is not None:
                root.set(query_hash=query_hash(text))
            decomposed = self._compile(query, stats=context.stats)
            with tracer.span("plan"):
                plan = self.builder.build(decomposed, context)
            if analyze:
                plan.bind_analyze(self.clock)
            elif self.vectorized:
                # EXPLAIN ANALYZE keeps the row path: per-operator row
                # clocks are the whole point of that mode
                plan.bind_vectorized(self.batch_rows)
            started_virtual = self.clock.now
            started_wall = time.perf_counter()
            with tracer.span("execute"):
                context.prefetch(independent_fragment_units(decomposed))
                elements = plan.results()
            context.stats.elapsed_virtual_ms = self.clock.now - started_virtual
            context.stats.elapsed_wall_ms = (
                (time.perf_counter() - started_wall) * 1000
            )
            context.stats.plan_text = plan.explain(analyze=analyze)
            if root.recording:
                root.set(elapsed_virtual_ms=context.stats.elapsed_virtual_ms,
                         rows=len(elements),
                         complete=context.completeness.complete)
        if parent is not None:
            parent.completeness.merge(context.completeness)
            parent.stats.absorb(context.stats)
            parent.origins.extend(context.origins)
            provenance = None
        else:
            self._record_query(text, root.trace_id, context)
            provenance = self._build_provenance(root.trace_id,
                                                context.origins)
        return QueryResult(elements, context.completeness, context.stats,
                           provenance=provenance)

    def execute_bindings(
        self,
        decomposed: DecomposedQuery,
        policy: PartialResultPolicy | None = None,
        required_sources: frozenset[str] = frozenset(),
        priority: Priority = Priority.NORMAL,
    ) -> BindingResult:
        """Run a compiled query's binding tree: rows out, no construct.

        The scatter-gather router calls this on shard-local engines —
        the coordinator compiled once, each shard executes the join/
        select shape over its slice and returns binding rows for the
        gather merge.  Ordering, grouping, construction and LIMIT are
        the merge's job (or the shard-side reducer's), not this path's.
        """
        self.queries_run += 1
        effective = policy or self.default_policy
        if required_sources and effective is not PartialResultPolicy.FAIL:
            effective = PartialResultPolicy.REQUIRE
        context = _ExecutionContext(self, effective, required_sources,
                                    priority=priority)
        tracer = self.tracer
        with tracer.span("bindings", policy=effective.name) as root:
            with tracer.span("plan"):
                tree = self.builder.build_binding_tree(decomposed, context)
            if self.vectorized:
                tree.bind_vectorized(self.batch_rows)
            started_virtual = self.clock.now
            started_wall = time.perf_counter()
            with tracer.span("execute"):
                context.prefetch(independent_fragment_units(decomposed))
                tree.reset_counters()
                rows = list(tree)
            context.stats.elapsed_virtual_ms = self.clock.now - started_virtual
            context.stats.elapsed_wall_ms = (
                (time.perf_counter() - started_wall) * 1000
            )
            context.stats.plan_text = tree.explain()
            if root.recording:
                root.set(elapsed_virtual_ms=context.stats.elapsed_virtual_ms,
                         rows=len(rows),
                         complete=context.completeness.complete)
        return BindingResult(
            rows, context.completeness, context.stats,
            provenance=self._build_provenance(root.trace_id,
                                              context.origins),
        )

    def _build_provenance(
        self, trace_id: str, origins: list[FragmentOrigin]
    ) -> Provenance | None:
        """The lineage record for one answer (None with the knob off).

        The version vector reads the engine's applied-CDC cursors; the
        feed heads read each source's changelog head — both plain dict
        and attribute reads, so building the record never advances the
        virtual clock.
        """
        if not self.provenance:
            return None
        vector: dict[str, int] = {}
        heads: dict[str, int] = {}
        for source in self.catalog.registry:
            log = source.changelog
            if log is None:
                continue
            vector[source.name] = self._cdc_cache_seq.get(source.name, 0)
            heads[source.name] = log.latest_seq
        return Provenance(
            trace_id=trace_id,
            version_vector=vector,
            feed_heads=heads,
            snapshot_epoch=self.catalog.version,
            origins=list(origins),
        )

    def explain_answer(self, result) -> str:
        """Render the causal chain behind one answer's lineage.

        Accepts a :class:`QueryResult` or :class:`BindingResult` that
        carries provenance and explains *why* each piece was served the
        way it was: a stale rung is attributed to its open breaker
        (with the virtual instant it opened), a behind answer to the
        lagging CDC feed, a stale maintained view to its seq lag.
        Raises :class:`MediationError` when the result carries no
        provenance (engine built without ``provenance=True``).
        """
        provenance = getattr(result, "provenance", None)
        if provenance is None:
            raise MediationError(
                "result carries no provenance — construct the engine with "
                "provenance=True"
            )
        breakers: dict[str, dict[str, Any]] = {}
        if self.resilient is not None:
            for name, breaker in self.resilient.breakers.items():
                breakers[name] = {
                    "state": breaker.state.value,
                    "opened_at_ms": breaker.opened_at_ms,
                    "times_opened": breaker.times_opened,
                }
        view_lag = (
            self.incremental.lag(self.clock.now)
            if self.incremental is not None else {}
        )
        return explain_provenance(
            provenance,
            completeness=getattr(result, "completeness", None),
            breakers=breakers,
            view_lag=view_lag,
            now_ms=self.clock.now,
        )

    def _record_query(self, text: str | None, trace_id: str,
                      context: _ExecutionContext) -> None:
        """Top-level bookkeeping: the query log and the metrics registry."""
        stats = context.stats
        origins = origin_counts(context.origins)
        for kind, count in origins.items():
            self.origin_totals[kind] = self.origin_totals.get(kind, 0) + count
        if self.query_log is not None:
            self.query_log.record(
                text if text is not None else stats.plan_text,
                stats.elapsed_virtual_ms,
                stats.elapsed_wall_ms,
                context.completeness,
                trace_id=trace_id,
                counters=stats.counters(),
                origins=origins,
            )
        if self.metrics is not None:
            metrics = self.metrics
            metrics.counter("queries_total").inc()
            if not context.completeness.complete:
                metrics.counter("queries_incomplete").inc()
            if context.completeness.stale_sources:
                metrics.counter("queries_stale").inc()
            metrics.histogram("query.virtual_ms").observe(
                stats.elapsed_virtual_ms
            )
            metrics.histogram("query.wall_ms").observe(stats.elapsed_wall_ms)
            for name, value in stats.as_dict().items():
                if value:
                    metrics.counter(name).inc(value)
            for kind, count in origins.items():
                metrics.counter(f"origin.{kind}").inc(count)
        if self.slo is not None:
            self.slo.observe_query(
                query_hash(text if text is not None else stats.plan_text),
                stats.elapsed_virtual_ms,
                context.completeness,
                counters=stats.counters(),
                cache_counters=stats.cache_counters(),
                plan_epoch=self.catalog.version,
            )


def _fragment_store_key(fragment: Fragment) -> str:
    from repro.materialize.matching import fragment_key

    return fragment_key(fragment)

"""Table schemas for the embedded relational engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSchemaError
from repro.sql.types import SQLType


@dataclass(frozen=True)
class Column:
    """A column definition."""

    name: str
    type: SQLType
    nullable: bool = True
    primary_key: bool = False


@dataclass
class TableSchema:
    """A named, ordered list of columns with at most one primary key."""

    name: str
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SQLSchemaError(f"duplicate column in table {self.name!r}")
        if sum(1 for c in self.columns if c.primary_key) > 1:
            raise SQLSchemaError(
                f"table {self.name!r}: composite primary keys are not supported"
            )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def primary_key(self) -> Column | None:
        for column in self.columns:
            if column.primary_key:
                return column
        return None

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise SQLSchemaError(f"no column {name!r} in table {self.name!r}")

    def column_index(self, name: str) -> int:
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise SQLSchemaError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

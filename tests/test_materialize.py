"""Unit tests for materialization: matching, store, manager, selection."""

import pytest

from repro.algebra import TreePattern
from repro.errors import MaterializationError
from repro.materialize import (
    LocalStore,
    MaterializationManager,
    MaterializedView,
    RefreshPolicy,
    WorkloadStats,
    fragment_key,
    greedy_select,
)
from repro.materialize.matching import (
    access_key,
    condition_text,
    conditions_subsumed,
    implies,
    matches,
)
from repro.optimizer.costs import CostModel
from repro.query import ast as qast
from repro.simtime import SimClock
from repro.sources.base import Access, Fragment
from repro.xmldm.values import Record


def cond(op, var, value):
    return qast.BinOp(op, qast.Var(var), qast.Literal(value))


def fragment(conditions=(), relation="t", source="s"):
    pattern = TreePattern(
        relation, children=(TreePattern("a", text_var="a"),
                            TreePattern("b", text_var="b"))
    )
    return Fragment(source, (Access(relation, pattern),), tuple(conditions))


class TestMatching:
    def test_condition_text_normalizes_commutative(self):
        left = qast.BinOp("=", qast.Var("x"), qast.Literal(1))
        right = qast.BinOp("=", qast.Literal(1), qast.Var("x"))
        assert condition_text(left) == condition_text(right)

    def test_fragment_key_stable(self):
        assert fragment_key(fragment()) == fragment_key(fragment())
        assert fragment_key(fragment()) != fragment_key(fragment(source="other"))

    def test_access_key_ignores_conditions(self):
        assert access_key(fragment([cond("=", "a", 1)])) == access_key(fragment())

    def test_implies_identity(self):
        assert implies(cond("=", "a", 1), cond("=", "a", 1))

    def test_implies_range(self):
        assert implies(cond(">", "a", 10), cond(">", "a", 5))
        assert implies(cond(">=", "a", 10), cond(">", "a", 5))
        assert not implies(cond(">", "a", 5), cond(">", "a", 10))
        assert not implies(cond(">", "a", 5), cond("<", "a", 10))
        assert implies(cond("<", "a", 3), cond("<=", "a", 3))
        assert not implies(cond("<=", "a", 3), cond("<", "a", 3))

    def test_implies_different_vars(self):
        assert not implies(cond(">", "a", 10), cond(">", "b", 5))

    def test_subsumption_residual(self):
        view_conditions = [cond(">", "a", 5)]
        query_conditions = [cond(">", "a", 5), cond("=", "b", "x")]
        ok, residual = conditions_subsumed(view_conditions, query_conditions)
        assert ok
        assert [condition_text(c) for c in residual] == [
            condition_text(cond("=", "b", "x"))
        ]

    def test_view_more_restrictive_rejected(self):
        ok, _ = conditions_subsumed([cond("=", "a", 1)], [])
        assert not ok

    def test_matches_full(self):
        view = fragment([cond(">", "a", 5)])
        query = fragment([cond(">", "a", 10)])
        ok, residual = matches(view, query)
        assert ok
        assert len(residual) == 1  # re-apply the tighter bound locally

    def test_matches_rejects_different_access(self):
        ok, _ = matches(fragment(relation="t"), fragment(relation="u"))
        assert not ok

    def test_parameterized_never_matches(self):
        parameterized = Fragment(
            "s", fragment().accesses, (), input_vars=("p",)
        )
        assert matches(parameterized, fragment()) == (False, [])


class TestStoreAndPolicy:
    def view(self, rows=3, policy=None, loaded_at=0.0):
        return MaterializedView(
            fragment(),
            [Record({"a": i, "b": i}) for i in range(rows)],
            loaded_at,
            policy or RefreshPolicy.ttl(100.0),
        )

    def test_ttl_freshness(self):
        view = self.view()
        assert view.is_fresh(50.0)
        assert not view.is_fresh(150.0)

    def test_manual_policy(self):
        view = self.view(policy=RefreshPolicy.manual())
        assert view.is_fresh(1e9)
        view.invalidated = True
        assert not view.is_fresh(0.0)

    def test_always_refresh_never_fresh(self):
        view = self.view(policy=RefreshPolicy.always_refresh())
        assert not view.is_fresh(0.0)

    def test_unknown_policy_kind(self):
        with pytest.raises(ValueError):
            RefreshPolicy("sometimes")

    def test_reload_resets(self):
        view = self.view()
        view.invalidated = True
        view.reload([Record({"a": 9, "b": 9})], 200.0)
        assert view.is_fresh(250.0)
        assert view.row_count == 1
        assert view.refreshes == 1

    def test_store_budget(self):
        store = LocalStore(budget_rows=5)
        store.add(self.view(rows=3))
        with pytest.raises(MaterializationError):
            store.add(
                MaterializedView(
                    fragment(source="other"),
                    [Record({"a": i, "b": i}) for i in range(3)],
                    0.0,
                    RefreshPolicy.ttl(10.0),
                )
            )

    def test_store_duplicate_rejected(self):
        store = LocalStore()
        store.add(self.view())
        with pytest.raises(MaterializationError):
            store.add(self.view())

    def test_invalidate_source(self):
        store = LocalStore()
        store.add(self.view())
        assert store.invalidate_source("s") == 1
        assert next(iter(store)).invalidated


class TestManager:
    def records(self, count=4):
        return [Record({"a": i, "b": i * 2}) for i in range(count)]

    def test_serve_hit_and_residual_filter(self):
        clock = SimClock()
        manager = MaterializationManager(clock)
        broad = fragment()
        manager.materialize(broad, lambda f: self.records())
        narrow = fragment([cond(">", "a", 1)])
        served = manager.serve(narrow)
        assert [r["a"] for r in served] == [2, 3]
        assert manager.hits == 1

    def test_serve_miss(self):
        manager = MaterializationManager(SimClock())
        assert manager.serve(fragment()) is None
        assert manager.misses == 1

    def test_stale_view_not_served(self):
        clock = SimClock()
        manager = MaterializationManager(
            clock, default_policy=RefreshPolicy.ttl(10.0)
        )
        manager.materialize(fragment(), lambda f: self.records())
        clock.advance(50.0)
        assert manager.serve(fragment()) is None

    def test_refresh_stale(self):
        clock = SimClock()
        manager = MaterializationManager(
            clock, default_policy=RefreshPolicy.ttl(10.0)
        )
        manager.materialize(fragment(), lambda f: self.records(2))
        clock.advance(50.0)
        refreshed = manager.refresh_stale(lambda f: self.records(6))
        assert refreshed == 1
        assert manager.serve(fragment()) is not None

    def test_adapt_drops_and_loads(self):
        clock = SimClock()
        manager = MaterializationManager(clock)
        hot = fragment([cond("=", "a", 1)])
        cold = fragment([cond("=", "a", 2)])

        class Source:
            name = "s"

        for _ in range(10):
            manager.record_remote(hot, Source(), cost_ms=100.0, rows=4)
        manager.record_remote(cold, Source(), cost_ms=100.0, rows=4)
        selection = manager.adapt(100, lambda f: self.records())
        assert fragment_key(hot) in selection.chosen_keys
        assert fragment_key(cold) not in selection.chosen_keys
        assert manager.store.get(fragment_key(hot)) is not None


class TestMediatedViewCache:
    def elements(self, count=3):
        from repro.xmldm.nodes import Element

        return [Element("x", {"i": str(i)}) for i in range(count)]

    def test_serve_after_materialize(self):
        manager = MaterializationManager(SimClock())
        manager.materialize_view("v", lambda: self.elements())
        served = manager.serve_view("v")
        assert len(served) == 3
        assert manager.views["v"].hits == 1

    def test_miss_when_not_materialized(self):
        manager = MaterializationManager(SimClock())
        assert manager.serve_view("ghost") is None

    def test_stale_view_not_served_then_refreshed(self):
        clock = SimClock()
        manager = MaterializationManager(
            clock, default_policy=RefreshPolicy.ttl(10.0)
        )
        manager.materialize_view("v", lambda: self.elements(2))
        clock.advance(50.0)
        assert manager.serve_view("v") is None
        refreshed = manager.refresh_stale_views(lambda name: self.elements(5))
        assert refreshed == 1
        assert len(manager.serve_view("v")) == 5

    def test_drop_view(self):
        manager = MaterializationManager(SimClock())
        manager.materialize_view("v", lambda: self.elements())
        manager.drop_view("v")
        assert manager.serve_view("v") is None
        with pytest.raises(MaterializationError):
            manager.drop_view("v")

    def test_rematerialize_reloads(self):
        manager = MaterializationManager(SimClock())
        manager.materialize_view("v", lambda: self.elements(1))
        manager.materialize_view("v", lambda: self.elements(4))
        assert len(manager.serve_view("v")) == 4
        assert manager.views["v"].refreshes == 1


class TestSelection:
    def make_stats(self, usage):
        stats = WorkloadStats()

        for key_suffix, (uses, cost, rows) in usage.items():
            frag = fragment([cond("=", "a", key_suffix)])
            for _ in range(uses):
                stats.record(fragment_key(frag), frag, "s", cost, rows, 0.0)
        return stats

    def test_greedy_prefers_high_density(self):
        stats = self.make_stats({1: (10, 100.0, 10), 2: (2, 100.0, 10)})
        result = greedy_select(stats.profiles(), budget_rows=10, min_uses=2)
        assert len(result.chosen) == 1
        assert result.chosen[0].profile.uses == 10
        assert result.rejected

    def test_budget_respected(self):
        stats = self.make_stats({1: (10, 100.0, 60), 2: (9, 100.0, 60)})
        result = greedy_select(stats.profiles(), budget_rows=100)
        assert result.used_rows <= 100

    def test_min_uses_filter(self):
        stats = self.make_stats({1: (1, 100.0, 5)})
        result = greedy_select(stats.profiles(), budget_rows=100, min_uses=2)
        assert not result.chosen

    def test_sliding_window(self):
        stats = WorkloadStats(window=5)
        frag = fragment()
        for i in range(10):
            stats.record(fragment_key(frag), frag, "s", 1.0, 1, float(i))
        assert stats.total_observations() == 5
        assert stats.profiles()[0].uses == 5

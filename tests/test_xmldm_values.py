"""Unit tests for the structured value layer."""

import datetime

import pytest

from repro.xmldm.nodes import Element
from repro.xmldm.values import (
    NULL,
    Collection,
    Null,
    Record,
    atomize,
    compare_values,
    is_atomic,
    typename,
    values_equal,
)


class TestNull:
    def test_singleton(self):
        assert Null() is NULL

    def test_falsy(self):
        assert not NULL

    def test_equal_only_to_itself(self):
        assert NULL == Null()
        assert not values_equal(NULL, 0)
        assert not values_equal(NULL, "")

    def test_hashable(self):
        assert {NULL: 1}[Null()] == 1


class TestRecord:
    def test_field_access(self):
        record = Record({"id": 1, "name": "Ann"})
        assert record["id"] == 1
        assert record.get("missing") is NULL

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            Record([("a", 1), ("a", 2)])

    def test_with_field_is_pure(self):
        original = Record({"a": 1})
        updated = original.with_field("b", 2)
        assert "b" not in original
        assert updated["b"] == 2

    def test_without_field(self):
        record = Record({"a": 1, "b": 2}).without_field("a")
        assert "a" not in record
        assert record["b"] == 2

    def test_project_fills_missing_with_null(self):
        projected = Record({"a": 1}).project(["a", "b"])
        assert projected["a"] == 1
        assert projected["b"] is NULL

    def test_equality_and_hash_by_content(self):
        assert Record({"a": 1, "b": 2}) == Record({"b": 2, "a": 1})
        assert hash(Record({"a": 1})) == hash(Record({"a": 1}))

    def test_len_and_iteration(self):
        record = Record({"a": 1, "b": 2})
        assert len(record) == 2
        assert list(record) == ["a", "b"]

    def test_fields_preserve_order(self):
        assert Record({"z": 1, "a": 2}).fields == ("z", "a")


class TestCollection:
    def test_append_and_len(self):
        collection = Collection([1, 2])
        collection.append(3)
        assert len(collection) == 3
        assert collection[2] == 3

    def test_equality_by_items(self):
        assert Collection([1, 2]) == Collection([1, 2])
        assert Collection([1]) != Collection([2])

    def test_extend(self):
        collection = Collection()
        collection.extend([1, 2])
        assert list(collection) == [1, 2]


class TestTypename:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (NULL, "null"),
            (None, "null"),
            (True, "boolean"),
            (3, "number"),
            (3.5, "number"),
            ("x", "string"),
            (datetime.date(2001, 4, 2), "date"),
            (datetime.datetime(2001, 4, 2, 10, 0), "datetime"),
            (Record({}), "record"),
            (Collection(), "collection"),
        ],
    )
    def test_types(self, value, expected):
        assert typename(value) == expected

    def test_element_is_node(self):
        assert typename(Element("a")) == "node"

    def test_unknown_raises(self):
        with pytest.raises(TypeError):
            typename(object())


class TestCompare:
    def test_numbers_cross_int_float(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(1, 2.5) == -1

    def test_strings(self):
        assert compare_values("a", "b") == -1

    def test_type_rank_orders_heterogeneous(self):
        # null < boolean < number < string
        assert compare_values(NULL, False) == -1
        assert compare_values(True, 0) == -1
        assert compare_values(5, "5") == -1

    def test_records_compare_by_sorted_fields(self):
        assert compare_values(Record({"a": 1}), Record({"a": 2})) == -1
        assert compare_values(Record({"a": 1}), Record({"a": 1})) == 0

    def test_collections_lexicographic(self):
        assert compare_values(Collection([1, 2]), Collection([1, 3])) == -1

    def test_total_order_is_consistent(self):
        values = [NULL, True, 2, "z", Record({"a": 1}), Collection([1])]
        for a in values:
            for b in values:
                assert compare_values(a, b) == -compare_values(b, a)


class TestAtomize:
    def test_atomic_passthrough(self):
        assert atomize(5) == 5

    def test_node_atomizes_to_text(self):
        element = Element("a", children=["hi"])
        assert atomize(element) == "hi"

    def test_singleton_record(self):
        assert atomize(Record({"only": 7})) == 7

    def test_singleton_collection(self):
        assert atomize(Collection(["x"])) == "x"

    def test_wide_record_not_atomized(self):
        record = Record({"a": 1, "b": 2})
        assert atomize(record) is record

    def test_is_atomic(self):
        assert is_atomic(5)
        assert is_atomic(NULL)
        assert not is_atomic(Record({}))

"""Declarative cleaning flows with two-phase execution.

"We use a declarative representation of the flow" (section 3.2, citing
Galhardas et al.): a flow is an ordered list of steps — normalize,
match, link — executed over named datasets.  Execution has two modes:

* **MINING** — the interactive phase: ambiguous pairs are routed to a
  reviewer callback and the human's verdicts are recorded in the
  concordance database;
* **EXTRACTION** — the autonomous phase: recorded decisions replay from
  the concordance database, and ambiguous pairs that have no recorded
  decision are *trapped as exceptions* so "extraction [can] continue
  with cleanup applied post-hoc when a human is available".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.cleaning.concordance import ConcordanceDB, Decision, RecordRef
from repro.cleaning.lineage import LineageLog
from repro.cleaning.matchers import MatchDecision, RecordMatcher
from repro.cleaning.normalize import NormalizerRegistry
from repro.cleaning.sortedneighborhood import (
    first_letters_key,
    multi_pass_neighborhood,
    naive_pairs,
    reversed_field_key,
    sorted_neighborhood,
)
from repro.errors import CleaningError
from repro.xmldm.values import Null, Record

Reviewer = Callable[[Record, Record, float], MatchDecision]


class FlowMode(enum.Enum):
    MINING = "mining"
    EXTRACTION = "extraction"


@dataclass(frozen=True)
class NormalizeStep:
    """Standardize one field in place with a named normalizer."""

    field: str
    normalizer: str


@dataclass(frozen=True)
class MatchStep:
    """Generate candidate pairs and score them.

    ``blocking`` is 'naive', 'snm' or 'multipass'; ``key_field`` feeds
    the blocking key(s); ``window`` is the SNM neighbourhood size.
    """

    matcher: RecordMatcher
    blocking: str = "snm"
    key_field: str = "name"
    window: int = 7
    #: also record scored NONMATCH pairs in the concordance database, so
    #: a later extraction run replays every determination instead of
    #: re-scoring candidates (storage for speed)
    record_nonmatches: bool = False

    _BLOCKINGS = ("naive", "snm", "multipass")

    def __post_init__(self) -> None:
        if self.blocking not in self._BLOCKINGS:
            raise CleaningError(f"unknown blocking {self.blocking!r}")


@dataclass(frozen=True)
class LinkStep:
    """Cluster matched records and emit one golden record per cluster.

    ``source_priority`` orders sources by trust: golden-record fields
    take the first non-empty value in priority order.
    """

    source_priority: tuple[str, ...] = ()


@dataclass
class TrappedException:
    """An ambiguous pair deferred during extraction."""

    ref_a: RecordRef
    ref_b: RecordRef
    score: float


@dataclass
class FlowResult:
    """Everything a flow run produces."""

    matched_pairs: list[tuple[RecordRef, RecordRef]] = field(default_factory=list)
    clusters: list[list[RecordRef]] = field(default_factory=list)
    golden_records: list[Record] = field(default_factory=list)
    exceptions: list[TrappedException] = field(default_factory=list)
    pairs_compared: int = 0
    pairs_replayed: int = 0
    auto_decisions: int = 0
    human_decisions: int = 0

    def cluster_of(self, ref: RecordRef) -> list[RecordRef] | None:
        for cluster in self.clusters:
            if ref in cluster:
                return cluster
        return None


class CleaningFlow:
    """An ordered, reusable cleaning pipeline over named datasets."""

    def __init__(
        self,
        name: str,
        steps: Sequence[NormalizeStep | MatchStep | LinkStep],
        registry: NormalizerRegistry | None = None,
        concordance: ConcordanceDB | None = None,
        lineage: LineageLog | None = None,
    ):
        self.name = name
        self.steps = list(steps)
        # `is None` checks matter here: an empty ConcordanceDB/LineageLog
        # is falsy (len 0) but is still the caller's store to fill
        self.registry = registry if registry is not None else NormalizerRegistry()
        self.concordance = concordance if concordance is not None else ConcordanceDB()
        self.lineage = lineage if lineage is not None else LineageLog()

    def add_source(self, *args, **kwargs):  # pragma: no cover - guidance
        raise CleaningError(
            "datasets are passed to run(); flows are dataset-independent "
            "so it is 'easy to add new data sources to an existing flow'"
        )

    # -- execution -------------------------------------------------------------

    def run(
        self,
        datasets: dict[str, Sequence[Record]],
        mode: FlowMode = FlowMode.EXTRACTION,
        id_field: str = "id",
        reviewer: Reviewer | None = None,
        now_ms: float = 0.0,
    ) -> FlowResult:
        """Execute the flow over ``datasets`` (source name -> records)."""
        if mode is FlowMode.MINING and reviewer is None:
            raise CleaningError("MINING mode needs a reviewer callback")
        refs: list[RecordRef] = []
        working: list[Record] = []
        for source_name, records in datasets.items():
            for record in records:
                identity = record.get(id_field)
                if identity is None or isinstance(identity, Null):
                    raise CleaningError(
                        f"record in {source_name!r} lacks id field {id_field!r}"
                    )
                refs.append((source_name, str(identity)))
                working.append(record)
        result = FlowResult()
        for step in self.steps:
            if isinstance(step, NormalizeStep):
                working = self._run_normalize(step, refs, working, now_ms)
            elif isinstance(step, MatchStep):
                self._run_match(step, refs, working, mode, reviewer, result, now_ms)
            elif isinstance(step, LinkStep):
                self._run_link(step, refs, working, result, now_ms)
            else:  # pragma: no cover - defensive
                raise CleaningError(f"unknown step {step!r}")
        return result

    # -- steps ---------------------------------------------------------------------

    def _run_normalize(
        self,
        step: NormalizeStep,
        refs: list[RecordRef],
        working: list[Record],
        now_ms: float,
    ) -> list[Record]:
        normalized: list[Record] = []
        for ref, record in zip(refs, working):
            value = record.get(step.field)
            if value is None or isinstance(value, Null):
                normalized.append(record)
                continue
            cleaned = self.registry.apply(step.normalizer, value)
            if cleaned != value:
                output_id = f"{ref[0]}:{ref[1]}#{step.field}~{step.normalizer}"
                if self.lineage.entry_for(output_id) is None:
                    self.lineage.record(
                        output_id,
                        [f"{ref[0]}:{ref[1]}"],
                        operation=f"normalize:{step.normalizer}",
                        at_ms=now_ms,
                    )
            normalized.append(record.with_field(step.field, cleaned))
        return normalized

    def _candidate_pairs(
        self, step: MatchStep, working: list[Record]
    ) -> Iterable[tuple[int, int]]:
        if step.blocking == "naive":
            return naive_pairs(working)
        if step.blocking == "snm":
            return sorted_neighborhood(
                working, first_letters_key(step.key_field), step.window
            )
        return multi_pass_neighborhood(
            working,
            [first_letters_key(step.key_field), reversed_field_key(step.key_field)],
            step.window,
        )

    def _run_match(
        self,
        step: MatchStep,
        refs: list[RecordRef],
        working: list[Record],
        mode: FlowMode,
        reviewer: Reviewer | None,
        result: FlowResult,
        now_ms: float,
    ) -> None:
        for i, j in self._candidate_pairs(step, working):
            ref_a, ref_b = refs[i], refs[j]
            if ref_a[0] == ref_b[0] and ref_a[1] == ref_b[1]:
                continue
            remembered = self.concordance.lookup(ref_a, ref_b)
            if remembered is not None:
                result.pairs_replayed += 1
                if remembered.decision is MatchDecision.MATCH:
                    result.matched_pairs.append((ref_a, ref_b))
                continue
            result.pairs_compared += 1
            scored = step.matcher.score(working[i], working[j])
            if scored.decision is MatchDecision.MATCH:
                result.auto_decisions += 1
                result.matched_pairs.append((ref_a, ref_b))
                self.concordance.record(
                    Decision(ref_a, ref_b, MatchDecision.MATCH, "auto",
                             scored.score, now_ms)
                )
            elif scored.decision is MatchDecision.POSSIBLE:
                if mode is FlowMode.MINING:
                    assert reviewer is not None
                    verdict = reviewer(working[i], working[j], scored.score)
                    result.human_decisions += 1
                    self.concordance.record(
                        Decision(ref_a, ref_b, verdict, "reviewer",
                                 scored.score, now_ms)
                    )
                    if verdict is MatchDecision.MATCH:
                        result.matched_pairs.append((ref_a, ref_b))
                else:
                    # Trap the exception; extraction continues without it.
                    result.exceptions.append(
                        TrappedException(ref_a, ref_b, scored.score)
                    )
            elif step.record_nonmatches:
                self.concordance.record(
                    Decision(ref_a, ref_b, MatchDecision.NONMATCH, "auto",
                             scored.score, now_ms)
                )
            # plain NONMATCH: not recorded by default — the concordance
            # stores determinations, not quadratically many negatives.

    def _run_link(
        self,
        step: LinkStep,
        refs: list[RecordRef],
        working: list[Record],
        result: FlowResult,
        now_ms: float,
    ) -> None:
        index_of = {ref: i for i, ref in enumerate(refs)}
        parent = list(range(len(refs)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: int, y: int) -> None:
            root_x, root_y = find(x), find(y)
            if root_x != root_y:
                parent[root_y] = root_x

        for ref_a, ref_b in result.matched_pairs:
            union(index_of[ref_a], index_of[ref_b])
        clusters: dict[int, list[int]] = {}
        for i in range(len(refs)):
            clusters.setdefault(find(i), []).append(i)
        priority = {name: rank for rank, name in enumerate(step.source_priority)}
        result.clusters = []
        result.golden_records = []
        for members in clusters.values():
            member_refs = [refs[i] for i in members]
            result.clusters.append(member_refs)
            golden = self._merge(members, refs, working, priority)
            result.golden_records.append(golden)
            if len(members) > 1:
                output_id = "golden:" + "+".join(
                    f"{s}:{r}" for s, r in sorted(member_refs)
                )
                if self.lineage.entry_for(output_id) is None:
                    self.lineage.record(
                        output_id,
                        [f"{s}:{r}" for s, r in member_refs],
                        operation="merge",
                        at_ms=now_ms,
                    )

    def _merge(
        self,
        members: list[int],
        refs: list[RecordRef],
        working: list[Record],
        priority: dict[str, int],
    ) -> Record:
        ordered = sorted(
            members, key=lambda i: priority.get(refs[i][0], len(priority))
        )
        merged: dict[str, Any] = {}
        for i in ordered:
            for name, value in working[i].items():
                if name in merged:
                    continue
                if value is None or isinstance(value, Null) or value == "":
                    continue
                merged[name] = value
        merged["__sources"] = ",".join(sorted({refs[i][0] for i in members}))
        return Record(merged)

"""Unit tests for tree-pattern matching, construction and recursion."""

import pytest

from repro.algebra import (
    AttributePattern,
    BindingTuple,
    BindingsSource,
    CollectionScan,
    Construct,
    ConstructTemplate,
    FixPoint,
    Navigate,
    PatternMatch,
    TemplateText,
    TemplateVar,
    TreePattern,
    build_elements,
)
from repro.algebra.pattern import match_pattern
from repro.errors import ExecutionError
from repro.xmldm import parse_document, serialize
from repro.xmldm.values import Collection, Record


@pytest.fixture
def doc():
    return parse_document(
        '<bib><book year="1998"><title>A</title><author>Smith</author>'
        '<author>Lee</author></book>'
        '<book year="2001"><title>B</title><author>Smith</author></book></bib>'
    )


class TestElementMatching:
    def test_leaf_text_binding(self, doc):
        pattern = TreePattern("title", text_var="t")
        out = list(PatternMatch(CollectionScan("d", [doc]), "d", pattern))
        assert [r["t"] for r in out] == ["A", "B"]

    def test_attribute_binding_and_literal(self, doc):
        pattern = TreePattern(
            "book", attributes=(AttributePattern("year", var="y"),)
        )
        out = list(PatternMatch(CollectionScan("d", [doc]), "d", pattern))
        assert [r["y"] for r in out] == ["1998", "2001"]
        literal = TreePattern(
            "book", attributes=(AttributePattern("year", literal="2001"),),
            children=(TreePattern("title", text_var="t"),),
        )
        out = list(PatternMatch(CollectionScan("d", [doc]), "d", literal))
        assert [r["t"] for r in out] == ["B"]

    def test_missing_attribute_no_match(self, doc):
        pattern = TreePattern("title", attributes=(AttributePattern("id", var="i"),))
        assert list(PatternMatch(CollectionScan("d", [doc]), "d", pattern)) == []

    def test_nested_children_product(self, doc):
        pattern = TreePattern(
            "book",
            children=(
                TreePattern("title", text_var="t"),
                TreePattern("author", text_var="a"),
            ),
        )
        out = list(PatternMatch(CollectionScan("d", [doc]), "d", pattern))
        assert [(r["t"], r["a"]) for r in out] == [
            ("A", "Smith"), ("A", "Lee"), ("B", "Smith"),
        ]

    def test_text_literal_constraint(self, doc):
        pattern = TreePattern(
            "book",
            children=(
                TreePattern("author", text_literal="Lee"),
                TreePattern("title", text_var="t"),
            ),
        )
        out = list(PatternMatch(CollectionScan("d", [doc]), "d", pattern))
        assert [r["t"] for r in out] == ["A"]

    def test_element_var_binds_node(self, doc):
        pattern = TreePattern("book", element_var="e")
        out = list(PatternMatch(CollectionScan("d", [doc]), "d", pattern))
        assert out[0]["e"].tag == "book"

    def test_wildcard_tag(self, doc):
        pattern = TreePattern("*", children=(TreePattern("title", text_var="t"),))
        out = list(PatternMatch(CollectionScan("d", [doc]), "d", pattern))
        assert {r["t"] for r in out} == {"A", "B"}

    def test_descendant_child_pattern(self):
        doc = parse_document("<a><wrap><x>1</x></wrap><x>2</x></a>")
        direct = TreePattern("a", children=(TreePattern("x", text_var="v"),))
        out = list(PatternMatch(CollectionScan("d", [doc]), "d", direct))
        assert [r["v"] for r in out] == ["2"]
        deep = TreePattern(
            "a", children=(TreePattern("x", text_var="v", descendant=True),)
        )
        out = list(PatternMatch(CollectionScan("d", [doc]), "d", deep))
        assert sorted(r["v"] for r in out) == ["1", "2"]

    def test_shared_variable_unification(self):
        doc = parse_document(
            "<r><p><a>1</a><b>1</b></p><p><a>1</a><b>2</b></p></r>"
        )
        pattern = TreePattern(
            "p",
            children=(TreePattern("a", text_var="x"), TreePattern("b", text_var="x")),
        )
        out = list(PatternMatch(CollectionScan("d", [doc]), "d", pattern))
        assert len(out) == 1  # only the p where a == b


class TestRecordMatching:
    def test_fields_as_children(self):
        records = [Record({"id": 1, "name": "Ann"}), Record({"id": 2, "name": "Bob"})]
        pattern = TreePattern(
            "customer",
            children=(TreePattern("id", text_var="i"), TreePattern("name", text_var="n")),
        )
        out = list(PatternMatch(CollectionScan("c", records), "c", pattern))
        assert [(r["i"], r["n"]) for r in out] == [(1, "Ann"), (2, "Bob")]

    def test_field_literal(self):
        records = [Record({"city": "Sea"}), Record({"city": "PDX"})]
        pattern = TreePattern("c", children=(TreePattern("city", text_literal="Sea"),))
        out = list(PatternMatch(CollectionScan("c", records), "c", pattern))
        assert len(out) == 1

    def test_missing_field_no_match(self):
        pattern = TreePattern("c", children=(TreePattern("zzz", text_var="v"),))
        out = list(match_pattern(pattern, Record({"a": 1}), BindingTuple()))
        assert out == []

    def test_collection_iterates(self):
        collection = Collection([Record({"v": 1}), Record({"v": 2})])
        pattern = TreePattern("item", children=(TreePattern("v", text_var="x"),))
        out = list(match_pattern(pattern, collection, BindingTuple()))
        assert [r["x"] for r in out] == [1, 2]

    def test_nested_record_field(self):
        record = Record({"who": Record({"name": "Ann"})})
        pattern = TreePattern(
            "r",
            children=(
                TreePattern("who", children=(TreePattern("name", text_var="n"),)),
            ),
        )
        out = list(match_pattern(pattern, record, BindingTuple()))
        assert out[0]["n"] == "Ann"


class TestConstruct:
    def rows(self, doc):
        pattern = TreePattern(
            "book",
            attributes=(AttributePattern("year", var="y"),),
            children=(
                TreePattern("title", text_var="t"),
                TreePattern("author", text_var="a"),
            ),
        )
        return list(PatternMatch(CollectionScan("d", [doc]), "d", pattern))

    def test_per_binding_when_no_direct_vars(self, doc):
        template = ConstructTemplate(
            "m",
            children=(
                ConstructTemplate("t", children=(TemplateVar("t"),)),
                ConstructTemplate("a", children=(TemplateVar("a"),)),
            ),
        )
        out = list(Construct(BindingsSource(self.rows(doc)), template, "r"))
        assert len(out) == 3

    def test_grouping_by_direct_vars(self, doc):
        template = ConstructTemplate(
            "writer",
            attributes=(("name", TemplateVar("a")),),
            children=(ConstructTemplate("title", children=(TemplateVar("t"),)),),
        )
        out = list(Construct(BindingsSource(self.rows(doc)), template, "r"))
        rendered = [serialize(r["r"]) for r in out]
        assert rendered == [
            '<writer name="Smith"><title>A</title><title>B</title></writer>',
            '<writer name="Lee"><title>A</title></writer>',
        ]

    def test_literal_text_and_attrs(self, doc):
        template = ConstructTemplate(
            "x",
            attributes=(("kind", "book"),),
            children=(TemplateText("title: "), TemplateVar("t")),
        )
        out = list(Construct(BindingsSource(self.rows(doc)[:1]), template, "r"))
        assert serialize(out[0]["r"]) == '<x kind="book">title: A</x>'

    def test_empty_input_constructs_nothing(self):
        template = ConstructTemplate("x")
        assert list(Construct(BindingsSource([]), template, "r")) == []

    def test_record_value_renders_fields(self):
        rows = [BindingTuple({"rec": Record({"a": 1, "b": "two"})})]
        template = ConstructTemplate("wrap", children=(TemplateVar("rec"),))
        elements = build_elements(template, rows)
        assert serialize(elements[0]) == "<wrap><a>1</a><b>two</b></wrap>"

    def test_duplicate_bindings_collapse(self):
        rows = [BindingTuple({"v": 1}), BindingTuple({"v": 1})]
        template = ConstructTemplate("x", children=(TemplateVar("v"),))
        assert len(build_elements(template, rows)) == 1


class TestNavigateOperator:
    def test_navigate_binds_results(self, doc):
        out = list(Navigate(CollectionScan("d", [doc.root]), "d", "//title", "t"))
        assert [r["t"].text_content() for r in out] == ["A", "B"]


class TestFixPoint:
    def test_transitive_closure(self):
        edges = [(1, 2), (2, 3), (3, 4)]
        seed = BindingsSource([BindingTuple({"a": 1, "b": 2})])

        def step(delta):
            out = []
            for row in delta:
                for source, target in edges:
                    if source == row["b"]:
                        out.append(BindingTuple({"a": row["a"], "b": target}))
            return out

        result = sorted((r["a"], r["b"]) for r in FixPoint(seed, step))
        assert result == [(1, 2), (1, 3), (1, 4)]

    def test_cycle_terminates(self):
        edges = [(1, 2), (2, 1)]
        seed = BindingsSource([BindingTuple({"a": 1, "b": 2})])

        def step(delta):
            out = []
            for row in delta:
                for source, target in edges:
                    if source == row["b"]:
                        out.append(BindingTuple({"a": row["a"], "b": target}))
            return out

        assert len(list(FixPoint(seed, step))) == 2

    def test_runaway_guard(self):
        seed = BindingsSource([BindingTuple({"n": 0})])

        def step(delta):
            return [BindingTuple({"n": row["n"] + 1}) for row in delta]

        with pytest.raises(ExecutionError):
            list(FixPoint(seed, step, max_rounds=10))

"""Property-based tests (hypothesis) for core invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.cleaning.similarity import (
    jaccard_tokens,
    jaro,
    jaro_winkler,
    levenshtein,
    ngram_similarity,
    string_similarity,
)
from repro.materialize.matching import conditions_subsumed, implies
from repro.query import ast as qast
from repro.sql.database import Database
from repro.xmldm.nodes import Element, Text
from repro.xmldm.parser import parse_document
from repro.xmldm.serializer import serialize
from repro.xmldm.values import Record, compare_values

# -- strategies ----------------------------------------------------------------

tag_names = st.text(string.ascii_lowercase, min_size=1, max_size=8)
xml_text = st.text(
    st.characters(blacklist_categories=("Cs", "Cc")), max_size=30
)
attr_values = st.text(
    st.characters(blacklist_categories=("Cs", "Cc")), max_size=20
)


@st.composite
def elements(draw, depth=2):
    tag = draw(tag_names)
    attrs = draw(
        st.dictionaries(tag_names, attr_values, max_size=3)
    )
    element = Element(tag, attrs)
    if depth > 0:
        children = draw(
            st.lists(
                st.one_of(
                    xml_text.map(Text),
                    elements(depth=depth - 1),
                ),
                max_size=3,
            )
        )
        for child in children:
            element.append(child)
    return element


simple_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
)


def normalized(element: Element) -> Element:
    """Merge adjacent text nodes and drop empty ones.

    XML text cannot represent the distinction between ``Text("a"),
    Text("b")`` and ``Text("ab")``, nor an empty text node — round-trips
    are identity up to this normalization.
    """
    out = Element(element.tag, dict(element.attributes))
    pending = ""
    for child in element.children:
        if isinstance(child, Text):
            pending += child.value
            continue
        if pending:
            out.append(Text(pending))
            pending = ""
        if isinstance(child, Element):
            out.append(normalized(child))
        else:
            out.append(child)
    if pending:
        out.append(Text(pending))
    return out


class TestXMLRoundTrip:
    @given(elements())
    @settings(max_examples=120, deadline=None)
    def test_serialize_parse_identity(self, element):
        text = serialize(element)
        reparsed = parse_document(text)
        assert reparsed.root == normalized(element)

    @given(xml_text)
    @settings(max_examples=80, deadline=None)
    def test_text_escaping_roundtrip(self, value):
        element = Element("t", children=[Text(value)])
        assert parse_document(serialize(element)).root.text_content() == value

    @given(attr_values)
    @settings(max_examples=80, deadline=None)
    def test_attribute_escaping_roundtrip(self, value):
        element = Element("t", {"a": value})
        assert parse_document(serialize(element)).root.attributes["a"] == value


class TestValueOrder:
    @given(simple_values, simple_values)
    @settings(max_examples=120, deadline=None)
    def test_antisymmetry(self, a, b):
        assert compare_values(a, b) == -compare_values(b, a)

    @given(simple_values, simple_values, simple_values)
    @settings(max_examples=120, deadline=None)
    def test_transitivity(self, a, b, c):
        if compare_values(a, b) <= 0 and compare_values(b, c) <= 0:
            assert compare_values(a, c) <= 0

    @given(simple_values)
    def test_reflexive(self, a):
        assert compare_values(a, a) == 0


short_strings = st.text(string.ascii_lowercase + " ", max_size=12)


class TestSimilarityAxioms:
    @given(short_strings, short_strings)
    @settings(max_examples=150, deadline=None)
    def test_levenshtein_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_strings)
    def test_levenshtein_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(short_strings, short_strings, short_strings)
    @settings(max_examples=80, deadline=None)
    def test_levenshtein_triangle(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_strings, short_strings)
    @settings(max_examples=150, deadline=None)
    def test_metrics_in_unit_range(self, a, b):
        for metric in (string_similarity, jaro, jaro_winkler, jaccard_tokens,
                       ngram_similarity):
            value = metric(a, b)
            assert 0.0 <= value <= 1.0 + 1e-9

    @given(short_strings)
    def test_metrics_identity(self, a):
        for metric in (string_similarity, jaro_winkler, ngram_similarity):
            assert metric(a, a) == 1.0

    @given(short_strings, short_strings)
    @settings(max_examples=100, deadline=None)
    def test_jaro_symmetric(self, a, b):
        assert abs(jaro(a, b) - jaro(b, a)) < 1e-12


bounds = st.integers(min_value=-50, max_value=50)
range_ops = st.sampled_from([">", ">=", "<", "<="])


def make_range(var, op, bound):
    return qast.BinOp(op, qast.Var(var), qast.Literal(bound))


class TestContainmentSoundness:
    @given(range_ops, bounds, range_ops, bounds, st.integers(-60, 60))
    @settings(max_examples=300, deadline=None)
    def test_implies_is_sound_on_ranges(self, op_s, bound_s, op_w, bound_w, x):
        """If implies(strong, weak), every x satisfying strong satisfies weak."""
        strong = make_range("v", op_s, bound_s)
        weak = make_range("v", op_w, bound_w)
        if not implies(strong, weak):
            return

        def holds(op, bound):
            return {"<": x < bound, "<=": x <= bound,
                    ">": x > bound, ">=": x >= bound}[op]

        if holds(op_s, bound_s):
            assert holds(op_w, bound_w)

    @given(st.lists(st.tuples(range_ops, bounds), max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_subsumed_by_itself(self, specs):
        conditions = [make_range("v", op, b) for op, b in specs]
        ok, residual = conditions_subsumed(conditions, conditions)
        assert ok
        assert residual == []


rows = st.lists(
    st.tuples(st.integers(0, 50), st.text(string.ascii_lowercase, max_size=5)),
    max_size=25,
)


class TestSQLAgainstReference:
    @given(rows, st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_filter_matches_python(self, data, threshold):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.insert_rows("t", data)
        got = sorted(db.execute(f"SELECT a FROM t WHERE a > {threshold}").rows)
        expected = sorted((a,) for a, _ in data if a > threshold)
        assert got == expected

    @given(rows)
    @settings(max_examples=60, deadline=None)
    def test_aggregates_match_python(self, data):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.insert_rows("t", data)
        count, total = db.execute("SELECT COUNT(*), SUM(a) FROM t").rows[0]
        assert count == len(data)
        assert total == (sum(a for a, _ in data) if data else None)

    @given(rows)
    @settings(max_examples=60, deadline=None)
    def test_order_by_sorted(self, data):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.insert_rows("t", data)
        got = [r[0] for r in db.execute("SELECT a FROM t ORDER BY a").rows]
        assert got == sorted(a for a, _ in data)

    @given(rows)
    @settings(max_examples=40, deadline=None)
    def test_distinct_is_set(self, data):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.insert_rows("t", data)
        got = db.execute("SELECT DISTINCT a FROM t").rows
        assert len(got) == len({a for a, _ in data})


class TestRecordInvariants:
    @given(st.dictionaries(tag_names, simple_values, max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_record_equality_hash_consistent(self, fields):
        a = Record(fields)
        b = Record(dict(reversed(list(fields.items()))))
        assert a == b
        assert hash(a) == hash(b)

"""Web-site publishing: integrated views, lenses, caching, clustering.

The paper's second application class (section 2): "companies who need to
build large-scale web sites which serve information from multiple
internal sources ... provide the designers of the web site an already
integrated view of their data sources."

The web team gets one mediated view (``product_page``) over the content
team's XML catalog, the ERP's stock table and a partner review service —
then serves it through lenses with device formatting, accelerates it
with materialized views, and scales it with engine instances.

Run:  python examples/website_publishing.py
"""

from repro import (
    EngineCluster,
    Lens,
    MaterializationManager,
    NimbleEngine,
    RefreshPolicy,
)
from repro.core.lens import LensParameter, LensServer
from repro.workloads import make_website_workload


def main() -> None:
    workload = make_website_workload(n_products=40, seed=77)
    manager = MaterializationManager(workload.clock)
    engine = NimbleEngine(workload.catalog, materializer=manager)

    # -- the integrated view, straight from the mediated schema ------------
    print("== product_page view (XML catalog x relational stock) ==")
    result = engine.query(
        'WHERE <page sku=$s><name>$n</name><price>$p</price></page> '
        'IN "product_page", $p < 50 '
        "CONSTRUCT <bargain sku=$s><name>$n</name><price>$p</price></bargain> "
        "ORDER BY $p"
    )
    print(f"  bargains under $50: {len(result.elements)}")
    print(f"  cold latency: {result.stats.elapsed_virtual_ms:.1f} ms "
          f"({result.stats.remote_calls} remote calls)")

    # -- lens front end with device targeting ---------------------------------
    server = LensServer(engine)
    server.access.add_user("storefront", "pw", {"public"})
    server.register(
        Lens(
            name="product_search",
            queries={
                "under_price": (
                    'WHERE <page sku=$s><name>$n</name><price>$p</price></page> '
                    'IN "product_page", $p < {max_price} '
                    "CONSTRUCT <hit sku=$s><name>$n</name><price>$p</price></hit> "
                    "ORDER BY $p"
                )
            },
            parameters=(LensParameter("max_price", required=False, default=100),),
            default_device="web",
            required_roles=frozenset({"public"}),
        )
    )
    print("\n== lens rendering, per device ==")
    for device in ("web", "wireless", "text"):
        invocation = server.login_and_invoke(
            "product_search", "under_price", "storefront", "pw",
            params={"max_price": 80}, device=device,
        )
        first_line = (invocation.rendered.splitlines() or ["<no hits>"])[0]
        print(f"  [{device:8}] {first_line[:70]}")

    # -- materialize the hot fragments ------------------------------------------
    hot_query = (
        'WHERE <s><sku>$s</sku><price>$p</price><quantity>$q</quantity></s> '
        'IN "stock" CONSTRUCT <row><s>$s</s><p>$p</p><q>$q</q></row>'
    )
    cold = engine.query(hot_query).stats.elapsed_virtual_ms
    engine.materialize_query_fragments(hot_query, RefreshPolicy.ttl(60_000))
    warm = engine.query(hot_query).stats.elapsed_virtual_ms
    print("\n== caching the stock fragment ==")
    print(f"  virtual query:      {cold:8.2f} ms")
    print(f"  from local store:   {warm:8.2f} ms  "
          f"({cold / max(warm, 1e-9):.0f}x faster, data refreshed on demand)")
    print(f"  store: {manager.summary()}")

    # -- aggregates: the merchandising dashboard -----------------------------------
    print("\n== category dashboard (aggregates in CONSTRUCT) ==")
    dashboard = engine.query(
        'WHERE <page sku=$s><category>$cat</category><price>$p</price>'
        '<in_stock>$q</in_stock></page> IN "product_page" '
        "CONSTRUCT <category name=$cat>"
        "<products>count($s)</products>"
        "<avg_price>avg($p)</avg_price>"
        "<units>sum($q)</units>"
        "</category>"
    )
    for element in dashboard.elements:
        name = element.attributes["name"]
        products = element.first_child("products").text_content()
        avg_price = float(element.first_child("avg_price").text_content())
        print(f"  {name:<12} {products} products, avg ${avg_price:.2f}")

    # -- scale out with engine instances --------------------------------------------
    print("\n== load balancing a burst of page loads ==")
    page_query = (
        'WHERE <page sku=$s><name>$n</name></page> IN "product_page" '
        "CONSTRUCT <row>$n</row>"
    )
    for instances in (1, 4):
        cluster = EngineCluster(engine, instances=instances,
                                strategy="least_loaded")
        cluster.run_schedule([(0.0, page_query)] * 8)
        print(f"  {instances} instance(s): p95 latency "
              f"{cluster.percentile_latency(0.95):8.1f} ms, "
              f"throughput {cluster.throughput_qps():6.1f} q/s")


if __name__ == "__main__":
    main()

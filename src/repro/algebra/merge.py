"""Mergeable partial results: the gather half of scatter-gather.

Shard-local engines each produce a *partial* — binding rows, sorted
rows, top-K representatives, or per-group aggregate states — and the
router folds partials into the exact answer a single engine over the
union of the data would have produced.  Four merge shapes cover the
query surface:

* **union** — plain concatenation in shard-range order (the identity
  merge; exact when data is clustered by the shard key);
* **k-way sorted merge** — shards sort locally, the router streams the
  global order back together with ties broken towards earlier shards
  (reproducing the stable sort over concatenated input);
* **top-K of top-Ks** — each shard ships at most K candidate rows (one
  per group, its local best); any globally top-K group's best row is
  necessarily among its shard's top K, so the merged+deduped stream
  truncated to K is exact;
* **partial aggregates** — per-group states (count; sum; avg as
  sum+count; min/max) built shard-side with exactly the coercion and
  NULL-skipping semantics of :func:`construct.build_elements`, merged
  in shard order so group first-seen order matches the concatenated
  input.  Only the small states cross the wire.

Integer and string aggregates merge bit-identically; float sums merge
associatively, which can differ from the sequential sum in the last
ulp — the classic distributed-aggregation caveat.
"""

from __future__ import annotations

from functools import cmp_to_key
from typing import Any, Callable, Sequence

from repro.algebra.construct import (
    ConstructTemplate,
    TemplateAggregate,
    TemplateVar,
    _numeric_or_self,
    build_elements,
)
from repro.algebra.tuples import BindingTuple
from repro.xmldm.nodes import Element
from repro.xmldm.values import NULL, Null, _comparison_key, compare_values

SortKeys = Sequence[tuple[Callable[[BindingTuple], Any], bool]]


def _aggregate_only(template: ConstructTemplate) -> bool:
    """The subtree binds no variables: every group renders it as exactly
    one element whose content is text plus aggregates over the group's
    members (an empty grouping key collapses the members into one
    group), so it never needs more than the aggregate states."""
    if any(isinstance(value, TemplateVar) for _, value in template.attributes):
        return False
    for item in template.children:
        if isinstance(item, TemplateVar):
            return False
        if isinstance(item, ConstructTemplate) and not _aggregate_only(item):
            return False
    return True


def flat_template(template: ConstructTemplate) -> bool:
    """The element depends only on its group representative plus
    aggregate states, so partials can ship representatives instead of
    member rows.  Nested element templates disqualify — except
    variable-free ones (``<total>sum($v)</total>``, the usual parse of
    an aggregate wrapped in its own tag), which render one fixed child
    per group."""
    return all(
        not isinstance(item, ConstructTemplate) or _aggregate_only(item)
        for item in template.children
    )


def collect_aggregates(
    template: ConstructTemplate,
) -> tuple[TemplateAggregate, ...]:
    """Every aggregate in the subtree, in document order — the slot
    numbering :class:`PartialGroups` and :func:`_build_one` share."""
    found: list[TemplateAggregate] = []
    for item in template.children:
        if isinstance(item, TemplateAggregate):
            found.append(item)
        elif isinstance(item, ConstructTemplate):
            found.extend(collect_aggregates(item))
    return tuple(found)


def template_group_vars(template: ConstructTemplate) -> tuple[str, ...]:
    """The grouping key :func:`build_elements` uses."""
    return template.direct_vars() or template.all_vars()


def group_key(row: BindingTuple, group_vars: Sequence[str]) -> tuple:
    return tuple(_comparison_key(row.get(var, NULL)) for var in group_vars)


def compare_rows(keys: SortKeys) -> Callable[[BindingTuple, BindingTuple], int]:
    """The same comparator :class:`~repro.algebra.operators.Sort` uses."""

    def compare(a: BindingTuple, b: BindingTuple) -> int:
        for fn, descending in keys:
            result = compare_values(fn(a), fn(b))
            if result != 0:
                return -result if descending else result
        return 0

    return compare


def sort_rows(rows: list[BindingTuple], keys: SortKeys) -> list[BindingTuple]:
    """Stable local sort, bit-identical to the Sort operator."""
    ordered = list(rows)
    ordered.sort(key=cmp_to_key(compare_rows(keys)))
    return ordered


def merge_sorted(
    streams: Sequence[list[BindingTuple]], keys: SortKeys
) -> list[BindingTuple]:
    """K-way streaming merge of per-shard sorted runs.

    Ties break towards the earliest stream, then stream-local order —
    exactly the stable sort's tie-breaking over the concatenation of
    the streams in order.
    """
    compare = compare_rows(keys)
    heads = [0] * len(streams)
    merged: list[BindingTuple] = []
    total = sum(len(stream) for stream in streams)
    while len(merged) < total:
        best = -1
        for index, stream in enumerate(streams):
            position = heads[index]
            if position >= len(stream):
                continue
            if best < 0 or compare(stream[position], streams[best][heads[best]]) < 0:
                best = index
        merged.append(streams[best][heads[best]])
        heads[best] += 1
    return merged


def dedup_rows(
    rows: list[BindingTuple], group_vars: Sequence[str]
) -> list[BindingTuple]:
    """First-seen representative per group key (construct's grouping)."""
    seen: set[tuple] = set()
    kept: list[BindingTuple] = []
    for row in rows:
        key = group_key(row, group_vars)
        if key in seen:
            continue
        seen.add(key)
        kept.append(row)
    return kept


def topk_rows(
    rows: list[BindingTuple],
    keys: SortKeys,
    count: int,
    group_vars: Sequence[str],
) -> list[BindingTuple]:
    """A shard's top-K candidate rows: local best row per group, best K
    groups only.  Sound because a globally top-K group beats fewer than
    K groups everywhere, its own shard included."""
    return dedup_rows(sort_rows(rows, keys), group_vars)[:count]


# -- partial aggregation -----------------------------------------------------


class _GroupState:
    """Per-group mergeable accumulators, one slot per template aggregate."""

    __slots__ = ("representative", "slots")

    def __init__(self, representative: BindingTuple, n_aggregates: int):
        self.representative = representative
        # count -> int; sum/avg -> [acc, present]; min/max -> [value, seen?]
        self.slots: list[Any] = [None] * n_aggregates


class PartialGroups:
    """Mergeable partial-aggregation state for one flat template.

    ``observe`` folds rows in shard-local order; ``merge`` folds whole
    shard partials in shard order, preserving group first-seen order
    across the concatenated input; ``finalize`` emits the exact
    elements :func:`construct.build_elements` would build over the full
    row stream.
    """

    def __init__(self, template: ConstructTemplate):
        if not flat_template(template):
            raise ValueError("partial aggregation requires a flat template")
        self.template = template
        self.group_vars = template_group_vars(template)
        self.aggregates = collect_aggregates(template)
        self.groups: dict[tuple, _GroupState] = {}

    def observe(self, row: BindingTuple) -> None:
        key = group_key(row, self.group_vars)
        state = self.groups.get(key)
        if state is None:
            state = _GroupState(row, len(self.aggregates))
            self.groups[key] = state
        for index, item in enumerate(self.aggregates):
            value = row.get(item.var, NULL)
            if isinstance(value, Null) or value is None:
                continue
            if item.kind != "count":
                value = _numeric_or_self(value)
                # coercion can't make a value absent, so `present`
                # counts the same rows the row path counts
            self._fold(state, index, item.kind, value, 1)

    def merge(self, other: "PartialGroups") -> None:
        for key, incoming in other.groups.items():
            state = self.groups.get(key)
            if state is None:
                self.groups[key] = incoming
                continue
            for index, item in enumerate(self.aggregates):
                slot = incoming.slots[index]
                if slot is None:
                    continue
                if item.kind == "count":
                    self._fold(state, index, "count", None, slot)
                elif item.kind in ("sum", "avg"):
                    self._fold(state, index, item.kind, slot[0], slot[1])
                else:
                    self._fold(state, index, item.kind, slot[0], 1)

    def _fold(self, state: _GroupState, index: int, kind: str,
              value: Any, count: int) -> None:
        slot = state.slots[index]
        if kind == "count":
            state.slots[index] = (slot or 0) + count
            return
        if kind in ("sum", "avg"):
            if slot is None:
                slot = [0, 0]
                state.slots[index] = slot
            slot[0] = slot[0] + value
            slot[1] += count
            return
        if slot is None:
            state.slots[index] = [value, True]
            return
        result = compare_values(value, slot[0])
        if (kind == "min" and result < 0) or (kind == "max" and result > 0):
            slot[0] = value

    def finalize(self) -> list[Element]:
        """Instantiate the template from the merged states."""
        elements: list[Element] = []
        for state in self.groups.values():
            synthetic = {
                _slot_var(index): _finish(item.kind, state.slots[index])
                for index, item in enumerate(self.aggregates)
            }
            element = _build_one(self.template, state.representative, synthetic)
            elements.append(element)
        return elements

    def wire_size(self) -> tuple[int, int]:
        """(bytes, values) estimate of the partial crossing the wire."""
        from repro.sources.base import _wire_bytes  # avoids an import cycle

        total_bytes = 0
        total_values = 0
        for state in self.groups.values():
            total_bytes += 24  # per-group framing
            for var in self.group_vars:
                total_bytes += 8 + len(var) + _wire_bytes(
                    state.representative.get(var, NULL)
                )
                total_values += 1
            for slot in state.slots:
                total_bytes += 16
                total_values += 1
        return total_bytes, total_values


def _slot_var(index: int) -> str:
    return f"__agg_{index}"


def _finish(kind: str, slot: Any) -> Any:
    if kind == "count":
        return slot or 0
    if slot is None:
        return NULL
    if kind == "sum":
        return slot[0]
    if kind == "avg":
        return slot[0] / slot[1]
    return slot[0]


def _build_one(
    template: ConstructTemplate,
    representative: BindingTuple,
    finished_aggregates: dict[str, Any],
) -> Element:
    """Build one element from a representative plus finished aggregates.

    Rewrites each aggregate item into a plain variable reference bound
    to its finished value, then reuses :func:`build_elements` on the
    single representative row — one code path for rendering, so text
    coercion and NULL handling can never drift from the row engine.
    """
    counter = iter(range(len(finished_aggregates)))
    rewritten = _rewrite(template, counter)
    bindings = dict(representative.as_dict())
    bindings.update(finished_aggregates)
    built = build_elements(rewritten, [BindingTuple(bindings)])
    return built[0]


def _rewrite(template: ConstructTemplate, counter) -> ConstructTemplate:
    """Swap each aggregate (document order) for its slot variable."""
    children: list[Any] = []
    for item in template.children:
        if isinstance(item, TemplateAggregate):
            children.append(TemplateVar(_slot_var(next(counter))))
        elif isinstance(item, ConstructTemplate):
            children.append(_rewrite(item, counter))
        else:
            children.append(item)
    return ConstructTemplate(
        template.tag, template.attributes, tuple(children)
    )


def rows_wire_size(rows: list[BindingTuple]) -> tuple[int, int]:
    """(bytes, values) estimate of shipping binding rows wholesale."""
    from repro.sources.base import _wire_bytes  # avoids an import cycle

    total_bytes = 0
    total_values = 0
    for row in rows:
        total_bytes += 24
        for name, value in row.as_dict().items():
            total_bytes += 8 + len(name) + _wire_bytes(value)
            total_values += 1
    return total_bytes, total_values


__all__ = [
    "PartialGroups",
    "compare_rows",
    "dedup_rows",
    "flat_template",
    "group_key",
    "merge_sorted",
    "rows_wire_size",
    "sort_rows",
    "template_group_vars",
    "topk_rows",
]

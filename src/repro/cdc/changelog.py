"""Per-source change feeds: the capture half of CDC.

Each CDC-enabled source owns one :class:`ChangeLog`.  Mutations append
:class:`ChangeRecord`s with a per-source monotonically increasing
sequence number; consumers (the incremental materializer, the scoped
cache invalidator) remember a high-water sequence per source and drain
``since(high_water)`` on refresh — never a full re-read.

Four operations cover the delta algebra:

* ``insert`` — a new keyed row appeared (``row`` is the after-image);
* ``update`` — an existing key's row changed (``before`` + ``row``);
* ``delete`` — a key's row disappeared (``before`` is the last image);
* ``reset`` — the relation changed in a way deltas cannot describe
  (rows reordered, duplicate keys, no key at all): consumers must fall
  back to a full rebuild of anything derived from the relation.

For XML sources the records also carry the raw :class:`Element`
subtrees (``node``/``before_node``) so pattern-matching consumers can
re-derive bindings bit-identically to a fresh scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.simtime import SimClock
from repro.xmldm.nodes import Element
from repro.xmldm.values import Record

#: the change operations a record may carry
CHANGE_OPS = ("insert", "update", "delete", "reset")


@dataclass(frozen=True)
class ChangeRecord:
    """One captured mutation on one source relation.

    ``key`` is the value of the relation's declared key field; ``row``
    is the after-image (None for deletes), ``before`` the before-image
    (None for inserts).  ``seq`` is unique and monotonically increasing
    *per source*, across all of that source's relations.
    """

    seq: int
    op: str
    source: str
    relation: str
    key: Any = None
    row: Record | None = None
    before: Record | None = None
    #: raw subtrees for XML relations (None for relational rows)
    node: Element | None = None
    before_node: Element | None = None
    at_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in CHANGE_OPS:
            raise ValueError(f"unknown change op {self.op!r}")


@dataclass
class ChangeLog:
    """The append-only change feed of one source.

    ``declare_key(relation, field)`` names the field whose value keys
    rows of that relation; emission and all delta consumers use it.
    ``since(seq)`` yields records strictly after ``seq`` in order.
    """

    source_name: str
    clock: SimClock
    _records: list[ChangeRecord] = field(default_factory=list)
    _keys: dict[str, str] = field(default_factory=dict)
    _seq: int = 0

    # -- key declarations -------------------------------------------------

    def declare_key(self, relation: str, key_field: str) -> None:
        self._keys[relation] = key_field

    def key_field(self, relation: str) -> str | None:
        return self._keys.get(relation)

    # -- emission ---------------------------------------------------------

    def emit(
        self,
        op: str,
        relation: str,
        key: Any = None,
        row: Record | None = None,
        before: Record | None = None,
        node: Element | None = None,
        before_node: Element | None = None,
    ) -> ChangeRecord:
        self._seq += 1
        record = ChangeRecord(
            seq=self._seq,
            op=op,
            source=self.source_name,
            relation=relation,
            key=key,
            row=row,
            before=before,
            node=node,
            before_node=before_node,
            at_ms=self.clock.now,
        )
        self._records.append(record)
        return record

    def emit_reset(self, relation: str) -> ChangeRecord:
        """The blunt record: derived state over ``relation`` must rebuild."""
        return self.emit("reset", relation)

    # -- consumption ------------------------------------------------------

    @property
    def latest_seq(self) -> int:
        return self._seq

    def since(self, seq: int) -> list[ChangeRecord]:
        """Records with ``record.seq > seq``, oldest first."""
        # sequence numbers are dense (1, 2, ...), so slice directly
        start = max(0, min(seq, self._seq))
        return self._records[start:]

    def __len__(self) -> int:
        return len(self._records)


__all__ = ["CHANGE_OPS", "ChangeLog", "ChangeRecord"]

"""Resilience: fault injection, retries, breakers, degraded reads.

The paper observes that with enough sources "the probability that they
are all available simultaneously is nearly zero" (section 3.4) and
answers with partial results.  This package supplies the machinery in
front of that last resort:

* :class:`FaultModel` — seeded per-call transient faults (failures,
  slow calls, mid-stream drops) charged to the virtual clock;
* :class:`RetryPolicy` — bounded retries with deterministic
  exponential backoff;
* :class:`CircuitBreaker` — per-source closed/open/half-open gate that
  fails fast under sustained failure;
* :class:`ResiliencePolicy` / :class:`ResilientExecutor` — the call
  path combining the above with per-call and per-query deadlines;
* :class:`FallbackRegistry` — replica fragments served as degraded
  reads when everything else has given up.

The engine's ladder per failing fragment: retry -> breaker fail-fast ->
stale materialized fragment -> registered replica -> SKIP (annotated).
"""

from repro.resilience.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.resilience.executor import ResiliencePolicy, ResilientExecutor
from repro.resilience.fallback import FallbackRegistry
from repro.resilience.faults import FaultModel
from repro.resilience.retry import RetryPolicy

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "FallbackRegistry",
    "FaultModel",
    "ResiliencePolicy",
    "ResilientExecutor",
    "RetryPolicy",
]

"""Canonical cache identities for fragment results.

One key scheme serves every access path: independent fetches key on the
fragment alone, dependent-join probes and batched probes append a
canonical rendering of their parameter values.  Identical work therefore
lands on one cache entry no matter which operator issued it.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.materialize.matching import fragment_key
from repro.sources.base import Fragment
from repro.xmldm.values import Null


def value_text(value: Any) -> str:
    """Stable textual identity of one parameter value."""
    if isinstance(value, Null):
        return "NULL"
    return f"{type(value).__name__}:{value!r}"


def params_key(params: Mapping[str, Any] | None) -> str:
    """Canonical identity of a parameter binding (order-insensitive)."""
    if not params:
        return ""
    return "&".join(
        f"{name}={value_text(value)}" for name, value in sorted(params.items())
    )


def result_key(fragment: Fragment, params: Mapping[str, Any] | None = None) -> str:
    """Full cache key of one fragment execution: shape plus parameters."""
    base = fragment_key(fragment)
    bound = params_key(params)
    return f"{base}#{bound}" if bound else base

"""Semantic analysis: variable binding and safety checks.

A query is *safe* when every variable used in a condition, in the
CONSTRUCT template or in ORDER BY is bound by at least one pattern
clause.  The binder also records which variables each clause binds —
the decomposer and optimizer consume that map.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BindingError
from repro.query import ast


@dataclass
class BoundQuery:
    """A query plus its variable-binding analysis."""

    query: ast.Query
    #: variables bound by each pattern clause, in clause order
    clause_vars: list[tuple[str, ...]]
    #: union of all bound variables
    bound_vars: frozenset[str]
    #: variables each condition clause needs, in condition order
    condition_vars: list[frozenset[str]]
    #: variables the construct template uses
    output_vars: frozenset[str]


def bind_query(query: ast.Query) -> BoundQuery:
    """Check safety and build the binding analysis for ``query``."""
    if not query.pattern_clauses:
        raise BindingError("a query needs at least one pattern clause")
    clause_vars: list[tuple[str, ...]] = []
    bound: set[str] = set()
    for clause in query.pattern_clauses:
        variables = tuple(clause.pattern.variables())
        clause_vars.append(variables)
        bound.update(variables)

    condition_vars: list[frozenset[str]] = []
    for condition in query.condition_clauses:
        needed = frozenset(ast.expr_variables(condition.expr))
        missing = needed - bound
        if missing:
            raise BindingError(
                f"condition {condition.expr} uses unbound variables: "
                f"{', '.join('$' + v for v in sorted(missing))}"
            )
        condition_vars.append(needed)

    output_vars = frozenset(query.construct.variables())
    missing = output_vars - bound
    if missing:
        raise BindingError(
            "CONSTRUCT uses unbound variables: "
            + ", ".join("$" + v for v in sorted(missing))
        )

    for spec in query.order_by:
        needed = frozenset(ast.expr_variables(spec.expr))
        missing = needed - bound
        if missing:
            raise BindingError(
                "ORDER BY uses unbound variables: "
                + ", ".join("$" + v for v in sorted(missing))
            )

    return BoundQuery(
        query=query,
        clause_vars=clause_vars,
        bound_vars=frozenset(bound),
        condition_vars=condition_vars,
        output_vars=output_vars,
    )

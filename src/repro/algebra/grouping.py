"""Grouping and aggregation over binding tuples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.algebra.operators import Operator, ValueFn
from repro.algebra.tuples import BindingTuple
from repro.algebra.vector import (
    DEFAULT_BATCH_ROWS,
    MISSING,
    BatchCursor,
    RecordBatch,
    RowBuffer,
)
from repro.xmldm.values import NULL, Collection, Null, _comparison_key, values_equal


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: bind ``out_var`` to ``kind`` over ``value_fn``.

    ``kind`` is one of count/sum/avg/min/max; NULL inputs are skipped
    (count counts non-NULL inputs; use value_fn=None to count tuples).
    """

    out_var: str
    kind: str
    value_fn: ValueFn | None = None

    _KINDS = ("count", "sum", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown aggregate kind {self.kind!r}")


def _aggregate(kind: str, values: list[Any]) -> Any:
    present = [v for v in values if not isinstance(v, Null) and v is not None]
    if kind == "count":
        return len(present)
    if not present:
        return NULL
    if kind == "sum":
        return sum(present)
    if kind == "avg":
        return sum(present) / len(present)
    if kind == "min":
        return min(present, key=_comparison_key)
    return max(present, key=_comparison_key)


class GroupBy(Operator):
    """Group tuples by variables; optionally nest each group.

    Output: one tuple per distinct combination of ``group_vars`` carrying
    those variables, each aggregate in ``aggregates``, and — when
    ``collect_var`` is set — a :class:`Collection` of the group's member
    tuples projected to ``collect_fields`` (as Records).  The nesting
    form is what Construct uses for grouped element building.
    """

    def __init__(
        self,
        child: Operator,
        group_vars: list[str] | tuple[str, ...],
        aggregates: list[AggregateSpec] | tuple[AggregateSpec, ...] = (),
        collect_var: str | None = None,
        collect_fields: tuple[str, ...] = (),
    ):
        super().__init__(child)
        self.group_vars = tuple(group_vars)
        self.aggregates = tuple(aggregates)
        self.collect_var = collect_var
        self.collect_fields = tuple(collect_fields)

    def _produce(self) -> Iterator[BindingTuple]:
        groups: dict[tuple, list[BindingTuple]] = {}
        order: list[tuple] = []
        for row in self.children[0]:
            key = tuple(
                _comparison_key(row.get(var, NULL)) for var in self.group_vars
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        for key in order:
            members = groups[key]
            representative = members[0]
            out = representative.project(self.group_vars)
            for spec in self.aggregates:
                values = (
                    [1 for _ in members]
                    if spec.value_fn is None
                    else [spec.value_fn(row) for row in members]
                )
                if spec.value_fn is None and spec.kind == "count":
                    result: Any = len(members)
                else:
                    result = _aggregate(spec.kind, values)
                extended = out.extend(spec.out_var, result)
                assert extended is not None
                out = extended
            if self.collect_var is not None:
                from repro.xmldm.values import Record

                collected = Collection(
                    Record(
                        {
                            field: member.get(field, NULL)
                            for field in (self.collect_fields or member.variables)
                        }
                    )
                    for member in members
                )
                extended = out.extend(self.collect_var, collected)
                assert extended is not None
                out = extended
            yield out

    def _produce_batches(self) -> Iterator[RecordBatch]:
        from repro.xmldm.values import Record

        groups: dict[tuple, list[tuple[RecordBatch, int]]] = {}
        order: list[tuple] = []
        for batch in self.children[0].batches():
            group_columns = [batch.columns.get(var) for var in self.group_vars]
            for index in batch.live_indices():
                parts = []
                for column in group_columns:
                    value = MISSING if column is None else column[index]
                    parts.append(
                        _comparison_key(NULL if value is MISSING else value)
                    )
                key = tuple(parts)
                members = groups.get(key)
                if members is None:
                    groups[key] = members = []
                    order.append(key)
                members.append((batch, index))
        cursor = BatchCursor()
        buffer = RowBuffer(self._batch_rows or DEFAULT_BATCH_ROWS)
        for key in order:
            members = groups[key]
            rep_batch, rep_index = members[0]
            out: dict[str, Any] = {}
            for var in self.group_vars:
                column = rep_batch.columns.get(var)
                if column is not None:
                    value = column[rep_index]
                    if value is not MISSING:
                        out[var] = value
            for spec in self.aggregates:
                if spec.value_fn is None and spec.kind == "count":
                    result: Any = len(members)
                elif spec.value_fn is None:
                    result = _aggregate(spec.kind, [1] * len(members))
                else:
                    values = []
                    for member_batch, member_index in members:
                        cursor.batch = member_batch
                        cursor.index = member_index
                        values.append(spec.value_fn(cursor))
                    result = _aggregate(spec.kind, values)
                assert spec.out_var not in out or values_equal(
                    out[spec.out_var], result
                )
                out.setdefault(spec.out_var, result)
            if self.collect_var is not None:
                records = []
                for member_batch, member_index in members:
                    cursor.batch = member_batch
                    cursor.index = member_index
                    fields = self.collect_fields or cursor.variables
                    records.append(
                        Record({field: cursor.get(field, NULL) for field in fields})
                    )
                assert self.collect_var not in out
                out[self.collect_var] = Collection(records)
            buffer.append(out)
            yield from buffer.drain()
        yield from buffer.flush()

    def describe(self) -> str:
        parts = [", ".join("$" + v for v in self.group_vars)]
        if self.aggregates:
            parts.append("aggs=" + ",".join(s.kind for s in self.aggregates))
        if self.collect_var:
            parts.append(f"nest->${self.collect_var}")
        return f"GroupBy({'; '.join(parts)})"


class Aggregate(Operator):
    """Global aggregation: one output tuple over the whole input."""

    def __init__(self, child: Operator, aggregates: list[AggregateSpec] | tuple[AggregateSpec, ...]):
        super().__init__(child)
        self.aggregates = tuple(aggregates)

    def _produce(self) -> Iterator[BindingTuple]:
        members = list(self.children[0])
        out = BindingTuple()
        for spec in self.aggregates:
            if spec.value_fn is None and spec.kind == "count":
                result: Any = len(members)
            else:
                values = (
                    [1 for _ in members]
                    if spec.value_fn is None
                    else [spec.value_fn(row) for row in members]
                )
                result = _aggregate(spec.kind, values)
            extended = out.extend(spec.out_var, result)
            assert extended is not None
            out = extended
        yield out

    def _produce_batches(self) -> Iterator[RecordBatch]:
        members: list[tuple[RecordBatch, int]] = []
        for batch in self.children[0].batches():
            for index in batch.live_indices():
                members.append((batch, index))
        cursor = BatchCursor()
        out: dict[str, Any] = {}
        for spec in self.aggregates:
            if spec.value_fn is None and spec.kind == "count":
                result: Any = len(members)
            elif spec.value_fn is None:
                result = _aggregate(spec.kind, [1] * len(members))
            else:
                values = []
                for member_batch, member_index in members:
                    cursor.batch = member_batch
                    cursor.index = member_index
                    values.append(spec.value_fn(cursor))
                result = _aggregate(spec.kind, values)
            assert spec.out_var not in out or values_equal(
                out[spec.out_var], result
            )
            out.setdefault(spec.out_var, result)
        buffer = RowBuffer(self._batch_rows or DEFAULT_BATCH_ROWS)
        buffer.append(out)
        yield from buffer.flush()

    def describe(self) -> str:
        return f"Aggregate({','.join(s.kind for s in self.aggregates)})"

"""Tree patterns: the matching side of XML-QL WHERE clauses.

A :class:`TreePattern` describes one element (or record) shape with
variables at the positions whose values the query wants.  Patterns match
both element trees and structured records — the point of the hybrid data
model — so the same WHERE clause works against an XML document and a
relational row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.algebra.tuples import BindingTuple
from repro.xmldm.nodes import Element
from repro.xmldm.values import Collection, Record


@dataclass(frozen=True)
class AttributePattern:
    """Matches one attribute: bind it to ``var`` or require ``literal``."""

    name: str
    var: str | None = None
    literal: str | None = None


@dataclass(frozen=True)
class TreePattern:
    """One node of a tree pattern.

    ``tag``          element tag / record field name ('*' matches any);
    ``attributes``   attribute constraints/bindings;
    ``children``     nested patterns (matched against *child* elements,
                     or at any depth when the child sets ``descendant``);
    ``text_var``     variable bound to the node's text / field value;
    ``text_literal`` literal content the node must equal (trimmed);
    ``element_var``  variable bound to the matched element itself;
    ``descendant``   when true, this pattern matches at any depth below
                     its structural position rather than directly.
    """

    tag: str
    attributes: tuple[AttributePattern, ...] = ()
    children: tuple["TreePattern", ...] = ()
    text_var: str | None = None
    text_literal: str | None = None
    element_var: str | None = None
    descendant: bool = False

    def variables(self) -> list[str]:
        """All variables the pattern binds, in syntactic order."""
        names: list[str] = []
        for attribute in self.attributes:
            if attribute.var is not None:
                names.append(attribute.var)
        if self.element_var is not None:
            names.append(self.element_var)
        if self.text_var is not None:
            names.append(self.text_var)
        for child in self.children:
            names.extend(child.variables())
        return list(dict.fromkeys(names))

    def describe(self) -> str:
        bits = [self.tag]
        for attribute in self.attributes:
            if attribute.var is not None:
                bits.append(f"@{attribute.name}=${attribute.var}")
            else:
                bits.append(f"@{attribute.name}={attribute.literal!r}")
        if self.text_var:
            bits.append(f"${self.text_var}")
        if self.children:
            bits.append(f"[{' '.join(child.describe() for child in self.children)}]")
        prefix = "//" if self.descendant else ""
        return prefix + "<" + " ".join(bits) + ">"


def match_pattern(pattern: TreePattern, value, base: BindingTuple) -> Iterator[BindingTuple]:
    """Yield every extension of ``base`` where ``pattern`` matches ``value``.

    ``value`` may be an Element (tag-checked), a Record (the pattern's
    children match fields; the pattern's own tag is not checked, since a
    record carries no tag) or a Collection (each item tried in turn).
    """
    if isinstance(value, Collection):
        for item in value:
            yield from match_pattern(pattern, item, base)
        return
    if isinstance(value, Element):
        yield from _match_element(pattern, value, base)
        return
    if isinstance(value, Record):
        yield from _match_record(pattern, value, base)
        return
    # Atomic value: can only satisfy a leaf pattern binding/comparing text.
    if pattern.children or pattern.attributes:
        return
    yield from _bind_content(pattern, value, None, base)


def _match_element(
    pattern: TreePattern, element: Element, base: BindingTuple
) -> Iterator[BindingTuple]:
    if pattern.tag != "*" and element.tag != pattern.tag:
        return
    current = base
    for attribute in pattern.attributes:
        if attribute.name not in element.attributes:
            return
        actual = element.attributes[attribute.name]
        if attribute.literal is not None:
            if actual != attribute.literal:
                return
        elif attribute.var is not None:
            extended = current.extend(attribute.var, actual)
            if extended is None:
                return
            current = extended
    if pattern.element_var is not None:
        extended = current.extend(pattern.element_var, element)
        if extended is None:
            return
        current = extended
    for bound in _bind_content(pattern, element.text_content(), element, current):
        yield from _match_children(pattern.children, element, bound)


def _bind_content(
    pattern: TreePattern, text_value, element: Element | None, base: BindingTuple
) -> Iterator[BindingTuple]:
    if pattern.text_literal is not None:
        actual = text_value.strip() if isinstance(text_value, str) else text_value
        if str(actual) != pattern.text_literal:
            return
    if pattern.text_var is not None:
        value = text_value.strip() if isinstance(text_value, str) and element is not None else text_value
        extended = base.extend(pattern.text_var, value)
        if extended is None:
            return
        base = extended
    yield base


def _match_children(
    children: tuple[TreePattern, ...], element: Element, base: BindingTuple
) -> Iterator[BindingTuple]:
    if not children:
        yield base
        return
    head, rest = children[0], children[1:]
    candidates = (
        element.descendants(None if head.tag == "*" else head.tag)
        if head.descendant
        else element.child_elements(None if head.tag == "*" else head.tag)
    )
    for candidate in candidates:
        for bound in _match_element(head, candidate, base):
            yield from _match_children(rest, element, bound)


def _match_record(
    pattern: TreePattern, record: Record, base: BindingTuple
) -> Iterator[BindingTuple]:
    # The record itself has no tag; its fields stand in for child elements.
    current = base
    if pattern.attributes:
        return  # records have no attributes
    if pattern.element_var is not None:
        extended = current.extend(pattern.element_var, record)
        if extended is None:
            return
        current = extended
    if pattern.text_var is not None and not pattern.children:
        extended = current.extend(pattern.text_var, record)
        if extended is None:
            return
        current = extended
    yield from _match_record_fields(pattern.children, record, current)


def _match_record_fields(
    children: tuple[TreePattern, ...], record: Record, base: BindingTuple
) -> Iterator[BindingTuple]:
    if not children:
        yield base
        return
    head, rest = children[0], children[1:]
    if head.tag != "*" and head.tag not in record:
        return
    field_names = record.fields if head.tag == "*" else (head.tag,)
    for name in field_names:
        value = record[name]
        for bound in _match_field(head, value, base):
            yield from _match_record_fields(rest, record, bound)


def _match_field(pattern: TreePattern, value, base: BindingTuple) -> Iterator[BindingTuple]:
    if isinstance(value, (Record, Collection, Element)):
        if pattern.children:
            yield from match_pattern(pattern, value, base)
            return
        # Leaf pattern over a structured value: bind the value wholesale.
        yield from _bind_content(pattern, value, None, base)
        return
    if pattern.children:
        return  # atomic field cannot satisfy nested structure
    yield from _bind_content(pattern, value, None, base)

"""Building executable plans from decomposed queries."""

from __future__ import annotations

from typing import Any, Iterator, Protocol

from repro.algebra import (
    CallbackScan,
    Construct,
    HashJoin,
    NestedLoopJoin,
    Operator,
    PatternMatch,
    Plan,
    Select,
    Sort,
)
from repro.algebra.joins import BatchedDependentJoin, DependentJoin
from repro.algebra.operators import Limit, fuse_sort_limit
from repro.algebra.tuples import BindingTuple
from repro.algebra.vector import RecordBatch, shred_records
from repro.errors import PlanningError
from repro.mediator.schema import ViewDef
from repro.optimizer.costs import CostModel
from repro.optimizer.decomposer import DecomposedQuery, FragmentUnit, Unit
from repro.query import ast as qast
from repro.query.exprs import compile_predicate, compile_sort_key
from repro.query.translate import pattern_to_tree, template_to_construct
from repro.xmldm.values import Null, Record


class ExecutionContext(Protocol):
    """What the plan needs from the engine at run time."""

    def fetch_fragment(
        self, unit: FragmentUnit, params: dict[str, Any] | None = None
    ) -> list[Record]: ...

    def fetch_fragment_batch(
        self, unit: FragmentUnit, param_sets: list[dict[str, Any]]
    ) -> list[list[Record]]: ...

    def fetch_view(self, view: ViewDef) -> list[Any]: ...


class FragmentScan(Operator):
    """Leaf operator running one remote fragment through the context.

    The context decides whether the fragment is served from a
    materialized copy, from the live source, or skipped under the
    partial-results policy.
    """

    def __init__(
        self,
        unit: FragmentUnit,
        context: ExecutionContext,
        params: dict[str, Any] | None = None,
    ):
        super().__init__()
        self.unit = unit
        self.context = context
        self.params = params
        #: planner's cardinality estimate (feedback EWMA when available),
        #: rendered against the actual rows_out by EXPLAIN ANALYZE
        self.estimated_rows: float | None = None

    def _produce(self) -> Iterator[BindingTuple]:
        for record in self.context.fetch_fragment(self.unit, self.params):
            yield BindingTuple(record.as_dict())

    def _produce_batches(self) -> Iterator[RecordBatch]:
        """Shred the fetched records into column batches at the source
        boundary — the one row->column transposition in the plan."""
        records = self.context.fetch_fragment(self.unit, self.params)
        # the engine's column-statistics hook (None when the context
        # doesn't carry statistics, or this fragment is filtered/
        # parameterized and so under-covers its relation)
        stats_for = getattr(self.context, "column_stats_for", None)
        stats = stats_for(self.unit) if stats_for is not None else None
        step = self._batch_rows
        for start in range(0, len(records), step):
            yield shred_records(records[start:start + step], stats)

    def describe(self) -> str:
        return f"FragmentScan({self.unit.describe()})"

    def analyze_stats(self) -> dict[str, Any]:
        stats = super().analyze_stats()
        if self.estimated_rows is not None:
            stats["est_rows"] = round(self.estimated_rows, 2)
        return stats


def independent_fragment_units(decomposed: DecomposedQuery) -> list[FragmentUnit]:
    """The plan's non-dependent remote fragments, in execution order.

    These are the units with no input-variable dependencies — exactly
    the set a fetch pool can overlap.  Ordered like the plan itself
    (:meth:`PlanBuilder._order_units` on cost estimates is deterministic)
    so the prefetch scheduler issues source calls in a stable sequence.
    """
    return [
        unit
        for unit in decomposed.units
        if isinstance(unit, FragmentUnit) and not unit.dependent
    ]


class PlanBuilder:
    """Greedy, capability- and cost-aware physical plan construction.

    ``batch_size`` > 1 turns dependent joins against batch-capable
    sources (``CapabilityProfile.batch_parameters``) into
    :class:`BatchedDependentJoin`s that buffer left rows and probe the
    source once per batch instead of once per row.
    """

    def __init__(self, cost_model: CostModel | None = None,
                 batch_size: int = 1, materializer=None,
                 dedup_dependent_probes: bool = False):
        self.cost_model = cost_model or CostModel()
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        #: MaterializationManager (if any): loaded mediated views give
        #: the unit ordering real element counts instead of a flat guess
        self.materializer = materializer
        #: memoize per-row dependent probes on their input values — only
        #: enabled when a fragment cache backs the context, so cache-off
        #: executions keep their exact historical call profile
        self.dedup_dependent_probes = dedup_dependent_probes

    def build(
        self,
        decomposed: DecomposedQuery,
        context: ExecutionContext,
        output_var: str = "result",
    ) -> Plan:
        query = decomposed.bound.query
        root = self.build_binding_tree(decomposed, context)
        if query.order_by:
            keys = [
                (compile_sort_key(spec.expr), spec.descending)
                for spec in query.order_by
            ]
            root = Sort(root, keys, label=", ".join(str(s.expr) for s in query.order_by))
        root = Construct(root, template_to_construct(query.construct), output_var)
        if query.limit is not None:
            root = Limit(root, query.limit)
        root = fuse_sort_limit(root)
        return Plan(root, output_var)

    def build_binding_tree(
        self, decomposed: DecomposedQuery, context: ExecutionContext
    ) -> Operator:
        """Joins of all units plus residual conditions (no construct)."""
        ordered = self._order_units(decomposed.units)
        pending = [
            (condition, frozenset(qast.expr_variables(condition)))
            for condition in decomposed.residual_conditions
        ]
        root: Operator | None = None
        bound_vars: set[str] = set()
        for unit in ordered:
            if isinstance(unit, FragmentUnit) and unit.dependent:
                missing = set(unit.fragment.input_vars) - bound_vars
                if missing:
                    raise PlanningError(
                        f"dependent fragment inputs {sorted(missing)} not bound "
                        "by preceding units"
                    )
                assert root is not None
                if (
                    self.batch_size > 1
                    and unit.source.capabilities.batch_parameters
                ):
                    root = BatchedDependentJoin(
                        root,
                        self._batch_probe(unit, context),
                        self.batch_size,
                        label=unit.source.name,
                    )
                else:
                    root = DependentJoin(
                        root,
                        self._dependent_factory(unit, context),
                        label=unit.source.name,
                        memo_key=(
                            self._probe_memo_key(unit)
                            if self.dedup_dependent_probes else None
                        ),
                    )
            else:
                step = self._unit_operator(unit, context)
                if root is None:
                    root = step
                else:
                    shared = tuple(sorted(bound_vars & set(unit.variables)))
                    if shared:
                        root = HashJoin(root, step, shared)
                    else:
                        root = NestedLoopJoin(root, step)
            bound_vars |= set(unit.variables)
            root = self._apply_ready(root, pending, bound_vars)
        if root is None:
            raise PlanningError("query decomposed to zero units")
        for condition, _ in pending:
            root = Select(root, compile_predicate(condition), label=str(condition))
        return root

    # -- helpers -------------------------------------------------------------

    def _order_units(self, units: list[Unit]) -> list[Unit]:
        """Cheapest-first among independent units; dependents after inputs.

        A simple greedy order: cache-resident units first (they cost a
        local scan and let remote fetches share prefetch waves), then
        ascending by estimated result rows (small inputs make cheap hash
        joins), then each dependent unit at the earliest point its
        inputs are bound.  Loaded mediated views rank as resident with
        their actual element count; unloaded views keep the flat
        unknown-size guess.
        """
        independent = [
            u for u in units if not (isinstance(u, FragmentUnit) and u.dependent)
        ]
        dependent = [
            u for u in units if isinstance(u, FragmentUnit) and u.dependent
        ]

        def estimate(unit: Unit) -> tuple[int, float]:
            if isinstance(unit, FragmentUnit):
                if self.cost_model.residency is not None:
                    resident = self.cost_model.residency(unit.fragment)
                    if resident is not None:
                        return (0, float(resident))
                return (1, self.cost_model.estimate_rows(unit.fragment,
                                                         unit.source))
            loaded = self._loaded_view_size(unit.view.name)
            if loaded is not None:
                return (0, float(loaded))
            return (1, 1000.0)  # views: unknown, assume large

        independent.sort(key=estimate)
        ordered: list[Unit] = list(independent)
        remaining = list(dependent)
        bound: set[str] = set()
        result: list[Unit] = []
        for unit in ordered:
            result.append(unit)
            bound |= set(unit.variables)
            placed = [
                d
                for d in remaining
                if set(d.fragment.input_vars) <= bound  # type: ignore[union-attr]
            ]
            for d in placed:
                remaining.remove(d)
                result.append(d)
                bound |= set(d.variables)
        if remaining:
            result.extend(remaining)  # will fail with a clear error later
        return result

    def _loaded_view_size(self, name: str) -> int | None:
        """Element count of a fresh materialized mediated view, or None."""
        if self.materializer is None:
            return None
        cached = self.materializer.views.get(name)
        if cached is None or not cached.is_fresh(self.materializer.clock.now):
            return None
        return len(cached.elements)

    def _unit_operator(self, unit: Unit, context: ExecutionContext) -> Operator:
        if isinstance(unit, FragmentUnit):
            scan = FragmentScan(unit, context)
            scan.estimated_rows = self.cost_model.estimate_rows(
                unit.fragment, unit.source
            )
            return scan
        context_var = f"__view_{unit.view.name}"
        scan = CallbackScan(
            context_var,
            lambda view=unit.view: context.fetch_view(view),
            label=unit.view.name,
        )
        return PatternMatch(scan, context_var, pattern_to_tree(unit.clause.pattern))

    def _dependent_factory(self, unit: FragmentUnit, context: ExecutionContext):
        input_vars = unit.fragment.input_vars

        def factory(row: BindingTuple) -> Operator:
            params: dict[str, Any] = {}
            for var in input_vars:
                value = row.get(var)
                if value is None or isinstance(value, Null):
                    return CallbackScan(var, lambda: (), label="null-input")
                params[var] = value
            return FragmentScan(unit, context, params)

        return factory

    def _probe_memo_key(self, unit: FragmentUnit):
        """Key a dependent probe by its input values (None = no memo)."""
        from repro.xmldm.values import _comparison_key

        input_vars = unit.fragment.input_vars

        def key(row: BindingTuple):
            parts = []
            for var in input_vars:
                value = row.get(var)
                if value is None or isinstance(value, Null):
                    return None  # null inputs never probe; nothing to share
                parts.append(_comparison_key(value))
            return tuple(parts)

        return key

    def _batch_probe(self, unit: FragmentUnit, context: ExecutionContext):
        input_vars = unit.fragment.input_vars

        def probe(rows) -> list[list[BindingTuple]]:
            partners: list[list[BindingTuple]] = [[] for _ in rows]
            param_sets: list[dict[str, Any]] = []
            positions: list[int] = []
            for index, row in enumerate(rows):
                params: dict[str, Any] = {}
                for var in input_vars:
                    value = row.get(var)
                    if value is None or isinstance(value, Null):
                        params = {}
                        break
                    params[var] = value
                if not params:
                    continue  # null input: no partners, no remote probe
                positions.append(index)
                param_sets.append(params)
            if param_sets:
                results = context.fetch_fragment_batch(unit, param_sets)
                for position, records in zip(positions, results):
                    partners[position] = [
                        BindingTuple(record.as_dict()) for record in records
                    ]
            return partners

        return probe

    def _apply_ready(
        self,
        root: Operator,
        pending: list[tuple[qast.Expr, frozenset[str]]],
        bound_vars: set[str],
    ) -> Operator:
        ready = [item for item in pending if item[1] <= bound_vars]
        for item in ready:
            pending.remove(item)
            condition, _ = item
            root = Select(root, compile_predicate(condition), label=str(condition))
        return root

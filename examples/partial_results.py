"""Partial results when sources go dark (paper, section 3.4).

"In many applications, it's never the case that all sources are
available ... In the worst case, there may be so many data sources that
the probability that they are all available simultaneously is nearly
zero."  This example federates six flaky regional inventory feeds and
shows the three answer policies: FAIL, SKIP (annotated partial answers,
the system default) and REQUIRE.

Run:  python examples/partial_results.py
"""

from repro import (
    AvailabilityModel,
    Catalog,
    FlakySource,
    NetworkModel,
    NimbleEngine,
    PartialResultPolicy,
    SimClock,
    SourceRegistry,
    XMLSource,
)
from repro.errors import SourceUnavailableError

REGIONS = ("us-east", "us-west", "europe", "apac", "latam", "africa")


def build_engine(availability: float) -> NimbleEngine:
    clock = SimClock()
    registry = SourceRegistry(clock)
    catalog = Catalog(registry)
    for index, region in enumerate(REGIONS):
        feed = XMLSource(
            region,
            {
                "inventory": (
                    f"<feed><item><sku>SKU-{index}</sku>"
                    f"<region>{region}</region><qty>{10 * (index + 1)}</qty>"
                    "</item></feed>"
                )
            },
            network=NetworkModel(latency_ms=30, per_row_ms=0.5),
        )
        registry.register(
            FlakySource(
                feed,
                AvailabilityModel(availability=availability,
                                  mean_outage_ms=2_000, seed=100 + index),
            )
        )
        catalog.map_relation(f"inv_{region}", region, "inventory")
    return NimbleEngine(catalog)


UNION_QUERY = " ".join(
    ["WHERE"]
    + [
        ", ".join(
            f'<item><sku>$s{i}</sku><qty>$q{i}</qty></item> IN "inv_{region}"'
            for i, region in enumerate(REGIONS)
        )
    ]
    + [
        "CONSTRUCT <stock>"
        + "".join(f"<r{i}>$q{i}</r{i}>" for i in range(len(REGIONS)))
        + "</stock>"
    ]
)


def main() -> None:
    engine = build_engine(availability=0.80)

    # Walk virtual time forward so the availability processes evolve, and
    # watch how often all six feeds are up simultaneously.
    print("== how often are all six sources up at once? (80% each) ==")
    all_up = 0
    trials = 200
    for _ in range(trials):
        engine.clock.advance(500.0)
        if len(engine.catalog.registry.available_sources()) == len(REGIONS):
            all_up += 1
    print(f"  all-available probability: {all_up / trials:.2f} "
          f"(0.8^6 = {0.8 ** 6:.2f})")

    print("\n== policy FAIL: classical behaviour ==")
    failures = 0
    for _ in range(20):
        engine.clock.advance(500.0)
        try:
            engine.query(UNION_QUERY, policy=PartialResultPolicy.FAIL)
        except SourceUnavailableError as error:
            failures += 1
            last_error = error
    print(f"  {failures}/20 queries failed outright "
          f"(e.g. {last_error})" if failures else "  all 20 succeeded")

    print("\n== policy SKIP (default): partial answers, annotated ==")
    incomplete = 0
    for _ in range(20):
        engine.clock.advance(500.0)
        result = engine.query(UNION_QUERY)
        if not result.completeness.complete:
            incomplete += 1
            sample = result.completeness
    print(f"  {incomplete}/20 answers were partial")
    if incomplete:
        print(f"  sample annotation: {sample.describe()}")

    print("\n== policy REQUIRE: only name the sources you cannot lose ==")
    engine2 = build_engine(availability=0.80)
    ok = refused = 0
    for _ in range(20):
        engine2.clock.advance(500.0)
        try:
            engine2.query(UNION_QUERY, required_sources={"us-east"})
            ok += 1
        except SourceUnavailableError:
            refused += 1
    print(f"  {ok} answered (possibly partial), "
          f"{refused} refused because us-east itself was down")


if __name__ == "__main__":
    main()

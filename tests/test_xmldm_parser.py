"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmldm.nodes import Comment, Element, ProcessingInstruction, Text
from repro.xmldm.parser import parse_document, parse_element
from repro.xmldm.serializer import serialize


class TestBasics:
    def test_simple_element(self):
        doc = parse_document("<a/>")
        assert doc.root.tag == "a"
        assert not doc.root.children

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b></a>")
        assert doc.root.first_child("b").first_child("c") is not None

    def test_text_content(self):
        doc = parse_document("<a>hello</a>")
        assert doc.root.text_content() == "hello"

    def test_mixed_content_order(self):
        doc = parse_document("<a>x<b/>y</a>")
        kinds = [type(c).__name__ for c in doc.root.children]
        assert kinds == ["Text", "Element", "Text"]

    def test_attributes_double_and_single_quotes(self):
        doc = parse_document("<a x=\"1\" y='2'/>")
        assert doc.root.attributes == {"x": "1", "y": "2"}

    def test_whitespace_in_tags(self):
        doc = parse_document('<a  x = "1" ><b /></a >')
        assert doc.root.attributes["x"] == "1"

    def test_xml_declaration_skipped(self):
        doc = parse_document('<?xml version="1.0" encoding="utf-8"?><a/>')
        assert doc.root.tag == "a"

    def test_doctype_skipped(self):
        doc = parse_document('<!DOCTYPE html><a/>')
        assert doc.root.tag == "a"

    def test_document_order_assigned(self):
        doc = parse_document("<a><b/><c/></a>")
        b = doc.root.first_child("b")
        c = doc.root.first_child("c")
        assert b.document_order < c.document_order


class TestEntitiesAndSpecials:
    def test_predefined_entities(self):
        doc = parse_document("<a>&lt;&amp;&gt;&quot;&apos;</a>")
        assert doc.root.text_content() == "<&>\"'"

    def test_numeric_character_references(self):
        doc = parse_document("<a>&#65;&#x42;</a>")
        assert doc.root.text_content() == "AB"

    def test_entity_in_attribute(self):
        doc = parse_document('<a t="&amp;x"/>')
        assert doc.root.attributes["t"] == "&x"

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[<not-a-tag> & stuff]]></a>")
        assert doc.root.text_content() == "<not-a-tag> & stuff"

    def test_comment_preserved(self):
        doc = parse_document("<a><!-- note --></a>")
        assert isinstance(doc.root.children[0], Comment)
        assert doc.root.children[0].value == " note "

    def test_processing_instruction(self):
        doc = parse_document('<a><?php echo "x"?></a>')
        pi = doc.root.children[0]
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "php"

    def test_prolog_comment(self):
        doc = parse_document("<!-- head --><a/>")
        assert len(doc.prolog) == 1


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "<a>",
            "<a></b>",
            "<a",
            "<a x=1/>",
            "<a x='1' x='2'/>",
            "<a>&unknown;</a>",
            "<a>&#xZZ;</a>",
            "<a/><b/>",
            "<a>text",
            "<a><!-- unterminated </a>",
            '<a x="<"/>',
        ],
    )
    def test_malformed_raises(self, text):
        with pytest.raises(XMLParseError):
            parse_document(text)

    def test_error_reports_location(self):
        with pytest.raises(XMLParseError) as info:
            parse_document("<a>\n<b></c>\n</a>")
        assert info.value.line == 2

    def test_content_after_root_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a/>trailing")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "<a/>",
            "<a>text</a>",
            '<a x="1"><b>inner</b>tail</a>',
            "<a>&amp;&lt;</a>",
            "<a><b/><b/><c><d>deep</d></c></a>",
        ],
    )
    def test_parse_serialize_parse_identity(self, text):
        first = parse_document(text)
        second = parse_document(serialize(first))
        assert first.root == second.root

    def test_parse_element_fragment(self):
        element = parse_element("  <x a='1'>hi</x>  ")
        assert isinstance(element, Element)
        assert element.attributes["a"] == "1"

    def test_parse_element_rejects_trailing(self):
        with pytest.raises(XMLParseError):
            parse_element("<x/><y/>")

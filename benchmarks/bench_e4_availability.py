"""E4 — source availability and partial results.

Paper claim (section 3.4): "In many applications, it's never the case
that all sources are available ... In the worst case, there may be so
many data sources that the probability that they are all available
simultaneously is nearly zero.  ...  We are designing our system to
behave intelligently in this situation by providing partial results,
and indicating to the user that the results were not complete."

E4a sweeps the number of sources at fixed per-source availability and
measures, over repeated trials at different virtual times: the fraction
of trials with *all* sources up (compared to the analytic a^n), the
fraction of FAIL-policy queries that succeed, and the fraction of
SKIP-policy answers that are complete (SKIP always answers).

Expected shape: all-available probability collapses toward zero as n
grows (tracking a^n); FAIL success collapses with it; SKIP answers
100% of queries, with completeness degrading gracefully instead.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, print_table, write_bench_json

from repro import (
    AvailabilityModel,
    Catalog,
    FlakySource,
    NetworkModel,
    NimbleEngine,
    PartialResultPolicy,
    SimClock,
    SourceRegistry,
    XMLSource,
)
from repro.errors import SourceUnavailableError

TRIALS = 120
STEP_MS = 1_500.0

BENCH_STATS = BenchStats()


def build_engine(n_sources: int, availability: float) -> NimbleEngine:
    clock = SimClock()
    registry = SourceRegistry(clock)
    catalog = Catalog(registry)
    for index in range(n_sources):
        source = XMLSource(
            f"s{index}",
            {"data": f"<feed><item><v>{index}</v></item></feed>"},
            network=NetworkModel(latency_ms=5.0, per_row_ms=0.1),
        )
        registry.register(
            FlakySource(
                source,
                AvailabilityModel(availability=availability,
                                  mean_outage_ms=3_000.0, seed=500 + index),
            )
        )
        catalog.map_relation(f"rel{index}", f"s{index}", "data")
    return NimbleEngine(catalog)


def union_query(n_sources: int) -> str:
    clauses = ", ".join(
        f'<item><v>$v{i}</v></item> IN "rel{i}"' for i in range(n_sources)
    )
    template = "".join(f"<c{i}>$v{i}</c{i}>" for i in range(n_sources))
    return f"WHERE {clauses} CONSTRUCT <all>{template}</all>"


def run_point(n_sources: int, availability: float) -> list:
    engine = build_engine(n_sources, availability)
    query = union_query(n_sources)
    all_up = fail_ok = complete = 0
    for _ in range(TRIALS):
        engine.clock.advance(STEP_MS)
        if len(engine.catalog.registry.available_sources()) == n_sources:
            all_up += 1
        try:
            BENCH_STATS.absorb(
                engine.query(query, policy=PartialResultPolicy.FAIL)
            )
            fail_ok += 1
        except SourceUnavailableError:
            pass
        result = BENCH_STATS.absorb(
            engine.query(query, policy=PartialResultPolicy.SKIP)
        )
        if result.completeness.complete:
            complete += 1
    return [
        n_sources,
        availability,
        availability ** n_sources,
        all_up / TRIALS,
        fail_ok / TRIALS,
        1.0,  # SKIP always answers
        complete / TRIALS,
    ]


def run_experiment() -> list[list]:
    BENCH_STATS.reset()
    rows = []
    for availability in (0.90, 0.99):
        for n_sources in (1, 5, 10, 25, 50):
            rows.append(run_point(n_sources, availability))
    return rows


def report():
    rows = run_experiment()
    print_table(
        "E4: availability vs partial results (paper section 3.4)",
        ["sources", "per-source avail", "analytic all-up (a^n)",
         "measured all-up", "FAIL success rate", "SKIP answer rate",
         "SKIP complete rate"],
        rows,
    )
    write_bench_json(
        "e4_availability",
        ["sources", "per-source avail", "analytic all-up (a^n)",
         "measured all-up", "FAIL success rate", "SKIP answer rate",
         "SKIP complete rate"],
        rows,
        headline={"worst_case_skip_answer_rate": rows[-1][5]},
        stats=BENCH_STATS,
    )
    return rows


def test_e4_availability(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    low = [r for r in rows if r[1] == 0.90]
    # the paper's collapse: with 50 sources at 90%, all-available is ~0
    assert low[-1][3] < 0.05
    # measured all-up tracks the analytic curve (within noise)
    for row in low:
        assert abs(row[3] - row[2]) < 0.15
    # FAIL success collapses alongside; SKIP keeps answering
    assert low[-1][4] < 0.1
    assert all(row[5] == 1.0 for row in rows)
    # completeness degrades monotonically with source count (low avail)
    completes = [row[6] for row in low]
    assert completes[0] >= completes[-1]
    report()


if __name__ == "__main__":
    report()

"""Core tuple-at-a-time operators: select, project, compute, sort, union."""

from __future__ import annotations

import heapq
from functools import cmp_to_key
from typing import Any, Callable, Iterator, Sequence

from repro.algebra.tuples import BindingTuple
from repro.algebra.vector import (
    DEFAULT_BATCH_ROWS,
    MISSING,
    BatchCursor,
    RecordBatch,
    batches_from_rows,
    gather,
)
from repro.xmldm.values import compare_values, values_equal

Predicate = Callable[[BindingTuple], bool]
ValueFn = Callable[[BindingTuple], Any]


class Operator:
    """Base class: an iterable of binding tuples with explain support.

    ``rows_out`` counts tuples produced across all iterations; the
    engine resets counters per query to report per-operator cardinality.
    ``rows_in`` derives consumption from the children: pull-based
    iteration means a child's ``rows_out`` is exactly what this
    operator pulled, so the two never disagree.

    For EXPLAIN ANALYZE, :meth:`bind_analyze` attaches a virtual clock;
    iteration then charges the virtual time spent producing each row to
    ``virtual_ms``.  The measure is *inclusive* (a parent's time
    contains its children's — they produce inside the parent's pull);
    the renderer reports it as such.

    **Batch protocol.**  :meth:`bind_vectorized` arms the tree for
    columnar execution; :meth:`batches` then yields
    :class:`~repro.algebra.vector.RecordBatch` chunks.  Operators that
    implement ``_produce_batches`` run natively on columns; everything
    else falls back to its row ``_produce`` bridged through
    ``batches_from_rows``, so vectorized and row operators compose
    freely in one tree.  Iterating a vectorized operator drains its
    batches and materializes tuples, which keeps row-only consumers
    (and parents without a native batch path) working unchanged.
    EXPLAIN ANALYZE always uses the row path — per-row timing is the
    point there.
    """

    def __init__(self, *children: "Operator"):
        self.children: tuple[Operator, ...] = children
        self.rows_out = 0
        self.virtual_ms = 0.0
        self._analyze_clock = None
        self._batch_rows = 0

    @property
    def rows_in(self) -> int:
        """Tuples pulled from the children so far."""
        return sum(child.rows_out for child in self.children)

    def bind_vectorized(self, batch_rows: int = DEFAULT_BATCH_ROWS) -> None:
        """Arm the whole tree for columnar execution (recursive)."""
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        self._batch_rows = batch_rows
        for child in self.children:
            child.bind_vectorized(batch_rows)

    @property
    def vectorized(self) -> bool:
        return self._batch_rows > 0

    def _batch_active(self) -> bool:
        return (
            self._batch_rows > 0
            and self._analyze_clock is None
            and type(self)._produce_batches is not Operator._produce_batches
        )

    def batches(self) -> Iterator[RecordBatch]:
        """Produce the operator's output as column batches.

        Native implementations count ``rows_out`` per batch; the
        fallback wraps row iteration (which counts per row) so the
        counters stay consistent either way.
        """
        if self._batch_active():
            for batch in self._produce_batches():
                produced = batch.live_count
                if produced:
                    self.rows_out += produced
                    yield batch
            return
        yield from batches_from_rows(
            iter(self), self._batch_rows or DEFAULT_BATCH_ROWS
        )

    def __iter__(self) -> Iterator[BindingTuple]:
        if self._batch_active():
            for batch in self.batches():
                yield from batch.to_tuples()
            return
        clock = self._analyze_clock
        if clock is None:
            for row in self._produce():
                self.rows_out += 1
                yield row
            return
        produce = self._produce()
        while True:
            started = clock.now
            try:
                row = next(produce)
            except StopIteration:
                self.virtual_ms += clock.now - started
                return
            self.virtual_ms += clock.now - started
            self.rows_out += 1
            yield row

    def _produce(self) -> Iterator[BindingTuple]:
        raise NotImplementedError

    def _produce_batches(self) -> Iterator[RecordBatch]:
        """Native columnar production; overridden by vectorized operators."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def analyze_stats(self) -> dict[str, Any]:
        """Per-operator annotations for ``explain(analyze=True)``."""
        return {
            "rows_out": self.rows_out,
            "rows_in": self.rows_in,
            "virtual_ms": round(self.virtual_ms, 3),
        }

    def explain(self, depth: int = 0, analyze: bool = False) -> str:
        line = "  " * depth + self.describe()
        if analyze:
            annotations = ", ".join(
                f"{key}={value}" for key, value in self.analyze_stats().items()
            )
            line += f"  ({annotations})"
        lines = [line]
        for child in self.children:
            lines.append(child.explain(depth + 1, analyze))
        return "\n".join(lines)

    def bind_analyze(self, clock) -> None:
        """Attach a virtual clock for per-operator timing (recursive)."""
        self._analyze_clock = clock
        for child in self.children:
            child.bind_analyze(clock)

    def reset_counters(self) -> None:
        self.rows_out = 0
        self.virtual_ms = 0.0
        for child in self.children:
            child.reset_counters()

    def walk(self) -> Iterator["Operator"]:
        yield self
        for child in self.children:
            yield from child.walk()


class Select(Operator):
    """Keep tuples satisfying a predicate."""

    def __init__(self, child: Operator, predicate: Predicate, label: str = ""):
        super().__init__(child)
        self.predicate = predicate
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            if self.predicate(row):
                yield row

    def _produce_batches(self) -> Iterator[RecordBatch]:
        predicate = self.predicate
        batch_eval = getattr(predicate, "batch_eval", None)
        cursor = BatchCursor()
        for batch in self.children[0].batches():
            if batch_eval is not None:
                live = batch_eval(batch)
            else:
                cursor.batch = batch
                live = []
                for index in batch.live_indices():
                    cursor.index = index
                    if predicate(cursor):
                        live.append(index)
            yield batch.with_live(live)

    def describe(self) -> str:
        return f"Select({self.label})" if self.label else "Select"


class Project(Operator):
    """Keep only the named variables."""

    def __init__(self, child: Operator, variables: Sequence[str]):
        super().__init__(child)
        self.variables = tuple(variables)

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            yield row.project(self.variables)

    def _produce_batches(self) -> Iterator[RecordBatch]:
        # O(columns) per batch: the projection just drops column refs
        for batch in self.children[0].batches():
            yield batch.project(self.variables)

    def describe(self) -> str:
        return f"Project({', '.join('$' + v for v in self.variables)})"


class Compute(Operator):
    """Bind a new variable to a computed value."""

    def __init__(self, child: Operator, var: str, fn: ValueFn, label: str = ""):
        super().__init__(child)
        self.var = var
        self.fn = fn
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            extended = row.extend(self.var, self.fn(row))
            if extended is not None:
                yield extended

    def _produce_batches(self) -> Iterator[RecordBatch]:
        fn = self.fn
        var = self.var
        cursor = BatchCursor()
        for batch in self.children[0].batches():
            cursor.batch = batch
            live = batch.live_indices()
            existing = batch.columns.get(var)
            if existing is None:
                # fresh binding: compute into a new column, keep the mask
                column = [MISSING] * batch.length
                for index in live:
                    cursor.index = index
                    column[index] = fn(cursor)
                columns = dict(batch.columns)
                columns[var] = column
                yield RecordBatch(
                    columns,
                    None if batch.live is None else list(batch.live),
                    batch.length,
                )
                continue
            # unification semantics of BindingTuple.extend: an already
            # bound equal value is kept, a conflicting one drops the row
            column = list(existing)
            keep: list[int] = []
            for index in live:
                cursor.index = index
                value = fn(cursor)
                current = existing[index]
                if current is MISSING:
                    column[index] = value
                    keep.append(index)
                elif values_equal(current, value):
                    keep.append(index)
            columns = dict(batch.columns)
            columns[var] = column
            yield RecordBatch(columns, keep, batch.length)

    def describe(self) -> str:
        suffix = f" = {self.label}" if self.label else ""
        return f"Compute(${self.var}{suffix})"


class Distinct(Operator):
    """Remove duplicate tuples over the named variables (default: all)."""

    def __init__(self, child: Operator, variables: Sequence[str] | None = None):
        super().__init__(child)
        self.variables = tuple(variables) if variables is not None else None

    def _produce(self) -> Iterator[BindingTuple]:
        seen_keys: set[str] = set()
        for row in self.children[0]:
            view = row if self.variables is None else row.project(self.variables)
            key = repr(sorted(view.as_dict().items()))
            if key in seen_keys:
                continue
            seen_keys.add(key)
            yield row

    def _produce_batches(self) -> Iterator[RecordBatch]:
        seen_keys: set[str] = set()
        for batch in self.children[0].batches():
            keep: list[int] = []
            columns = batch.columns
            if self.variables is None:
                view_columns = list(columns.items())
            else:
                view_columns = [
                    (var, columns[var]) for var in self.variables if var in columns
                ]
            for index in batch.live_indices():
                items = [
                    (var, values[index])
                    for var, values in view_columns
                    if values[index] is not MISSING
                ]
                key = repr(sorted(items))
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                keep.append(index)
            yield batch.with_live(keep)

    def describe(self) -> str:
        if self.variables is None:
            return "Distinct"
        return f"Distinct({', '.join('$' + v for v in self.variables)})"


class Union(Operator):
    """Concatenate the outputs of several children (bag union)."""

    def __init__(self, *children: Operator):
        super().__init__(*children)

    def _produce(self) -> Iterator[BindingTuple]:
        for child in self.children:
            yield from child

    def describe(self) -> str:
        return f"Union({len(self.children)})"


class Sort(Operator):
    """Sort by key expressions using the model's total value order."""

    def __init__(
        self,
        child: Operator,
        keys: Sequence[tuple[ValueFn, bool]],
        label: str = "",
    ):
        """``keys`` is a list of (value function, descending?) pairs."""
        super().__init__(child)
        self.keys = list(keys)
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        rows = list(self.children[0])

        def compare(a: BindingTuple, b: BindingTuple) -> int:
            for fn, descending in self.keys:
                result = compare_values(fn(a), fn(b))
                if result != 0:
                    return -result if descending else result
            return 0

        rows.sort(key=cmp_to_key(compare))
        yield from rows

    def _produce_batches(self) -> Iterator[RecordBatch]:
        # materialize all live (batch, row) pairs, precompute every key
        # column once, stable-sort a global permutation, then gather
        sources: list[tuple[RecordBatch, int]] = []
        for batch in self.children[0].batches():
            for index in batch.live_indices():
                sources.append((batch, index))
        cursor = BatchCursor()
        key_columns: list[list[Any]] = []
        for fn, _descending in self.keys:
            values = []
            for batch, index in sources:
                cursor.batch = batch
                cursor.index = index
                values.append(fn(cursor))
            key_columns.append(values)

        def compare(a: int, b: int) -> int:
            for (_fn, descending), values in zip(self.keys, key_columns):
                result = compare_values(values[a], values[b])
                if result != 0:
                    return -result if descending else result
            return 0

        order = sorted(range(len(sources)), key=cmp_to_key(compare))
        yield from gather(sources, order, self._batch_rows or DEFAULT_BATCH_ROWS)

    def describe(self) -> str:
        return f"Sort({self.label or len(self.keys)})"


class Limit(Operator):
    """Pass through at most ``count`` tuples (after any ordering)."""

    def __init__(self, child: Operator, count: int):
        super().__init__(child)
        if count < 0:
            raise ValueError("limit must be non-negative")
        self.count = count

    def _produce(self) -> Iterator[BindingTuple]:
        produced = 0
        for row in self.children[0]:
            if produced >= self.count:
                return
            produced += 1
            yield row

    def _produce_batches(self) -> Iterator[RecordBatch]:
        remaining = self.count
        if remaining <= 0:
            return
        for batch in self.children[0].batches():
            count = batch.live_count
            if count <= remaining:
                remaining -= count
                yield batch
                if remaining == 0:
                    return
            else:
                yield batch.with_live(list(batch.live_indices())[:remaining])
                return

    def describe(self) -> str:
        return f"Limit({self.count})"


class TopK(Operator):
    """Fused Sort + Limit: keep the top ``count`` rows by sort key.

    Maintains a bounded heap instead of materializing and fully sorting
    the input — O(n log k) comparisons and O(k) memory.  Output order is
    bit-identical to ``Limit(Sort(child, keys), count)``: the stable
    sort's tie-breaking (earlier input rows first) is reproduced by
    ranking ties on arrival index.
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[tuple[ValueFn, bool]],
        count: int,
        label: str = "",
    ):
        super().__init__(child)
        if count < 0:
            raise ValueError("limit must be non-negative")
        self.keys = list(keys)
        self.count = count
        self.label = label

    def _compare(self, a: BindingTuple, b: BindingTuple) -> int:
        for fn, descending in self.keys:
            result = compare_values(fn(a), fn(b))
            if result != 0:
                return -result if descending else result
        return 0

    def _produce(self) -> Iterator[BindingTuple]:
        if self.count == 0:
            return
        forward = cmp_to_key(self._compare)
        inverted = cmp_to_key(lambda a, b: -self._compare(a, b))
        # min-heap of (inverted key, -arrival): the root is the row a
        # stable sort-then-limit would discard first — the largest key,
        # ties broken towards the latest arrival
        heap: list[tuple[Any, int, BindingTuple]] = []
        for arrival, row in enumerate(self.children[0]):
            entry = (inverted(row), -arrival, row)
            if len(heap) < self.count:
                heapq.heappush(heap, entry)
            else:
                heapq.heappushpop(heap, entry)
        kept = sorted(heap, key=lambda entry: (forward(entry[2]), -entry[1]))
        for _key, _arrival, row in kept:
            yield row

    def describe(self) -> str:
        return f"TopK({self.count}, {self.label or len(self.keys)})"


def fuse_sort_limit(root: Operator) -> Operator:
    """Rewrite every directly adjacent ``Limit(Sort(x))`` into a TopK.

    Analyze/vectorized bindings happen after plan building, so the
    rewrite only needs to preserve tree shape invariants: the fused
    operator inherits the sort's keys and the limit's count.
    """
    new_children = tuple(fuse_sort_limit(child) for child in root.children)
    if new_children != root.children:
        root.children = new_children
    if (
        isinstance(root, Limit)
        and len(root.children) == 1
        and isinstance(root.children[0], Sort)
    ):
        sort = root.children[0]
        return TopK(sort.children[0], sort.keys, root.count, label=sort.label)
    return root

"""Answer provenance and freshness lineage.

The load-bearing properties:

* provenance is strictly observational — elements, completeness, the
  determinism-checked ``counters()``, and virtual time are bit-identical
  with the knob on or off, across fragment caching, injected faults,
  sharded scatter-gather, and incremental maintenance (the hypothesis
  sweep at the bottom);
* version vectors advance exactly with ``sync_changes`` — an answer's
  ``feed_lag`` is the precise number of unapplied change records;
* ``explain_answer`` attributes a degraded serve to its cause: the open
  breaker behind a stale rung, the lagging CDC feed behind a behind
  answer;
* the dark paths now carry spans: ``sync_changes`` (cdc_sync/cdc_feed),
  incremental refresh (maintenance/view_refresh), the XML snapshot
  differ, and shard scatter spans with ``shard_index``/``key_range``
  attributes — all exported on the Chrome maintenance lane.
"""

from __future__ import annotations

import pytest

from repro.admin import FreshnessMonitor, ManagementConsole, TraceMonitor
from repro.core.engine import NimbleEngine, PartialResultPolicy
from repro.core.loadbalance import EngineCluster
from repro.core.sharding import ShardRouter
from repro.errors import MediationError
from repro.materialize import MaterializationManager
from repro.mediator.catalog import Catalog
from repro.observability import (
    MetricsRegistry,
    QueryLog,
    Tracer,
    chrome_trace_events,
    parse_exposition,
    prometheus_exposition,
)
from repro.observability.export import MAINTENANCE_TID
from repro.observability.provenance import (
    ORIGIN_CACHE,
    ORIGIN_LIVE,
    ORIGIN_STALE_CACHE,
    FragmentOrigin,
    Provenance,
    explain_provenance,
    origin_counts,
    render_origin_counts,
)
from repro.resilience import (
    BreakerConfig,
    FaultModel,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.simtime import SimClock
from repro.sources.base import NetworkModel
from repro.sources.registry import SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sources.sharding import partition_registry
from repro.sources.xmlfile import XMLSource
from repro.sql.database import Database
from repro.mediator.schema import MediatedSchema, ViewDef
from repro.xmldm.serializer import serialize

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


# -- deployment builders ------------------------------------------------------


ITEMS_QUERY = (
    'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items" '
    "CONSTRUCT <r><k>$k</k><v>$v</v></r> ORDER BY $k"
)

RANGE_QUERY = (
    'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items", $k < 4 '
    "CONSTRUCT <r><k>$k</k><v>$v</v></r> ORDER BY $k"
)


def seeded_rows(n: int, seed: int = 7) -> list[tuple[int, int, int]]:
    return [(k, (k * seed) % 5, (k * k * seed) % 23) for k in range(n)]


def build_deployment(rows, faults=None, **engine_kw):
    db = Database()
    db.execute(
        "CREATE TABLE t (k INTEGER PRIMARY KEY, grp INTEGER, v INTEGER)"
    )
    db.insert_rows("t", rows)
    clock = SimClock()
    registry = SourceRegistry(clock)
    source = RelationalSource(
        "s", db, network=NetworkModel(latency_ms=20.0, per_row_ms=0.5)
    )
    if faults is not None:
        source.faults = faults
    registry.register(source)
    source.enable_cdc()
    catalog = Catalog(registry)
    catalog.map_relation("items", "s", "t")
    schema = MediatedSchema("m")
    schema.define(ViewDef.from_text(
        "big_items",
        'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items", $v > 5 '
        "CONSTRUCT <r><k>$k</k><v>$v</v></r>",
    ))
    schema.define(ViewDef.from_text(
        "by_group",
        'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items" '
        "CONSTRUCT <g id=$g><n>count($v)</n><total>sum($v)</total></g>",
    ))
    catalog.add_schema(schema)
    manager = MaterializationManager(clock)
    engine = NimbleEngine(
        catalog, materializer=manager, incremental=True, **engine_kw
    )
    return engine, source


def insert_rows(source, rows):
    for k, grp, v in rows:
        source.insert_row("t", {"k": k, "grp": grp, "v": v})


def rendered(result) -> list[str]:
    return [serialize(element) for element in result.elements]


def _breaker_policy() -> ResiliencePolicy:
    return ResiliencePolicy(
        retry=RetryPolicy(max_attempts=2, base_backoff_ms=10.0),
        breaker=BreakerConfig(window=4, failure_threshold=0.5,
                              min_calls=2, cooldown_ms=60_000.0),
    )


# -- the Provenance record ----------------------------------------------------


class TestProvenanceRecord:
    def test_origin_counts_and_render(self):
        origins = [
            FragmentOrigin("a", ORIGIN_CACHE),
            FragmentOrigin("b", ORIGIN_CACHE),
            FragmentOrigin("c", ORIGIN_LIVE),
        ]
        counts = origin_counts(origins)
        assert counts == {"cache": 2, "live": 1}
        assert render_origin_counts(counts) == "cache=2 live=1"

    def test_feed_lag_is_head_minus_applied(self):
        provenance = Provenance(
            version_vector={"s": 3, "t": 5},
            feed_heads={"s": 7, "t": 5},
        )
        assert provenance.feed_lag() == {"s": 4, "t": 0}

    def test_absorb_merges_vector_pessimistically(self):
        mine = Provenance(version_vector={"s": 5}, feed_heads={"s": 5})
        other = Provenance(
            version_vector={"s": 3, "t": 9},
            feed_heads={"s": 8, "t": 9},
            origins=[FragmentOrigin("s", ORIGIN_LIVE, rows=2)],
        )
        mine.absorb(other, shard=1)
        # the answer is only as fresh as its most behind contributor
        assert mine.version_vector == {"s": 3, "t": 9}
        # but the head observed is the furthest one
        assert mine.feed_heads == {"s": 8, "t": 9}
        assert mine.origins[0].shard == 1

    def test_as_dict_round_trips_through_json(self):
        import json

        provenance = Provenance(
            trace_id="t0000",
            version_vector={"s": 1},
            feed_heads={"s": 2},
            snapshot_epoch=4,
            origins=[FragmentOrigin("s", ORIGIN_STALE_CACHE, 3, 120.0)],
            shards=[0, 1],
        )
        blob = json.loads(json.dumps(provenance.as_dict()))
        assert blob["feed_lag"] == {"s": 1}
        assert blob["origin_counts"] == {"stale_cache": 1}
        assert blob["origins"][0]["staleness_ms"] == 120.0

    def test_explain_names_breaker_and_feed(self):
        provenance = Provenance(
            trace_id="t0000",
            version_vector={"s": 2},
            feed_heads={"s": 6},
            origins=[FragmentOrigin("s", ORIGIN_STALE_CACHE, 3, 500.0)],
        )
        text = explain_provenance(
            provenance,
            breakers={"s": {"state": "open", "opened_at_ms": 40.0,
                            "times_opened": 1}},
            view_lag={"big_items": {"mode": "rows", "seq_lag": 4,
                                    "staleness_ms": 250.0}},
        )
        assert "breaker 's' is OPEN since virtual t=40.0 ms" in text
        assert "feed 's' is 4 changes ahead" in text
        assert "view 'big_items' [rows] lags feed" in text

    def test_explain_fresh_answer_has_no_why(self):
        provenance = Provenance(
            version_vector={"s": 2}, feed_heads={"s": 2},
            origins=[FragmentOrigin("s", ORIGIN_LIVE, 3)],
        )
        text = explain_provenance(provenance)
        assert "every fragment served fresh and in sync" in text


# -- per-answer lineage -------------------------------------------------------


class TestAnswerProvenance:
    def test_live_answer_carries_origins_and_trace_id(self):
        engine, _ = build_deployment(seeded_rows(6), provenance=True)
        tracer = Tracer(engine.clock)
        engine.use_tracer(tracer)
        result = engine.query(ITEMS_QUERY)
        assert result.provenance is not None
        assert result.provenance.trace_id == tracer.last_trace.trace_id
        assert result.provenance.origin_counts() == {"live": 1}
        assert result.provenance.snapshot_epoch == engine.catalog.version

    def test_provenance_off_attaches_nothing(self):
        engine, _ = build_deployment(seeded_rows(6))
        result = engine.query(ITEMS_QUERY)
        assert result.provenance is None
        with pytest.raises(MediationError):
            engine.explain_answer(result)

    def test_cache_hit_origin_with_age(self):
        engine, _ = build_deployment(
            seeded_rows(6), provenance=True, fragment_cache_bytes=100_000
        )
        engine.query(ITEMS_QUERY)
        engine.clock.advance(500.0)
        result = engine.query(ITEMS_QUERY)
        counts = result.provenance.origin_counts()
        assert counts == {"cache": 1}
        origin = result.provenance.origins[0]
        assert origin.staleness_ms >= 500.0

    def test_version_vector_advances_exactly_with_sync_changes(self):
        engine, source = build_deployment(seeded_rows(4), provenance=True)
        before = engine.query(ITEMS_QUERY)
        assert before.provenance.version_vector == {"s": 0}
        assert before.provenance.feed_lag() == {"s": 0}
        insert_rows(source, [(10, 1, 9), (11, 2, 8), (12, 3, 7)])
        behind = engine.query(ITEMS_QUERY)
        # the feed moved; this engine has not applied the changes yet
        assert behind.provenance.version_vector == {"s": 0}
        assert behind.provenance.feed_heads == {"s": 3}
        assert behind.provenance.feed_lag() == {"s": 3}
        engine.sync_changes()
        synced = engine.query(ITEMS_QUERY)
        assert synced.provenance.version_vector == {"s": 3}
        assert synced.provenance.feed_lag() == {"s": 0}

    def test_sharded_answer_tags_origins_with_shards(self):
        engine, _ = build_deployment(seeded_rows(8), provenance=True)
        deployment = partition_registry(
            engine.catalog.registry, {"s": "k"}, 2
        )
        router = ShardRouter(engine, deployment)
        result = router.query(ITEMS_QUERY)
        assert result.provenance is not None
        assert result.provenance.shards == [0, 1]
        shards_seen = {origin.shard for origin in result.provenance.origins}
        assert shards_seen == {0, 1}

    def test_query_log_records_origin_summary(self):
        log = QueryLog(capacity=8, slow_threshold_ms=0.0)
        engine, _ = build_deployment(
            seeded_rows(6), query_log=log, fragment_cache_bytes=100_000
        )
        engine.query(ITEMS_QUERY)
        engine.query(ITEMS_QUERY)
        records = log.recent()
        assert records[0].origins == {"live": 1}
        assert records[1].origins == {"cache": 1}


# -- the "why" surface --------------------------------------------------------


def _stale_breaker_scenario():
    """A warmed cache gone stale, a tripped breaker, a lagging feed."""
    engine, source = build_deployment(
        seeded_rows(6),
        provenance=True,
        fragment_cache_bytes=100_000,
        fragment_cache_ttl_ms=1_000.0,
        resilience=_breaker_policy(),
    )
    engine.query(ITEMS_QUERY)  # warm the fragment cache (live)
    insert_rows(source, [(20, 1, 9), (21, 2, 8)])  # feed moves, no sync
    engine.clock.advance(5_000.0)  # the cached entry is now expired
    source.faults = FaultModel(failure_rate=1.0, seed=3)
    stale = engine.query(ITEMS_QUERY)  # fails live, serves the stale rung
    return engine, stale


class TestExplainAnswer:
    def test_attributes_stale_serve_to_breaker_and_feed(self):
        engine, stale = _stale_breaker_scenario()
        assert stale.provenance.origin_counts() == {"stale_cache": 1}
        assert engine.resilient.breakers["s"].state.value == "open"
        chain = engine.explain_answer(stale)
        assert "s: stale_cache" in chain
        assert "because breaker 's' is OPEN since virtual t=" in chain
        assert "feed 's' is 2 changes ahead of this answer" in chain
        assert "(applied @0, head @2)" in chain

    def test_completeness_verdict_rendered(self):
        engine, stale = _stale_breaker_scenario()
        chain = engine.explain_answer(stale)
        assert "stale: s" in chain


# -- maintenance tracing ------------------------------------------------------


class TestMaintenanceTracing:
    def test_sync_changes_spans_cover_feeds_and_views(self):
        engine, source = build_deployment(seeded_rows(6))
        engine.maintain_view("big_items")
        tracer = Tracer(engine.clock)
        engine.use_tracer(tracer)
        insert_rows(source, [(30, 1, 9), (31, 2, 8)])
        engine.sync_changes()
        trace = tracer.last_trace
        assert trace.kind == "cdc_sync"
        assert trace.attrs["changes"] == 2
        feeds = trace.find("cdc_feed")
        assert len(feeds) == 1
        assert feeds[0].attrs["from_seq"] == 0
        assert feeds[0].attrs["to_seq"] == 2
        refreshes = trace.find("view_refresh")
        assert len(refreshes) == 1
        assert refreshes[0].attrs["mode"] == "rows"
        assert refreshes[0].attrs["outcome"] == "delta"
        events = [e.name for span in trace.walk() for e in span.events]
        assert "delta_applied" in events

    def test_in_sync_refresh_traced_as_in_sync(self):
        engine, _ = build_deployment(seeded_rows(6))
        engine.maintain_view("big_items")
        tracer = Tracer(engine.clock)
        engine.use_tracer(tracer)
        engine.sync_changes()
        refreshes = tracer.last_trace.find("view_refresh")
        assert refreshes[0].attrs["outcome"] == "in_sync"

    def test_snapshot_differ_span(self):
        clock = SimClock()
        registry = SourceRegistry(clock)
        source = XMLSource("feed", {"doc": "<r><i k='1'><v>a</v></i></r>"})
        registry.register(source)
        source.enable_cdc(keys={"doc": "k"})
        tracer = Tracer(clock)
        source.tracer = tracer
        source.replace_document(
            "doc", "<r><i k='1'><v>b</v></i><i k='2'><v>c</v></i></r>"
        )
        trace = tracer.last_trace
        assert trace.kind == "snapshot_diff"
        assert trace.attrs["insert"] == 1
        assert trace.attrs["update"] == 1
        assert trace.attrs["delete"] == 0

    def test_chrome_export_has_maintenance_lane(self):
        engine, source = build_deployment(seeded_rows(6))
        engine.maintain_view("big_items")
        tracer = Tracer(engine.clock)
        engine.use_tracer(tracer)
        insert_rows(source, [(40, 1, 9)])
        engine.sync_changes()
        payload = chrome_trace_events([tracer.last_trace])
        lanes = {event["tid"] for event in payload["traceEvents"]}
        assert MAINTENANCE_TID in lanes
        metadata = [event for event in payload["traceEvents"]
                    if event.get("ph") == "M"]
        assert metadata and metadata[0]["args"]["name"] == "maintenance"


# -- shard span attributes ----------------------------------------------------


class TestShardSpans:
    def _router(self, provenance=False):
        engine, _ = build_deployment(seeded_rows(8), provenance=provenance)
        deployment = partition_registry(
            engine.catalog.registry, {"s": "k"}, 2
        )
        router = ShardRouter(engine, deployment)
        tracer = Tracer(engine.clock)
        router.use_tracer(tracer)
        return router, tracer

    def test_shard_spans_carry_index_and_key_range(self):
        router, tracer = self._router()
        router.query(ITEMS_QUERY)
        shards = tracer.last_trace.find("shard")
        assert [span.attrs["shard_index"] for span in shards] == [0, 1]
        for span in shards:
            assert span.attrs["key_range"].startswith("s:[")

    def test_pruned_shards_emit_reasoned_events(self):
        router, tracer = self._router()
        router.query(RANGE_QUERY)
        scatter = tracer.last_trace.find("scatter")[0]
        pruned = [e for e in scatter.events if e.name == "shard_pruned"]
        assert len(pruned) == 1
        assert pruned[0].attrs["shard_index"] == 1
        assert "contradicts" in pruned[0].attrs["reason"]

    def test_cluster_dispatch_span_parents_query(self):
        engine, _ = build_deployment(seeded_rows(6))
        tracer = Tracer(engine.clock)
        engine.use_tracer(tracer)
        cluster = EngineCluster(engine, instances=2)
        cluster.submit(ITEMS_QUERY, arrival_ms=0.0)
        trace = tracer.last_trace
        assert trace.kind == "dispatch"
        assert trace.find("query"), "query span should nest under dispatch"


# -- gauges and console -------------------------------------------------------


class TestFreshnessGauges:
    def test_gauges_round_trip_through_exposition(self):
        engine, source = build_deployment(seeded_rows(6))
        engine.maintain_view("big_items")
        insert_rows(source, [(50, 1, 9), (51, 2, 8)])
        engine.clock.advance(300.0)
        engine.query(ITEMS_QUERY)
        monitor = FreshnessMonitor(engine)
        registry = monitor.export_gauges(MetricsRegistry())
        text = prometheus_exposition(registry.snapshot())
        parsed = parse_exposition(text)
        gauges = parsed["gauges"]
        assert gauges["nimble_freshness_worst_staleness_ms"] > 0
        assert gauges["nimble_freshness_view_big_items_seq_lag"] == 2
        assert gauges["nimble_cdc_s_head_seq"] == 2
        assert gauges["nimble_cdc_s_applied_seq"] == 0
        assert gauges["nimble_provenance_origin_live"] == 1

    def test_worst_staleness_matches_monitor(self):
        engine, source = build_deployment(seeded_rows(6))
        engine.maintain_view("big_items")
        insert_rows(source, [(60, 1, 9)])
        engine.clock.advance(250.0)
        monitor = FreshnessMonitor(engine)
        registry = monitor.export_gauges(MetricsRegistry())
        gauge = registry.gauge("freshness.worst_staleness_ms").value
        assert gauge == pytest.approx(monitor.worst_staleness_ms())

    def test_console_renders_slow_query_origins(self):
        log = QueryLog(capacity=8, slow_threshold_ms=0.0)
        engine, _ = build_deployment(seeded_rows(6), query_log=log)
        engine.query(ITEMS_QUERY)
        monitor = TraceMonitor(engine)
        snapshot = monitor.snapshot()
        assert snapshot["slow"][0]["origins"] == {"live": 1}
        console = ManagementConsole(engine, trace_monitor=monitor)
        text = console.render()
        assert "origins[live=1]" in text


# -- the bit-identity property ------------------------------------------------


def _run_workload(provenance: bool, n_rows, seed, cache, faulty,
                  incremental, sharded):
    kwargs = dict(
        provenance=provenance,
        fragment_cache_bytes=300_000 if cache else 0,
    )
    if faulty:
        kwargs["resilience"] = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=8), breaker=None
        )
    faults = FaultModel(failure_rate=0.08, seed=seed) if faulty else None
    engine, source = build_deployment(seeded_rows(n_rows, seed), faults,
                                      **kwargs)
    outputs: list[list[str]] = []
    if incremental:
        engine.maintain_view("big_items")
    outputs.append(rendered(engine.query(ITEMS_QUERY)))
    insert_rows(source, [(100 + seed, seed % 5, 9), (200 + seed, 1, 3)])
    if incremental:
        engine.sync_changes()
    outputs.append(rendered(engine.query(ITEMS_QUERY)))
    outputs.append(rendered(engine.query(RANGE_QUERY)))
    if sharded:
        deployment = partition_registry(
            engine.catalog.registry, {"s": "k"}, 2
        )
        router = ShardRouter(engine, deployment)
        outputs.append(rendered(router.query(ITEMS_QUERY)))
    counters = engine.cdc_stats.counters()
    return outputs, engine.clock.now, counters


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestBitIdentityProperty:
    @given(
        n_rows=st.integers(2, 16),
        seed=st.integers(1, 50),
        cache=st.booleans(),
        faulty=st.booleans(),
        incremental=st.booleans(),
        sharded=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_provenance_is_bit_identical_and_free(
        self, n_rows, seed, cache, faulty, incremental, sharded
    ):
        with_provenance = _run_workload(
            True, n_rows, seed, cache, faulty, incremental, sharded
        )
        without = _run_workload(
            False, n_rows, seed, cache, faulty, incremental, sharded
        )
        # identical elements, identical virtual time (zero overhead),
        # identical determinism-checked counters
        assert with_provenance == without

"""Property-based tests over the SQL engine and the integration engine."""

import string

from hypothesis import given, settings, strategies as st

import pytest

from repro.errors import MediationError, QuerySyntaxError
from repro.mediator.catalog import Catalog
from repro.core import NimbleEngine
from repro.simtime import SimClock
from repro.sources.registry import SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sql import Database

# -- SQL joins vs a brute-force Python reference ------------------------------

left_rows = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 100)), max_size=15
)
right_rows = st.lists(
    st.tuples(st.integers(0, 8), st.text(string.ascii_lowercase, max_size=4)),
    max_size=15,
)


def load(left, right):
    db = Database()
    db.execute("CREATE TABLE l (k INTEGER, v INTEGER)")
    db.execute("CREATE TABLE r (k INTEGER, w TEXT)")
    db.insert_rows("l", left)
    db.insert_rows("r", right)
    return db


class TestJoinSemantics:
    @given(left_rows, right_rows)
    @settings(max_examples=50, deadline=None)
    def test_inner_join_matches_reference(self, left, right):
        db = load(left, right)
        got = sorted(
            db.execute(
                "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k"
            ).rows
        )
        expected = sorted(
            (v, w) for k1, v in left for k2, w in right if k1 == k2
        )
        assert got == expected

    @given(left_rows, right_rows)
    @settings(max_examples=50, deadline=None)
    def test_left_join_preserves_left_rows(self, left, right):
        db = load(left, right)
        rows = db.execute(
            "SELECT l.k, r.w FROM l LEFT JOIN r ON l.k = r.k"
        ).rows
        right_keys = {k for k, _ in right}
        expected_count = sum(
            max(1, sum(1 for k2, _ in right if k2 == k1))
            if k1 in right_keys
            else 1
            for k1, _ in left
        )
        assert len(rows) == expected_count
        unmatched = [row for row in rows if row[1] is None]
        assert all(row[0] not in right_keys for row in unmatched)

    @given(left_rows)
    @settings(max_examples=40, deadline=None)
    def test_group_by_partitions_input(self, left):
        db = load(left, [])
        rows = db.execute(
            "SELECT k, COUNT(*), SUM(v) FROM l GROUP BY k"
        ).rows
        assert sum(row[1] for row in rows) == len(left)
        totals = {row[0]: row[2] for row in rows}
        for key in {k for k, _ in left}:
            assert totals[key] == sum(v for k, v in left if k == key)


# -- index equivalence: plans differ, answers must not -------------------------


class TestIndexTransparency:
    @given(
        st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=30),
        st.integers(0, 30),
    )
    @settings(max_examples=50, deadline=None)
    def test_indexed_and_unindexed_agree(self, rows, probe):
        plain = Database()
        plain.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        plain.insert_rows("t", rows)
        indexed = Database()
        indexed.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        indexed.execute("CREATE INDEX ix ON t (a)")
        indexed.insert_rows("t", rows)
        for condition in (f"a = {probe}", f"a > {probe}", f"a <= {probe}"):
            sql = f"SELECT a, b FROM t WHERE {condition} ORDER BY a, b"
            assert plain.execute(sql).rows == indexed.execute(sql).rows


# -- engine: pushdown on/off must agree on answers -------------------------------


def build_engine(rows, pushdown):
    db = Database()
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, grp INTEGER, v INTEGER)")
    db.insert_rows("t", rows)
    registry = SourceRegistry(SimClock())
    registry.register(RelationalSource("s", db))
    catalog = Catalog(registry)
    catalog.map_relation("items", "s", "t")
    return NimbleEngine(catalog, pushdown=pushdown)


unique_rows = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 5), st.integers(0, 50)),
    max_size=20,
    unique_by=lambda row: row[0],
)


class TestPushdownTransparency:
    @given(unique_rows, st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_pushdown_does_not_change_answers(self, rows, threshold):
        query = (
            'WHERE <i><k>$k</k><v>$v</v></i> IN "items", '
            f"$v > {threshold} CONSTRUCT <r>$k</r> ORDER BY $k"
        )
        fast = build_engine(rows, True).query(query)
        slow = build_engine(rows, False).query(query)
        assert [e.text_content() for e in fast.elements] == [
            e.text_content() for e in slow.elements
        ]

    @given(unique_rows)
    @settings(max_examples=30, deadline=None)
    def test_aggregates_match_sql(self, rows):
        engine = build_engine(rows, True)
        result = engine.query(
            'WHERE <i><grp>$g</grp><v>$v</v></i> IN "items" '
            "CONSTRUCT <g k=$g><total>sum($v)</total></g>"
        )
        got = {
            e.attributes["k"]: float(e.first_child("total").text_content())
            for e in result.elements
            if e.first_child("total").text_content()
        }
        expected = {}
        for _, group, value in rows:
            expected[str(group)] = expected.get(str(group), 0) + value
        assert got == {k: float(v) for k, v in expected.items()}


# -- negative paths ------------------------------------------------------------------


class TestNegativePaths:
    def test_query_syntax_error_surfaces(self, catalog):
        engine = NimbleEngine(catalog)
        with pytest.raises(QuerySyntaxError):
            engine.query("WHERE oops CONSTRUCT <r/>")

    def test_unknown_mediated_name(self, catalog):
        engine = NimbleEngine(catalog)
        with pytest.raises(MediationError):
            engine.query('WHERE <a>$x</a> IN "ghost" CONSTRUCT <r>$x</r>')

    def test_flwor_unknown_name(self, catalog):
        engine = NimbleEngine(catalog)
        with pytest.raises(MediationError):
            engine.flwor_query('FOR $x IN "ghost" RETURN <r>{$x}</r>')

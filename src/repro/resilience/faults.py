"""Transient fault injection for source wrappers.

The availability process in :mod:`repro.sources.flaky` models *outages*:
a source is down for a window of virtual time and every call in that
window fails.  Real mediators also see *transient* faults — an
individual call times out, runs slow, or drops its result stream
halfway — and recover from them with retries rather than by waiting out
an outage.  :class:`FaultModel` injects exactly those per-call faults,
driven by a seeded RNG so that two runs over the same call schedule see
the same faults, and charging all injected delay to the shared
:class:`~repro.simtime.SimClock` so the latency experiments stay
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import random

from repro.errors import TransientSourceError
from repro.simtime import SimClock


@dataclass
class FaultModel:
    """Per-call transient faults: failures, slow calls, mid-stream drops.

    * ``failure_rate`` — probability that a call fails outright with a
      :class:`TransientSourceError` after the call latency is paid;
    * ``slow_rate`` / ``slow_factor`` — probability that a call's
      latency is inflated to ``slow_factor`` times the source's normal
      call latency (``slow_penalty_ms`` charges a flat penalty instead
      when set, which is useful for zero-latency test sources);
    * ``drop_rate`` — probability that the result stream is cut at a
      random row: the rows transferred before the cut are still charged
      to the network model, then the call fails.

    All draws come from one ``random.Random(seed)``, so a fresh model
    replayed over the same call sequence injects the same faults.
    """

    failure_rate: float = 0.0
    slow_rate: float = 0.0
    slow_factor: float = 5.0
    slow_penalty_ms: float | None = None
    drop_rate: float = 0.0
    seed: int = 11
    injected_failures: int = field(default=0, init=False)
    injected_slow_calls: int = field(default=0, init=False)
    injected_drops: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        for name in ("failure_rate", "slow_rate", "drop_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")
        self._rng = random.Random(self.seed)

    def reset(self) -> None:
        """Re-seed the RNG and zero the counters (fresh replay)."""
        self._rng = random.Random(self.seed)
        self.injected_failures = 0
        self.injected_slow_calls = 0
        self.injected_drops = 0

    def inject_call(self, source_name: str, clock: SimClock,
                    latency_ms: float) -> None:
        """Fault decision for one call: may raise or inflate latency."""
        if self.failure_rate and self._rng.random() < self.failure_rate:
            self.injected_failures += 1
            raise TransientSourceError(source_name, "injected transient fault")
        if self.slow_rate and self._rng.random() < self.slow_rate:
            self.injected_slow_calls += 1
            if self.slow_penalty_ms is not None:
                clock.advance(self.slow_penalty_ms)
            else:
                clock.advance(latency_ms * (self.slow_factor - 1.0))

    def drop_point(self, n_rows: int) -> int | None:
        """Row index at which the stream drops, or None for no drop."""
        if not self.drop_rate or n_rows <= 0:
            return None
        if self._rng.random() < self.drop_rate:
            self.injected_drops += 1
            return self._rng.randrange(n_rows)
        return None

"""Unit tests for binding tuples and core algebra operators."""

import pytest

from repro.algebra import (
    Aggregate,
    AggregateSpec,
    BindingTuple,
    BindingsSource,
    CallbackScan,
    CollectionScan,
    Compute,
    Distinct,
    GroupBy,
    HashJoin,
    NestedLoopJoin,
    Plan,
    Project,
    Select,
    Sort,
    Union,
)
from repro.algebra.joins import DependentJoin
from repro.xmldm.values import NULL, Record


def tuples(*dicts):
    return [BindingTuple(d) for d in dicts]


class TestBindingTuple:
    def test_extend_new_variable(self):
        row = BindingTuple({"a": 1})
        extended = row.extend("b", 2)
        assert extended["b"] == 2
        assert "b" not in row

    def test_extend_same_value_is_noop(self):
        row = BindingTuple({"a": 1})
        assert row.extend("a", 1) is row

    def test_extend_conflict_fails(self):
        assert BindingTuple({"a": 1}).extend("a", 2) is None

    def test_extend_numeric_equivalence(self):
        # 1 == 1.0 in the model, so rebinding is consistent
        assert BindingTuple({"a": 1}).extend("a", 1.0) is not None

    def test_merge_disjoint(self):
        merged = BindingTuple({"a": 1}).merge(BindingTuple({"b": 2}))
        assert merged.as_dict() == {"a": 1, "b": 2}

    def test_merge_conflicting(self):
        assert BindingTuple({"a": 1}).merge(BindingTuple({"a": 2})) is None

    def test_project(self):
        row = BindingTuple({"a": 1, "b": 2, "c": 3})
        assert row.project(["a", "c", "zz"]).as_dict() == {"a": 1, "c": 3}

    def test_contains_and_get(self):
        row = BindingTuple({"a": 1})
        assert "a" in row
        assert row.get("missing") is None


class TestScans:
    def test_collection_scan(self):
        rows = list(CollectionScan("x", [1, 2, 3]))
        assert [r["x"] for r in rows] == [1, 2, 3]

    def test_callback_scan_lazy(self):
        calls = []

        def fetch():
            calls.append(1)
            return ["a"]

        scan = CallbackScan("v", fetch)
        assert not calls
        assert [r["v"] for r in scan] == ["a"]
        assert calls == [1]

    def test_bindings_source_replays(self):
        source = BindingsSource(tuples({"a": 1}))
        assert len(list(source)) == 1
        assert len(list(source)) == 1


class TestBasicOperators:
    def test_select(self):
        out = list(Select(CollectionScan("x", range(5)), lambda r: r["x"] % 2 == 0))
        assert [r["x"] for r in out] == [0, 2, 4]

    def test_project(self):
        src = BindingsSource(tuples({"a": 1, "b": 2}))
        out = list(Project(src, ["a"]))
        assert out[0].as_dict() == {"a": 1}

    def test_compute(self):
        out = list(Compute(CollectionScan("x", [2]), "y", lambda r: r["x"] * 10))
        assert out[0]["y"] == 20

    def test_distinct_all_vars(self):
        src = BindingsSource(tuples({"a": 1}, {"a": 1}, {"a": 2}))
        assert len(list(Distinct(src))) == 2

    def test_distinct_on_subset(self):
        src = BindingsSource(tuples({"a": 1, "b": 1}, {"a": 1, "b": 2}))
        assert len(list(Distinct(src, ["a"]))) == 1

    def test_union_concatenates(self):
        union = Union(CollectionScan("x", [1]), CollectionScan("x", [2]))
        assert [r["x"] for r in union] == [1, 2]

    def test_sort_asc_desc(self):
        src = BindingsSource(tuples({"a": 2, "b": "x"}, {"a": 1, "b": "y"},
                                    {"a": 2, "b": "a"}))
        out = list(Sort(src, [(lambda r: r["a"], True), (lambda r: r["b"], False)]))
        assert [(r["a"], r["b"]) for r in out] == [(2, "a"), (2, "x"), (1, "y")]

    def test_rows_out_counter(self):
        scan = CollectionScan("x", [1, 2, 3])
        select = Select(scan, lambda r: r["x"] > 1)
        list(select)
        assert scan.rows_out == 3
        assert select.rows_out == 2
        select.reset_counters()
        assert scan.rows_out == 0

    def test_explain_tree(self):
        plan = Select(CollectionScan("x", []), lambda r: True, label="x>1")
        text = plan.explain()
        assert "Select(x>1)" in text
        assert "CollectionScan" in text


class TestJoins:
    def test_hash_join_natural(self):
        left = BindingsSource(tuples({"k": 1, "l": "a"}, {"k": 2, "l": "b"}))
        right = BindingsSource(tuples({"k": 2, "r": "x"}, {"k": 3, "r": "y"}))
        out = list(HashJoin(left, right, ("k",)))
        assert len(out) == 1
        assert out[0].as_dict() == {"k": 2, "l": "b", "r": "x"}

    def test_hash_join_missing_var_never_matches(self):
        left = BindingsSource(tuples({"l": "a"}))
        right = BindingsSource(tuples({"k": 1}))
        assert list(HashJoin(left, right, ("k",))) == []

    def test_hash_join_numeric_key_equivalence(self):
        left = BindingsSource(tuples({"k": 1}))
        right = BindingsSource(tuples({"k": 1.0, "r": "x"}))
        assert len(list(HashJoin(left, right, ("k",)))) == 1

    def test_nested_loop_cross_product(self):
        left = CollectionScan("a", [1, 2])
        right = CollectionScan("b", [10, 20])
        assert len(list(NestedLoopJoin(left, right))) == 4

    def test_nested_loop_with_predicate(self):
        left = CollectionScan("a", [1, 2])
        right = CollectionScan("b", [1, 2])
        out = list(NestedLoopJoin(left, right, lambda r: r["a"] < r["b"]))
        assert [(r["a"], r["b"]) for r in out] == [(1, 2)]

    def test_nested_loop_unifies_shared_vars(self):
        left = BindingsSource(tuples({"k": 1}))
        right = BindingsSource(tuples({"k": 1}, {"k": 2}))
        assert len(list(NestedLoopJoin(left, right))) == 1

    def test_dependent_join(self):
        left = CollectionScan("a", [1, 2])

        def factory(row):
            return BindingsSource(tuples({"b": row["a"] * 10}))

        out = list(DependentJoin(left, factory))
        assert [(r["a"], r["b"]) for r in out] == [(1, 10), (2, 20)]


class TestGrouping:
    def test_group_by_count(self):
        src = BindingsSource(tuples({"g": "x"}, {"g": "x"}, {"g": "y"}))
        out = list(GroupBy(src, ["g"], [AggregateSpec("n", "count")]))
        assert {(r["g"], r["n"]) for r in out} == {("x", 2), ("y", 1)}

    def test_group_by_sum_avg_min_max(self):
        src = BindingsSource(tuples({"g": 1, "v": 10}, {"g": 1, "v": 20}))
        out = list(
            GroupBy(
                src,
                ["g"],
                [
                    AggregateSpec("s", "sum", lambda r: r["v"]),
                    AggregateSpec("a", "avg", lambda r: r["v"]),
                    AggregateSpec("lo", "min", lambda r: r["v"]),
                    AggregateSpec("hi", "max", lambda r: r["v"]),
                ],
            )
        )
        assert (out[0]["s"], out[0]["a"], out[0]["lo"], out[0]["hi"]) == (30, 15, 10, 20)

    def test_aggregates_skip_null(self):
        src = BindingsSource(tuples({"g": 1, "v": NULL}, {"g": 1, "v": 5}))
        out = list(GroupBy(src, ["g"], [AggregateSpec("s", "sum", lambda r: r["v"])]))
        assert out[0]["s"] == 5

    def test_group_nesting_collects_records(self):
        src = BindingsSource(tuples({"g": "x", "v": 1}, {"g": "x", "v": 2}))
        out = list(GroupBy(src, ["g"], collect_var="items", collect_fields=("v",)))
        items = out[0]["items"]
        assert [record["v"] for record in items] == [1, 2]
        assert isinstance(items[0], Record)

    def test_global_aggregate_on_empty(self):
        out = list(Aggregate(BindingsSource([]), [AggregateSpec("n", "count")]))
        assert out[0]["n"] == 0

    def test_bad_aggregate_kind(self):
        with pytest.raises(ValueError):
            AggregateSpec("x", "median")


class TestPlan:
    def test_results_with_output_var(self):
        plan = Plan(CollectionScan("x", [1, 2]), "x")
        assert plan.results() == [1, 2]

    def test_operator_stats(self):
        plan = Plan(Select(CollectionScan("x", [1, 2, 3]), lambda r: r["x"] > 2))
        plan.execute()
        stats = dict(plan.operator_stats())
        assert stats["CollectionScan($x)"] == 3

"""Priority admission control over the virtual clock.

The paper's availability story (section 3.4) assumes the mediator
itself stays healthy; an open-loop arrival storm breaks that assumption
before any source does.  :class:`AdmissionController` is the front
door: a fixed pool of concurrency tokens plus bounded per-priority
queues measured in *virtual queue-wait milliseconds*.  A query that
would wait longer than its priority's bound — or longer than its own
deadline budget — is rejected up front with a structured
:class:`~repro.errors.QueryRejected` carrying a virtual-time
``retry_after_ms``, instead of timing out after consuming a slot.

Queue-wait bounds are *inverted* with respect to priority: HIGH traffic
tolerates the longest queue (it is worth waiting for), BACKGROUND the
shortest (it is the first to step aside).  Under saturation this makes
low-priority work shed early while high-priority latency stays bounded.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Mapping

from repro.errors import QueryRejected
from repro.simtime import SimClock


class Priority(enum.IntEnum):
    """Admission priority of one query; higher values matter more."""

    BACKGROUND = 0
    LOW = 1
    NORMAL = 2
    HIGH = 3
    CRITICAL = 4


#: default per-priority queue-wait bounds (virtual ms).  Inverted on
#: purpose: the FIFO instance queues serve everyone in arrival order,
#: so the only way to keep HIGH p95 inside an SLO during a storm is to
#: refuse BACKGROUND/LOW work long before the backlog reaches HIGH's
#: tolerance.
DEFAULT_QUEUE_WAIT_MS: dict[Priority, float] = {
    Priority.BACKGROUND: 60.0,
    Priority.LOW: 150.0,
    Priority.NORMAL: 400.0,
    Priority.HIGH: 800.0,
    Priority.CRITICAL: math.inf,
}


class Admission:
    """One admitted query's ticket; hand it back via ``complete``."""

    __slots__ = ("ticket", "priority", "admitted_at_ms", "queued_ms", "done")

    def __init__(self, ticket: int, priority: Priority,
                 admitted_at_ms: float, queued_ms: float):
        self.ticket = ticket
        self.priority = priority
        self.admitted_at_ms = admitted_at_ms
        self.queued_ms = queued_ms
        self.done = False


class AdmissionController:
    """Token pool + bounded virtual-time queues, priority aware.

    ``max_concurrent`` is the token pool: at most that many admissions
    may be in flight at once (``admit`` without a matching ``complete``
    or ``cancel``).  ``projected_wait_ms`` is the caller's estimate of
    how long the query would sit queued before starting — a cluster
    derives it from instance backlogs; a standalone engine passes 0.
    The admit checks, in order:

    1. *queue capacity* — more than ``queue_capacity`` admissions of
       the same priority already waiting (projected wait > 0) rejects;
    2. *queue-wait bound* — projected wait beyond the priority's bound
       rejects (`DEFAULT_QUEUE_WAIT_MS` unless overridden);
    3. *deadline on queue* — a query whose own ``deadline_ms`` budget
       would be exhausted before it even started is rejected now
       (counted in ``queue_timeouts``) rather than timed out later;
    4. *token pool* — no free token and no queue estimate rejects.

    Every rejection raises :class:`QueryRejected` whose
    ``retry_after_ms`` is the projected wait (or the priority's bound
    when no estimate is available) — the virtual time after which a
    retry has a chance.
    """

    def __init__(
        self,
        clock: SimClock,
        max_concurrent: int = 8,
        queue_capacity: int = 32,
        max_queue_wait_ms: Mapping[Priority, float] | None = None,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")
        self.clock = clock
        self.max_concurrent = max_concurrent
        self.queue_capacity = queue_capacity
        self.max_queue_wait_ms = dict(DEFAULT_QUEUE_WAIT_MS)
        if max_queue_wait_ms is not None:
            self.max_queue_wait_ms.update(max_queue_wait_ms)
        self._next_ticket = 0
        self._in_flight: dict[int, Admission] = {}
        self._waiting: dict[Priority, int] = {p: 0 for p in Priority}
        self.admitted_total = 0
        self.rejected_total = 0
        self.queue_timeouts = 0
        self.cancelled_total = 0
        self.rejected_by_priority: dict[str, int] = {
            p.name: 0 for p in Priority
        }

    # -- the gate ------------------------------------------------------------

    def queue_bound_ms(self, priority: Priority) -> float:
        return self.max_queue_wait_ms.get(Priority(priority), math.inf)

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    @property
    def queue_depth(self) -> int:
        return sum(self._waiting.values())

    def admit(
        self,
        priority: Priority = Priority.NORMAL,
        projected_wait_ms: float = 0.0,
        deadline_ms: float | None = None,
    ) -> Admission:
        """Admit or raise :class:`QueryRejected`; returns the ticket."""
        priority = Priority(priority)
        bound = self.queue_bound_ms(priority)
        queued = projected_wait_ms > 0.0
        if queued and self._waiting[priority] >= self.queue_capacity:
            self._reject(priority, projected_wait_ms,
                         f"{priority.name} queue full "
                         f"({self.queue_capacity} waiting)")
        if projected_wait_ms > bound:
            self._reject(priority, projected_wait_ms,
                         f"projected queue wait {projected_wait_ms:.0f} ms "
                         f"exceeds {priority.name} bound {bound:.0f} ms")
        if deadline_ms is not None and projected_wait_ms >= deadline_ms:
            self.queue_timeouts += 1
            self._reject(priority, projected_wait_ms,
                         f"would exhaust its {deadline_ms:.0f} ms deadline "
                         f"waiting {projected_wait_ms:.0f} ms on queue")
        if not queued and len(self._in_flight) >= self.max_concurrent:
            self._reject(priority, bound if math.isfinite(bound) else 0.0,
                         f"no free slot ({self.max_concurrent} in flight)")
        self._next_ticket += 1
        admission = Admission(self._next_ticket, priority,
                              self.clock.now, projected_wait_ms)
        self._in_flight[admission.ticket] = admission
        if queued:
            self._waiting[priority] += 1
        self.admitted_total += 1
        return admission

    def _reject(self, priority: Priority, retry_after_ms: float,
                reason: str) -> None:
        self.rejected_total += 1
        self.rejected_by_priority[priority.name] += 1
        raise QueryRejected(reason, retry_after_ms=max(0.0, retry_after_ms),
                            priority=int(priority))

    # -- ticket lifecycle ----------------------------------------------------

    def started(self, admission: Admission) -> None:
        """The queued admission reached the front (stops counting as
        waiting); no-op for admissions that started immediately."""
        if admission.queued_ms > 0 and self._waiting[admission.priority] > 0:
            self._waiting[admission.priority] -= 1
            admission.queued_ms = 0.0

    def complete(self, admission: Admission) -> None:
        """Return the token; idempotent."""
        if admission.done:
            return
        admission.done = True
        self.started(admission)
        self._in_flight.pop(admission.ticket, None)

    def cancel(self, admission: Admission) -> None:
        """Return the token for an admission that never ran to completion
        (the query raised mid-flight); idempotent."""
        if admission.done:
            return
        self.cancelled_total += 1
        self.complete(admission)

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        return {
            "max_concurrent": self.max_concurrent,
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
            "queue_timeouts": self.queue_timeouts,
            "cancelled_total": self.cancelled_total,
            "rejected_by_priority": dict(self.rejected_by_priority),
        }

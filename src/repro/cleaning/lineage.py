"""Data lineage: ancestry of every cleaning output, with rollback.

"The system supports a data lineage mechanism, recording data ancestry,
human decisions, and supporting roll-back whenever possible"
(section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import LineageError


@dataclass(frozen=True)
class LineageEntry:
    """One derivation: output produced from inputs by an operation."""

    output_id: str
    input_ids: tuple[str, ...]
    operation: str          # e.g. 'normalize', 'merge', 'link'
    decided_by: str = "auto"
    at_ms: float = 0.0
    note: str = ""


class LineageLog:
    """Append-only derivation log with ancestry queries and rollback."""

    def __init__(self) -> None:
        self._entries: list[LineageEntry] = []
        self._by_output: dict[str, LineageEntry] = {}
        self._rolled_back: set[str] = set()

    def record(
        self,
        output_id: str,
        input_ids: tuple[str, ...] | list[str],
        operation: str,
        decided_by: str = "auto",
        at_ms: float = 0.0,
        note: str = "",
    ) -> LineageEntry:
        if output_id in self._by_output:
            raise LineageError(f"output {output_id!r} already has lineage")
        entry = LineageEntry(
            output_id, tuple(input_ids), operation, decided_by, at_ms, note
        )
        self._entries.append(entry)
        self._by_output[output_id] = entry
        return entry

    def entry_for(self, output_id: str) -> LineageEntry | None:
        return self._by_output.get(output_id)

    def ancestry(self, output_id: str) -> list[LineageEntry]:
        """The full derivation tree above an output (depth-first)."""
        result: list[LineageEntry] = []
        stack = [output_id]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            entry = self._by_output.get(current)
            if entry is None:
                continue
            result.append(entry)
            stack.extend(entry.input_ids)
        return result

    def leaves(self, output_id: str) -> list[str]:
        """Original (source) record ids an output derives from."""
        leaves: list[str] = []
        stack = [output_id]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            entry = self._by_output.get(current)
            if entry is None:
                leaves.append(current)
            else:
                stack.extend(entry.input_ids)
        return sorted(leaves)

    def descendants(self, record_id: str) -> list[str]:
        """Every output that (transitively) derives from ``record_id``."""
        found: list[str] = []
        frontier = {record_id}
        while frontier:
            next_frontier: set[str] = set()
            for entry in self._entries:
                if entry.output_id in found:
                    continue
                if frontier & set(entry.input_ids):
                    found.append(entry.output_id)
                    next_frontier.add(entry.output_id)
            frontier = next_frontier
        return found

    # -- rollback ------------------------------------------------------------

    def rollback(self, output_id: str) -> list[str]:
        """Invalidate an output and everything derived from it.

        Returns the ids invalidated (the output plus its descendants).
        Rolled-back outputs stay in the log (audit trail) but are
        reported invalid.
        """
        if output_id not in self._by_output:
            raise LineageError(f"no lineage for output {output_id!r}")
        invalidated = [output_id] + self.descendants(output_id)
        self._rolled_back.update(invalidated)
        return invalidated

    def is_valid(self, output_id: str) -> bool:
        return output_id not in self._rolled_back

    def valid_outputs(self) -> list[str]:
        return [
            entry.output_id
            for entry in self._entries
            if entry.output_id not in self._rolled_back
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LineageEntry]:
        return iter(self._entries)

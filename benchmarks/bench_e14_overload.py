"""E14 — overload protection: admission control, brownout, hedging.

An open-loop arrival storm against a three-instance cluster of the
extended web-site workload.  Four promises, each measured:

* **goodput plateau** — with the admission controller and load shedder
  wired, goodput (queries served within the latency objective) stays
  near its peak as the offered rate sweeps past saturation; without
  them the same storm drives the backlog unbounded and goodput
  collapses;
* **priority isolation** — HIGH traffic's p95 end-to-end latency stays
  inside its SLO while the storm rages, because the inverted
  queue-wait bounds shed BACKGROUND/LOW work first (>= 90% of sheds);
* **operator visibility** — the brownout ladder climbs as the error
  budget burns, the ``overload_shedding`` alert fires, and it resolves
  during the cooldown once the bad observations age out of the window;
* **zero overhead** — a controller configured never to trigger
  (thresholds at zero, infinite queue-wait bounds, hedging disabled)
  reproduces the unguarded run bit-identically.

A separate section measures request hedging: with a replica registered
for a slow source, the adaptive p95-based hedge launches a backup fetch
and first-result-wins cuts the steady-state fetch latency roughly in
half.

Artifact: ``BENCH_e14_overload.json``.
"""

from __future__ import annotations

import math
import random
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, percentile, print_table, write_bench_json

from repro import (
    AdmissionController,
    AlertManager,
    Catalog,
    EngineCluster,
    FallbackRegistry,
    HedgePolicy,
    LoadShedder,
    MetricsRegistry,
    NetworkModel,
    NimbleEngine,
    Priority,
    SimClock,
    SloPolicy,
    SloTracker,
    SourceRegistry,
    XMLSource,
    default_rules,
)
from repro.admin.replication import DataAdministrator
from repro.optimizer.decomposer import decompose
from repro.query.binder import bind_query
from repro.query.parser import parse_query
from repro.workloads import make_website_workload

#: ~80% of arrivals: one cheap single-source lookup
CHEAP_QUERY = (
    'WHERE <s><sku>$s</sku><price>$p</price></s> IN "stock" '
    "CONSTRUCT <r sku=$s>$p</r>"
)
#: ~20% of arrivals: the four-source page fan-out; ``promo`` (the
#: marketing source) is the sheddable lens under brownout
HEAVY_QUERY = (
    'WHERE <product sku=$s category=$c><name>$n</name></product> '
    'IN "content.products", '
    '<t><sku>$s</sku><price>$p</price></t> IN "stock", '
    '<t><sku>$s</sku><ship_days>$d</ship_days></t> IN "shipping_estimate", '
    '<t><sku>$s</sku><discount>$disc</discount></t> IN "promo" '
    "CONSTRUCT <row sku=$s><price>$p</price><ship>$d</ship>"
    "<disc>$disc</disc></row> ORDER BY $s"
)

N_PRODUCTS = 40
SEED = 23
INSTANCES = 3
STORM_QUERIES = 400
EQUIVALENCE_QUERIES = 120
RATES = (0.5, 1.0, 1.5, 2.0)
HEAVY_FRACTION = 0.2
#: arrival priority mix (no CRITICAL: that lane never sheds by design)
PRIORITY_MIX = (
    (Priority.BACKGROUND, 0.30),
    (Priority.LOW, 0.25),
    (Priority.NORMAL, 0.30),
    (Priority.HIGH, 0.15),
)
#: the SLO window, in serial (engine-clock) milliseconds
SLO_WINDOW_MS = 20_000.0

BENCH_STATS = BenchStats()


def make_workload():
    return make_website_workload(N_PRODUCTS, seed=SEED, extended=True)


# -- (a) capacity calibration -------------------------------------------------


def measure_capacity() -> dict:
    """Sequential service times for the mix; capacity of the cluster."""
    workload = make_workload()
    engine = NimbleEngine(workload.catalog)
    clock = workload.clock

    def timed(text: str) -> float:
        before = clock.now
        BENCH_STATS.absorb(engine.query(text))
        return clock.now - before

    timed(CHEAP_QUERY)  # warm the plan cache
    timed(HEAVY_QUERY)
    cheap_ms = sum(timed(CHEAP_QUERY) for _ in range(8)) / 8
    heavy_ms = sum(timed(HEAVY_QUERY) for _ in range(8)) / 8
    mean_ms = (1 - HEAVY_FRACTION) * cheap_ms + HEAVY_FRACTION * heavy_ms
    return {
        "cheap_service_ms": cheap_ms,
        "heavy_service_ms": heavy_ms,
        "mean_service_ms": mean_ms,
        "capacity_qps": INSTANCES * 1000.0 / mean_ms,
    }


def control_knobs(cal: dict) -> tuple[dict, float, float]:
    """Queue-wait bounds, goodput bound, and the HIGH SLO, all scaled
    to the measured service times so the experiment is self-calibrating.

    The goodput bound sits *below* where the admission bounds alone
    would let the backlog stabilize, so a sustained storm burns the
    latency error budget and walks the brownout ladder — the admission
    gate and the shedder each get to act.
    """
    mean, heavy = cal["mean_service_ms"], cal["heavy_service_ms"]
    bounds = {
        Priority.BACKGROUND: 2 * mean,
        Priority.LOW: 4 * mean,
        Priority.NORMAL: 8 * mean,
        Priority.HIGH: 16 * mean,
        Priority.CRITICAL: math.inf,
    }
    good_ms = 2 * mean + 2 * heavy
    high_slo_ms = 16 * mean + 3 * heavy
    return bounds, good_ms, high_slo_ms


# -- (b) the open-loop storm sweep --------------------------------------------


def make_schedule(rate_qps: float, seed: int,
                  count: int = STORM_QUERIES) -> list:
    """Seeded open-loop arrivals: exponential interarrivals, the
    cheap/heavy query mix, and the priority mix."""
    rng = random.Random(seed)
    schedule = []
    t = 0.0
    for _ in range(count):
        t += rng.expovariate(rate_qps) * 1000.0
        text = HEAVY_QUERY if rng.random() < HEAVY_FRACTION else CHEAP_QUERY
        draw = rng.random()
        cumulative = 0.0
        priority = PRIORITY_MIX[-1][0]
        for candidate, share in PRIORITY_MIX:
            cumulative += share
            if draw < cumulative:
                priority = candidate
                break
        schedule.append((t, text, priority))
    return schedule


def alert_pass(manager, tracker, shedder) -> list:
    """One alerting pass over the cluster-side SLO + shedder context."""
    context = {
        "slo_statuses": tracker.evaluate(),
        "overload": shedder.snapshot(),
    }
    return [
        (transition.rule, transition.state)
        for transition in manager.evaluate(context)
    ]


def run_storm(rate_mult: float, controlled: bool, cal: dict) -> dict:
    workload = make_workload()
    clock = workload.clock
    engine = NimbleEngine(workload.catalog)
    bounds, good_ms, high_slo_ms = control_knobs(cal)
    tracker = shedder = admission = manager = None
    if controlled:
        tracker = SloTracker(clock, policies=[
            SloPolicy("fleet_latency", "latency_p95", good_ms,
                      window_ms=SLO_WINDOW_MS),
        ])
        shedder = LoadShedder(
            tracker,
            policy_names={"fleet_latency"},
            min_window_queries=8,
            sheddable_sources={"marketing"},
        )
        admission = AdmissionController(
            clock,
            max_concurrent=4 * INSTANCES,
            queue_capacity=64,
            max_queue_wait_ms=bounds,
        )
        manager = AlertManager(clock)
        for rule in default_rules():
            manager.add_rule(rule)
    cluster = EngineCluster(
        engine,
        instances=INSTANCES,
        strategy="least_loaded",
        admission=admission,
        shedder=shedder,
        slo=tracker,
    )

    rate_qps = rate_mult * cal["capacity_qps"]
    schedule = make_schedule(rate_qps, seed=1000 + int(rate_mult * 10))
    overload_events: list = []
    peak_level = 0
    for arrival, text, priority in schedule:
        record = cluster.offer(text, arrival, priority=priority)
        if not record.rejected:
            BENCH_STATS.absorb(record.result)
        if manager is not None:
            overload_events.extend(
                event for event in alert_pass(manager, tracker, shedder)
                if event[0] == "overload_shedding"
            )
            peak_level = max(peak_level, int(shedder.level))

    storm_end = schedule[-1][0]
    storm_completed = list(cluster.completed)
    storm_rejected = list(cluster.rejected)

    # cooldown: age the bad observations out of the SLO window, then
    # run a trickle of healthy traffic so the ladder walks back to
    # NORMAL and the overload alert resolves
    still_firing = 0
    if manager is not None:
        clock.advance(1.5 * SLO_WINDOW_MS)
        resume = max(i.free_at_ms for i in cluster.instances) + 1_000.0
        for step in range(10):
            record = cluster.offer(CHEAP_QUERY, resume + 1_000.0 * step,
                                   priority=Priority.NORMAL)
            if not record.rejected:
                BENCH_STATS.absorb(record.result)
            overload_events.extend(
                event for event in alert_pass(manager, tracker, shedder)
                if event[0] == "overload_shedding"
            )
        still_firing = sum(
            1 for alert in manager.active()
            if alert.rule == "overload_shedding"
        )

    span_s = storm_end / 1000.0
    latencies = [r.latency_ms for r in storm_completed]
    good = sum(1 for value in latencies if value <= good_ms)
    high = [r.latency_ms for r in storm_completed
            if r.priority == Priority.HIGH]
    shed_counts = Counter(r.priority.name for r in storm_rejected)
    return {
        "rate": rate_mult,
        "controlled": controlled,
        "offered": len(schedule),
        "served": len(storm_completed),
        "rejected": len(storm_rejected),
        "good": good,
        "goodput_qps": good / span_s,
        "p95_ms": percentile(latencies, 0.95),
        "high_p95_ms": percentile(high, 0.95),
        "high_served": len(high),
        "degraded": sum(
            1 for r in storm_completed if not r.result.completeness.complete
        ),
        "shed_by_priority": dict(shed_counts),
        "peak_level": peak_level,
        "overload_events": overload_events,
        "still_firing": still_firing,
        "good_ms": good_ms,
        "high_slo_ms": high_slo_ms,
    }


def run_sweep(cal: dict) -> dict:
    cells = {}
    for rate in RATES:
        for controlled in (False, True):
            cells[(rate, controlled)] = run_storm(rate, controlled, cal)
    return cells


# -- (c) hedged fetches cut the steady-state tail -----------------------------

FEED_QUERY = (
    'WHERE <item><v>$v</v></item> IN "feed.data" CONSTRUCT <out>$v</out>'
)
HEDGE_RUNS = 12
FEED_LATENCY_MS = 60.0


def run_hedging_section() -> dict:
    def _run(hedged: bool) -> dict:
        clock = SimClock()
        registry = SourceRegistry(clock)
        doc = ("<feed>"
               + "".join(f"<item><v>v{i}</v></item>" for i in range(6))
               + "</feed>")
        registry.register(XMLSource(
            "feed", {"data": doc},
            network=NetworkModel(latency_ms=FEED_LATENCY_MS, per_row_ms=0.4),
        ))
        catalog = Catalog(registry)
        fragment = decompose(
            bind_query(parse_query(FEED_QUERY)), catalog
        ).units[0].fragment
        admin = DataAdministrator(clock)
        admin.add_job("copy", registry.get("feed"), fragment, "replica_feed",
                      period_ms=600_000.0)
        admin.run_job("copy")
        fallbacks = FallbackRegistry()
        admin.register_fallbacks(fallbacks)
        engine = NimbleEngine(
            catalog,
            fallbacks=fallbacks,
            metrics=MetricsRegistry(),
            hedging=(HedgePolicy(min_samples=1, delay_factor=0.5)
                     if hedged else None),
        )
        BENCH_STATS.absorb(engine.query(FEED_QUERY))  # seed the histogram
        latencies = []
        launched = won = 0
        for _ in range(HEDGE_RUNS):
            before = clock.now
            result = BENCH_STATS.absorb(engine.query(FEED_QUERY))
            latencies.append(clock.now - before)
            launched += result.stats.hedges_launched
            won += result.stats.hedges_won
        return {
            "mean_ms": sum(latencies) / len(latencies),
            "p95_ms": percentile(latencies, 0.95),
            "launched": launched,
            "won": won,
        }

    plain = _run(hedged=False)
    hedged = _run(hedged=True)
    return {"plain": plain, "hedged": hedged}


# -- (d) a never-triggering controller is bit-identical to none --------------


def run_equivalence_section(cal: dict) -> dict:
    _, good_ms, _ = control_knobs(cal)

    def _run(guarded: bool) -> dict:
        workload = make_workload()
        clock = workload.clock
        engine = NimbleEngine(workload.catalog)
        tracker = shedder = admission = None
        if guarded:
            tracker = SloTracker(clock, policies=[
                SloPolicy("fleet_latency", "latency_p95", good_ms,
                          window_ms=SLO_WINDOW_MS),
            ])
            # thresholds at zero can never exceed a non-negative
            # remaining budget; infinite bounds never refuse a queue
            shedder = LoadShedder(
                tracker,
                thresholds=(0.0, 0.0, 0.0, 0.0),
                min_window_queries=1,
                sheddable_sources={"marketing"},
            )
            admission = AdmissionController(
                clock,
                max_concurrent=100_000,
                queue_capacity=100_000,
                max_queue_wait_ms={p: math.inf for p in Priority},
            )
        cluster = EngineCluster(
            engine,
            instances=INSTANCES,
            strategy="least_loaded",
            admission=admission,
            shedder=shedder,
            slo=tracker,
        )
        schedule = make_schedule(cal["capacity_qps"], seed=SEED + 977,
                                 count=EQUIVALENCE_QUERIES)
        trace = []
        totals = None
        for arrival, text, priority in schedule:
            record = cluster.offer(text, arrival, priority=priority)
            assert not record.rejected, "the guard config must never trigger"
            result = BENCH_STATS.absorb(record.result)
            trace.append((
                record.instance, record.arrival_ms, record.start_ms,
                record.completion_ms, len(result.elements),
            ))
            if totals is None:
                totals = result.stats.__class__()
            totals.absorb(result.stats)
        return {
            "trace": trace,
            "counters": totals.counters(),
            "clock": clock.now,
            "sheds": 0 if shedder is None else shedder.shed_queries,
            "rejections": (0 if admission is None
                           else admission.rejected_total),
        }

    off = _run(guarded=False)
    on = _run(guarded=True)
    return {
        "identical": int(
            off["trace"] == on["trace"]
            and off["counters"] == on["counters"]
            and off["clock"] == on["clock"]
        ),
        "guard_sheds": on["sheds"],
        "guard_rejections": on["rejections"],
    }


# -- assembly -----------------------------------------------------------------


def run_experiment() -> list[list]:
    BENCH_STATS.reset()
    cal = measure_capacity()
    cells = run_sweep(cal)
    hedging = run_hedging_section()
    equivalence = run_equivalence_section(cal)

    rows: list[list] = [
        ["capacity qps", round(cal["capacity_qps"], 2),
         f"mean service {cal['mean_service_ms']:.0f}ms "
         f"(cheap {cal['cheap_service_ms']:.0f}, "
         f"heavy {cal['heavy_service_ms']:.0f})"],
    ]
    for rate in RATES:
        for controlled in (False, True):
            cell = cells[(rate, controlled)]
            mode = "on" if controlled else "off"
            rows.append([
                f"goodput qps ({rate:.1f}x, {mode})",
                round(cell["goodput_qps"], 2),
                f"served {cell['served']}/{cell['offered']}, "
                f"good {cell['good']}, shed {cell['rejected']}, "
                f"p95 {cell['p95_ms']:.0f}ms",
            ])

    def retention(controlled: bool) -> float:
        goodputs = {rate: cells[(rate, controlled)]["goodput_qps"]
                    for rate in RATES}
        peak = max(goodputs.values())
        return goodputs[2.0] / peak if peak else 0.0

    storm = cells[(2.0, True)]
    shed_totals = Counter()
    for rate in RATES:
        shed_totals.update(cells[(rate, True)]["shed_by_priority"])
    total_sheds = sum(shed_totals.values())
    low_sheds = (shed_totals.get("BACKGROUND", 0)
                 + shed_totals.get("LOW", 0))
    fired = sum(1 for _, state in storm["overload_events"]
                if state == "firing")
    resolved = sum(1 for _, state in storm["overload_events"]
                   if state == "resolved")
    rows += [
        ["goodput retention at 2.0x (on)", round(retention(True), 3),
         "vs controlled peak"],
        ["goodput retention at 2.0x (off)", round(retention(False), 3),
         "vs uncontrolled peak"],
        ["high p95 ms (2.0x, on)", round(storm["high_p95_ms"], 1),
         f"slo {storm['high_slo_ms']:.0f}ms over "
         f"{storm['high_served']} served"],
        ["high p95 within slo (2.0x, on)",
         int(storm["high_p95_ms"] <= storm["high_slo_ms"]), ""],
        ["sheds at background/low priority",
         round(low_sheds / total_sheds, 3) if total_sheds else 1.0,
         f"{low_sheds}/{total_sheds} across controlled cells"],
        ["peak brownout level (2.0x, on)", storm["peak_level"], ""],
        ["degraded answers (2.0x, on)", storm["degraded"],
         "lens-shed but served"],
        ["overload alerts fired (2.0x, on)", fired, ""],
        ["overload alerts resolved (2.0x, on)", resolved, ""],
        ["overload alerts still firing", storm["still_firing"], ""],
        ["unhedged mean fetch ms", round(hedging["plain"]["mean_ms"], 1),
         f"p95 {hedging['plain']['p95_ms']:.1f}ms"],
        ["hedged mean fetch ms", round(hedging["hedged"]["mean_ms"], 1),
         f"p95 {hedging['hedged']['p95_ms']:.1f}ms"],
        ["hedges launched", hedging["hedged"]["launched"],
         f"of {HEDGE_RUNS} runs"],
        ["hedges won", hedging["hedged"]["won"], ""],
        ["never-trigger run identical", equivalence["identical"], ""],
        ["never-trigger sheds", equivalence["guard_sheds"], ""],
        ["never-trigger rejections", equivalence["guard_rejections"], ""],
    ]
    return rows


def report():
    rows = run_experiment()
    print_table(
        "E14: overload protection (open-loop storm, virtual clock)",
        ["metric", "value", "detail"],
        rows,
    )
    by_metric = {row[0]: row for row in rows}
    write_bench_json(
        "e14_overload",
        ["metric", "value", "detail"],
        rows,
        headline={
            "capacity_qps": by_metric["capacity qps"][1],
            "goodput_retention_on_2x":
                by_metric["goodput retention at 2.0x (on)"][1],
            "goodput_retention_off_2x":
                by_metric["goodput retention at 2.0x (off)"][1],
            "high_p95_within_slo":
                by_metric["high p95 within slo (2.0x, on)"][1],
            "background_low_shed_fraction":
                by_metric["sheds at background/low priority"][1],
            "overload_alerts_fired":
                by_metric["overload alerts fired (2.0x, on)"][1],
            "overload_alerts_resolved":
                by_metric["overload alerts resolved (2.0x, on)"][1],
            "never_trigger_identical":
                by_metric["never-trigger run identical"][1],
        },
        stats=BENCH_STATS,
    )
    return rows


def test_e14_overload(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_metric = {row[0]: row for row in rows}
    on_2x = by_metric["goodput qps (2.0x, on)"][1]
    off_2x = by_metric["goodput qps (2.0x, off)"][1]
    # (a) goodput plateaus past saturation with the controller, and
    # collapses without it
    assert by_metric["goodput retention at 2.0x (on)"][1] >= 0.8
    assert by_metric["goodput retention at 2.0x (off)"][1] <= 0.6
    assert on_2x > off_2x
    # (b) priority isolation: HIGH stays inside its SLO and the sheds
    # land overwhelmingly on BACKGROUND/LOW traffic
    assert by_metric["high p95 within slo (2.0x, on)"][1] == 1
    assert by_metric["sheds at background/low priority"][1] >= 0.9
    # (c) the ladder climbed, the alert fired, and it resolved
    assert by_metric["peak brownout level (2.0x, on)"][1] >= 1
    assert by_metric["overload alerts fired (2.0x, on)"][1] >= 1
    assert by_metric["overload alerts resolved (2.0x, on)"][1] >= 1
    assert by_metric["overload alerts still firing"][1] == 0
    # (d) hedging cuts the steady-state fetch latency
    assert (by_metric["hedged mean fetch ms"][1]
            < by_metric["unhedged mean fetch ms"][1])
    assert by_metric["hedges launched"][1] == HEDGE_RUNS
    assert by_metric["hedges won"][1] == HEDGE_RUNS
    # (e) the guard rails cost nothing when they never trigger
    assert by_metric["never-trigger run identical"][1] == 1
    assert by_metric["never-trigger sheds"][1] == 0
    assert by_metric["never-trigger rejections"][1] == 0
    report()


if __name__ == "__main__":
    report()

"""Mediated schemas: named bundles of view definitions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MediationError
from repro.query import ast as qast
from repro.query.parser import parse_query


@dataclass
class ViewDef:
    """A mediated relation defined by an XML-QL query.

    The query's CONSTRUCT template describes the elements the view
    exports; its WHERE clauses may reference mappings, sources, or other
    views — that recursion is what makes schemas hierarchical.
    """

    name: str
    query: qast.Query
    description: str = ""

    @classmethod
    def from_text(cls, name: str, text: str, description: str = "") -> "ViewDef":
        return cls(name, parse_query(text), description)

    def referenced_names(self) -> tuple[str, ...]:
        return self.query.sources


@dataclass
class MediatedSchema:
    """A named collection of views, the unit users are granted access to.

    Schemas stack: a schema's views may reference relations of lower
    schemas, so "the integration of the data sources ... can be done in
    an incremental fashion (possibly in different parts of an
    organization)".
    """

    name: str
    views: dict[str, ViewDef] = field(default_factory=dict)
    description: str = ""

    def define(self, view: ViewDef) -> None:
        if view.name in self.views:
            raise MediationError(
                f"schema {self.name!r} already defines {view.name!r}"
            )
        self.views[view.name] = view

    def define_view(self, name: str, query_text: str, description: str = "") -> ViewDef:
        view = ViewDef.from_text(name, query_text, description)
        self.define(view)
        return view

    def view_names(self) -> list[str]:
        return sorted(self.views)

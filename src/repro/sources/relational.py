"""Wrapper for relational sources backed by the embedded SQL engine."""

from __future__ import annotations

from typing import Any, Iterable

from repro.sources.base import CapabilityProfile, DataSource, Fragment, NetworkModel
from repro.sources.sqlgen import generate_sql
from repro.simtime import SimClock
from repro.sql.database import Database
from repro.sql.types import SQLType
from repro.xmldm.schema import Field, RecordType
from repro.xmldm.values import NULL, Record

_SQL_TO_MODEL = {
    SQLType.INTEGER: "number",
    SQLType.REAL: "number",
    SQLType.TEXT: "string",
    SQLType.BOOLEAN: "boolean",
    SQLType.DATE: "date",
}


class RelationalSource(DataSource):
    """A remote RDB: full pushdown capabilities, SQL on the wire.

    The wrapper compiles each fragment to SQL with
    :func:`repro.sources.sqlgen.generate_sql`, runs it on the embedded
    engine, and returns records keyed by the fragment's variables.  The
    last statement sent is kept on ``last_sql`` so tests and benchmarks
    can assert what was pushed.
    """

    capabilities = CapabilityProfile(
        selections=True,
        projections=True,
        joins=True,
        aggregates=True,
        parameterized=True,
    )

    def __init__(
        self,
        name: str,
        database: Database,
        clock: SimClock | None = None,
        network: NetworkModel | None = None,
    ):
        super().__init__(name, clock, network)
        self.database = database
        self.last_sql: str | None = None

    def relations(self) -> dict[str, RecordType]:
        exported: dict[str, RecordType] = {}
        for table_name in self.database.table_names():
            schema = self.database.table(table_name).schema
            exported[table_name] = RecordType(
                table_name,
                tuple(
                    Field(column.name, _SQL_TO_MODEL[column.type], column.nullable)
                    for column in schema.columns
                ),
            )
        return exported

    def cardinality(self, relation: str) -> int:
        return self.database.row_count(relation)

    def _fetch_all(self, relation: str):
        result = self.database.execute(f"SELECT * FROM {relation}")
        for row in result.rows:
            yield Record(
                {
                    name: (NULL if value is None else value)
                    for name, value in zip(result.columns, row)
                }
            )

    def _execute(self, fragment: Fragment, params: dict[str, Any]) -> Iterable[Record]:
        generated = generate_sql(fragment)
        self.last_sql = generated.text
        result = self.database.execute(generated.text, generated.bind(params))
        for row in result.rows:
            yield Record(
                {
                    name: (NULL if value is None else value)
                    for name, value in zip(result.columns, row)
                }
            )

    # -- mutation (the capture half of CDC) --------------------------------

    def enable_cdc(self, keys=None):
        """Attach a change feed; primary keys are declared automatically.

        Consumers of the feed (scoped cache invalidation, incremental
        view maintenance) decide what they can do by asking the
        changelog for a relation's key field, so every table with a
        primary key declares it up front; explicit ``keys`` override.
        """
        log = super().enable_cdc(keys)
        for relation in self.database.table_names():
            if log.key_field(relation) is None:
                pk = self.database.table(relation).schema.primary_key
                if pk is not None:
                    log.declare_key(relation, pk.name)
        return log

    def _key_field(self, relation: str) -> str | None:
        """CDC-declared key first, else the table's primary key."""
        if self.changelog is not None:
            declared = self.changelog.key_field(relation)
            if declared is not None:
                return declared
        pk = self.database.table(relation).schema.primary_key
        return pk.name if pk is not None else None

    def _row_record(self, relation: str, row: tuple) -> Record:
        names = self.database.table(relation).schema.column_names
        return Record(
            {
                name: (NULL if value is None else value)
                for name, value in zip(names, row)
            }
        )

    def _find_rowid(self, relation: str, key: Any) -> tuple[int, tuple] | None:
        table = self.database.table(relation)
        key_field = self._key_field(relation)
        if key_field is None:
            return None
        index = table.schema.column_index(key_field)
        for rowid, row in table.scan():
            if row[index] == key:
                return rowid, row
        return None

    def insert_row(self, relation: str, values: dict[str, Any]) -> None:
        """Insert one named row, emitting an ``insert`` change record."""
        table = self.database.table(relation)
        rowid = table.insert_named(values)
        if self.changelog is None:
            return
        key_field = self._key_field(relation)
        if key_field is None:
            self.changelog.emit_reset(relation)
            return
        row = self._row_record(relation, table.get(rowid))
        self.changelog.emit("insert", relation, key=row.get(key_field),
                            row=row)

    def update_row(self, relation: str, key: Any,
                   changes: dict[str, Any]) -> None:
        """Update the row keyed ``key``, emitting an ``update`` record."""
        found = self._find_rowid(relation, key)
        if found is None:
            raise KeyError(f"{relation!r} has no row with key {key!r}")
        rowid, old_row = found
        table = self.database.table(relation)
        table.update(rowid, changes)
        if self.changelog is None:
            return
        before = self._row_record(relation, old_row)
        after = self._row_record(relation, table.get(rowid))
        key_field = self._key_field(relation)
        if after.get(key_field) != before.get(key_field):
            # a key change is a delete plus an insert in delta terms;
            # keep it simple and force derived state to rebuild
            self.changelog.emit_reset(relation)
            return
        self.changelog.emit("update", relation, key=key, row=after,
                            before=before)

    def delete_row(self, relation: str, key: Any) -> None:
        """Delete the row keyed ``key``, emitting a ``delete`` record."""
        found = self._find_rowid(relation, key)
        if found is None:
            raise KeyError(f"{relation!r} has no row with key {key!r}")
        rowid, old_row = found
        self.database.table(relation).delete(rowid)
        if self.changelog is None:
            return
        before = self._row_record(relation, old_row)
        self.changelog.emit("delete", relation, key=key, before=before)

"""Unit tests for element trees: navigation, order, content."""

import pytest

from repro.xmldm.document import Document
from repro.xmldm.nodes import Comment, Element, ProcessingInstruction, Text


@pytest.fixture
def tree():
    root = Element("library")
    shelf_a = Element("shelf", {"label": "a"})
    shelf_b = Element("shelf", {"label": "b"})
    root.append(shelf_a)
    root.append(shelf_b)
    shelf_a.append(Element("book", children=["Alpha"]))
    shelf_a.append(Element("book", children=["Beta"]))
    shelf_b.append(Element("book", children=["Gamma"]))
    return Document(root)


class TestStructure:
    def test_append_sets_parent(self):
        parent = Element("p")
        child = parent.append(Element("c"))
        assert child.parent is parent

    def test_append_string_becomes_text(self):
        parent = Element("p")
        node = parent.append("hello")
        assert isinstance(node, Text)
        assert node.value == "hello"

    def test_insert(self):
        parent = Element("p", children=[Element("b")])
        parent.insert(0, Element("a"))
        assert [c.tag for c in parent.child_elements()] == ["a", "b"]

    def test_remove_clears_parent(self):
        parent = Element("p")
        child = parent.append(Element("c"))
        parent.remove(child)
        assert child.parent is None
        assert not parent.children

    def test_text_content_concatenates(self):
        element = Element("p", children=["a", Element("b", children=["c"]), "d"])
        assert element.text_content() == "acd"

    def test_get_attribute(self):
        element = Element("a", {"x": "1"})
        assert element.get("x") == "1"
        assert element.get("y", "dflt") == "dflt"


class TestNavigation:
    def test_child_elements_filter(self, tree):
        shelves = list(tree.root.child_elements("shelf"))
        assert len(shelves) == 2

    def test_first_child(self, tree):
        assert tree.root.first_child("shelf").attributes["label"] == "a"
        assert tree.root.first_child("nope") is None

    def test_descendants_in_document_order(self, tree):
        books = [b.text_content() for b in tree.root.descendants("book")]
        assert books == ["Alpha", "Beta", "Gamma"]

    def test_descendants_or_self_includes_self(self, tree):
        tags = [e.tag for e in tree.root.descendants_or_self()]
        assert tags[0] == "library"
        assert tags.count("book") == 3

    def test_ancestors(self, tree):
        book = next(tree.root.descendants("book"))
        assert [a.tag for a in book.ancestors()] == ["shelf", "library"]

    def test_root(self, tree):
        book = next(tree.root.descendants("book"))
        assert book.root() is tree.root

    def test_following_siblings(self, tree):
        shelf_a = tree.root.first_child("shelf")
        following = list(shelf_a.following_siblings())
        assert len(following) == 1
        assert following[0].attributes["label"] == "b"

    def test_preceding_siblings_nearest_first(self):
        parent = Element("p", children=[Element("a"), Element("b"), Element("c")])
        c = parent.children[2]
        assert [s.tag for s in c.preceding_siblings()] == ["b", "a"]

    def test_siblings_of_root_are_empty(self, tree):
        assert list(tree.root.following_siblings()) == []
        assert list(tree.root.preceding_siblings()) == []


class TestDocumentOrder:
    def test_preorder_numbering(self, tree):
        orders = [node.document_order for node in tree.root.walk()]
        assert orders == sorted(orders)
        assert orders[0] == 0

    def test_renumber_after_mutation(self, tree):
        tree.root.append(Element("annex"))
        count = tree.renumber()
        orders = [node.document_order for node in tree.root.walk()]
        assert len(orders) == count
        assert orders == list(range(count))

    def test_detached_node_is_unnumbered(self):
        assert Element("x").document_order == -1


class TestEqualityAndCopy:
    def test_structural_equality(self):
        a = Element("x", {"k": "v"}, children=["t", Element("y")])
        b = Element("x", {"k": "v"}, children=["t", Element("y")])
        assert a == b

    def test_inequality_on_attributes(self):
        assert Element("x", {"k": "1"}) != Element("x", {"k": "2"})

    def test_copy_is_deep_and_detached(self, tree):
        clone = tree.root.copy()
        assert clone == tree.root
        assert clone.parent is None
        clone.first_child("shelf").attributes["label"] = "changed"
        assert tree.root.first_child("shelf").attributes["label"] == "a"

    def test_copy_preserves_comments_and_pis(self):
        element = Element("x")
        element.append(Comment("note"))
        element.append(ProcessingInstruction("target", "data"))
        clone = element.copy()
        assert clone == element

    def test_comment_has_no_text_content(self):
        assert Comment("hi").text_content() == ""

"""E8 — the Figure 1 pipeline, timed stage by stage.

The paper's only figure is the architecture diagram: front end (lenses)
-> integration engine (parse, compile against the metadata server,
execute over wrappers) -> data sources, with the data administrator /
materialization subsystem on the side.  This bench walks one lens
invocation of the web-site workload through every stage and reports the
per-stage cost — wall-clock microseconds for the engine-local stages
and virtual milliseconds for the remote work.

Expected shape: remote execution dominates end-to-end virtual latency;
parsing/compilation are microseconds — the architecture's premise that
the wire, not the mediator, is the bottleneck.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, print_table, write_bench_json

from repro import NimbleEngine, format_result
from repro.optimizer.decomposer import decompose
from repro.query.binder import bind_query
from repro.query.parser import parse_query
from repro.workloads import make_website_workload

QUERY = (
    'WHERE <page sku=$s><name>$n</name><price>$p</price></page> '
    'IN "product_page", $p < 250 '
    "CONSTRUCT <row sku=$s><name>$n</name><price>$p</price></row> "
    "ORDER BY $p"
)

BENCH_STATS = BenchStats()


def run_experiment() -> list[list]:
    BENCH_STATS.reset()
    workload = make_website_workload(50, seed=23)
    engine = NimbleEngine(workload.catalog)

    def wall(fn):
        started = time.perf_counter()
        value = fn()
        return value, (time.perf_counter() - started) * 1e6

    query, parse_us = wall(lambda: parse_query(QUERY))
    bound, bind_us = wall(lambda: bind_query(query))
    decomposed, decompose_us = wall(
        lambda: decompose(bound, engine.catalog, engine.pushdown)
    )

    before_virtual = engine.clock.now
    result, execute_us = wall(
        lambda: BENCH_STATS.absorb(engine.query(query))
    )
    execute_virtual = engine.clock.now - before_virtual

    rendered, format_us = wall(
        lambda: format_result(result.elements, "web")
    )

    rows = [
        ["parse (query language)", round(parse_us), 0.0],
        ["bind (semantic analysis)", round(bind_us), 0.0],
        ["compile (metadata server + decompose)", round(decompose_us), 0.0],
        ["execute (wrappers + algebra)", round(execute_us),
         execute_virtual],
        ["format (lens device rendering)", round(format_us), 0.0],
    ]
    rows.append([
        "TOTAL",
        round(parse_us + bind_us + decompose_us + execute_us + format_us),
        execute_virtual,
    ])
    rows.append(["(result elements)", len(result.elements), 0.0])
    return rows


def report():
    rows = run_experiment()
    print_table(
        "E8: Figure 1 pipeline, per-stage cost (web-site workload)",
        ["stage", "wall us", "virtual ms (remote)"],
        rows,
    )
    stages = {row[0]: row for row in rows}
    write_bench_json(
        "e8_end_to_end",
        ["stage", "wall us", "virtual ms (remote)"],
        rows,
        headline={
            "total_wall_us": stages["TOTAL"][1],
            "execute_virtual_ms": stages["TOTAL"][2],
        },
        stats=BENCH_STATS,
    )
    return rows


def test_e8_end_to_end(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    stages = {row[0]: row for row in rows}
    # remote work dominates virtual latency; local compilation is cheap
    assert stages["execute (wrappers + algebra)"][2] > 0
    assert stages["parse (query language)"][1] < stages["TOTAL"][1]
    assert stages["(result elements)"][1] > 0
    report()


if __name__ == "__main__":
    report()

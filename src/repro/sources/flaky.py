"""Availability simulation: sources that go offline.

Section 3.4: "In many applications, it's never the case that all sources
are available ... In the worst case, there may be so many data sources
that the probability that they are all available simultaneously is
nearly zero."  :class:`FlakySource` wraps any source with a
deterministic availability process so experiment E4 can sweep per-source
availability and observe exactly that collapse — and the engine's
partial-results recovery from it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable

from repro.sources.base import DataSource, Fragment
from repro.xmldm.schema import RecordType
from repro.xmldm.values import Record


@dataclass
class AvailabilityModel:
    """A two-state (up/down) renewal process driven by a seeded RNG.

    ``availability`` is the long-run fraction of time up; the process
    alternates exponential up/down periods calibrated to that fraction
    with mean outage ``mean_outage_ms``.  Sampling is by virtual time,
    so two runs over the same query schedule see the same outages.
    """

    availability: float = 0.99
    mean_outage_ms: float = 5_000.0
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        self._rng = random.Random(self.seed)
        self._up = True
        self._boundary_ms = self._draw_duration(up=True)

    def _mean_uptime_ms(self) -> float:
        if self.availability == 1.0:
            return float("inf")
        return self.mean_outage_ms * self.availability / (1.0 - self.availability)

    def _draw_duration(self, up: bool) -> float:
        mean = self._mean_uptime_ms() if up else self.mean_outage_ms
        if mean == float("inf"):
            return float("inf")
        return self._rng.expovariate(1.0 / mean)

    def _advance_state(self, now_ms: float) -> None:
        # The current state ends at the boundary; cross boundaries one at
        # a time, flipping state and drawing the new state's duration.
        # An infinite boundary (availability=1.0) never ends — without
        # this guard, is_up(inf) would flip states forever.
        while self._boundary_ms <= now_ms and self._boundary_ms != float("inf"):
            self._up = not self._up
            self._boundary_ms += self._draw_duration(self._up)

    def is_up(self, now_ms: float) -> bool:
        self._advance_state(now_ms)
        return self._up


class FlakySource(DataSource):
    """Decorates any source with an availability process.

    ``faults`` additionally injects per-call transient failures, slow
    calls, and mid-stream drops (see
    :class:`repro.resilience.faults.FaultModel`) — outages model *down
    windows*, faults model *bad individual calls*.
    """

    def __init__(self, inner: DataSource, model: AvailabilityModel | None = None,
                 faults=None):
        super().__init__(inner.name, inner.clock, inner.network,
                         faults=faults or inner.faults)
        self.inner = inner
        self.model = model or AvailabilityModel()
        self.capabilities = inner.capabilities
        self.forced_offline = False

    def relations(self) -> dict[str, RecordType]:
        return self.inner.relations()

    def cardinality(self, relation: str) -> int:
        return self.inner.cardinality(relation)

    def available(self) -> bool:
        if self.forced_offline:
            return False
        return self.model.is_up(self.clock.now) and self.inner.available()

    def force_offline(self, offline: bool = True) -> None:
        """Manual outage switch (tests and demos)."""
        self.forced_offline = offline

    def _execute(self, fragment: Fragment, params: dict[str, Any]) -> Iterable[Record]:
        return self.inner._execute(fragment, params)

    def _fetch_all(self, relation: str):
        return self.inner._fetch_all(relation)

    def validate_fragment(self, fragment: Fragment) -> None:
        self.inner.validate_fragment(fragment)

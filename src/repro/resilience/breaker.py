"""Per-source circuit breakers over the virtual clock.

A breaker protects the engine from hammering a failing source: once the
recent failure rate crosses a threshold the breaker *opens* and calls
fail fast (no network charge, no retry storm).  After a cooldown of
virtual time it *half-opens* and lets probe calls through; enough probe
successes close it again, a probe failure re-opens it.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.errors import CircuitOpenError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one circuit breaker."""

    #: how many recent calls the failure rate is computed over
    window: int = 10
    #: failure fraction within the window that trips the breaker
    failure_threshold: float = 0.5
    #: minimum calls in the window before the breaker may trip
    min_calls: int = 4
    #: virtual ms the breaker stays open before probing
    cooldown_ms: float = 10_000.0
    #: consecutive probe successes needed to close from half-open
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_calls < 1 or self.half_open_probes < 1:
            raise ValueError("window, min_calls, half_open_probes must be >= 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.cooldown_ms < 0:
            raise ValueError("cooldown_ms must be non-negative")


class CircuitBreaker:
    """Closed -> open -> half-open state machine for one source."""

    def __init__(self, config: BreakerConfig | None = None,
                 source_name: str = ""):
        self.config = config or BreakerConfig()
        self.source_name = source_name
        self.state = BreakerState.CLOSED
        self.opened_at_ms: float | None = None
        self.times_opened = 0
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._probe_successes = 0

    # -- gate ---------------------------------------------------------------

    def allow(self, now_ms: float) -> bool:
        """May a call proceed right now?  (May move open -> half-open.)"""
        if self.state is BreakerState.OPEN:
            assert self.opened_at_ms is not None
            if now_ms - self.opened_at_ms >= self.config.cooldown_ms:
                self.state = BreakerState.HALF_OPEN
                self._probe_successes = 0
                return True
            return False
        return True

    def check(self, now_ms: float) -> None:
        """Raise :class:`CircuitOpenError` when calls must fail fast."""
        if not self.allow(now_ms):
            assert self.opened_at_ms is not None
            remaining = self.config.cooldown_ms - (now_ms - self.opened_at_ms)
            raise CircuitOpenError(self.source_name, remaining)

    # -- outcomes -----------------------------------------------------------

    def record_success(self, now_ms: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_probes:
                self._close()
            return
        self._outcomes.append(True)

    def record_failure(self, now_ms: float) -> bool:
        """Record one failed call; returns True when the breaker trips."""
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now_ms)
            return True
        self._outcomes.append(False)
        if self.state is BreakerState.CLOSED:
            if len(self._outcomes) >= self.config.min_calls:
                if self.failure_rate() >= self.config.failure_threshold:
                    self._trip(now_ms)
                    return True
        return False

    # -- introspection ------------------------------------------------------

    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        failures = sum(1 for ok in self._outcomes if not ok)
        return failures / len(self._outcomes)

    def _trip(self, now_ms: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_at_ms = now_ms
        self.times_opened += 1
        self._outcomes.clear()

    def _close(self) -> None:
        self.state = BreakerState.CLOSED
        self.opened_at_ms = None
        self._outcomes.clear()
        self._probe_successes = 0

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.source_name!r} {self.state.value} "
                f"rate={self.failure_rate():.2f}>")

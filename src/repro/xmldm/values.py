"""Structured values: the "slightly more structured than XML" layer.

Atomic values are plain Python objects (``str``, ``int``, ``float``,
``bool``, ``datetime.date``/``datetime.datetime`` and the :data:`NULL`
sentinel).  On top of those this module defines :class:`Record` — an
ordered mapping of field names to values, the natural image of a
relational row — and :class:`Collection` — a homogeneous ordered sequence,
the natural image of a relational table or of a repeated XML element.

Keeping atomics unboxed keeps the physical algebra fast; keeping Record
and Collection as first-class model values lets relational sources flow
through the engine without being wrapped in element trees first (the
design point section 3.1 of the paper insists on).
"""

from __future__ import annotations

import datetime
from typing import Any, Iterable, Iterator, Mapping


class Null:
    """Singleton marker for missing data (SQL NULL / absent XML content).

    ``NULL`` is falsy, equal only to itself, and sorts before every other
    value under :func:`compare_values`.
    """

    _instance: "Null | None" = None

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL"

    def __hash__(self) -> int:
        return hash("repro.NULL")


NULL = Null()

ATOMIC_TYPES = (str, int, float, bool, datetime.date, datetime.datetime, Null)


class Record:
    """An ordered, immutable mapping of field names to model values.

    Records compare by content and hash by content, so they can key hash
    joins and be deduplicated by ``Distinct``.
    """

    __slots__ = ("_fields",)

    def __init__(self, fields: Mapping[str, Any] | Iterable[tuple[str, Any]] = ()):
        if isinstance(fields, Mapping):
            items = tuple(fields.items())
        else:
            items = tuple(fields)
        self._fields: dict[str, Any] = dict(items)
        if len(self._fields) != len(items):
            raise ValueError("duplicate field names in Record")

    @property
    def fields(self) -> tuple[str, ...]:
        return tuple(self._fields)

    @property
    def field_map(self) -> Mapping[str, Any]:
        """The underlying name->value mapping, zero-copy.

        Callers must treat it as read-only; it exists so bulk consumers
        (columnar shredding) can skip the per-record dict copy that
        :meth:`as_dict` makes.
        """
        return self._fields

    def get(self, name: str, default: Any = NULL) -> Any:
        return self._fields.get(name, default)

    def with_field(self, name: str, value: Any) -> "Record":
        """Return a new record with ``name`` set (added or replaced)."""
        fields = dict(self._fields)
        fields[name] = value
        return Record(fields)

    def without_field(self, name: str) -> "Record":
        """Return a new record with ``name`` removed (if present)."""
        fields = {k: v for k, v in self._fields.items() if k != name}
        return Record(fields)

    def project(self, names: Iterable[str]) -> "Record":
        """Return a new record keeping only ``names`` (missing -> NULL)."""
        return Record({name: self._fields.get(name, NULL) for name in names})

    def items(self) -> Iterator[tuple[str, Any]]:
        return iter(self._fields.items())

    def as_dict(self) -> dict[str, Any]:
        return dict(self._fields)

    def __getitem__(self, name: str) -> Any:
        return self._fields[name]

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._fields.items(), key=lambda kv: kv[0])))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._fields.items())
        return f"Record({inner})"


class Collection:
    """An ordered sequence of model values, usually homogeneous records.

    A Collection is the model image of a relational table, of a repeated
    element, or of a query result.  ``record_type`` (see
    :mod:`repro.xmldm.schema`) is optional metadata; untyped collections
    are perfectly legal, as befits semi-structured data.
    """

    __slots__ = ("_items", "record_type")

    def __init__(self, items: Iterable[Any] = (), record_type: Any = None):
        self._items: list[Any] = list(items)
        self.record_type = record_type

    def append(self, item: Any) -> None:
        self._items.append(item)

    def extend(self, items: Iterable[Any]) -> None:
        self._items.extend(items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Any:
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Collection):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:
        return f"Collection({self._items!r})"


_TYPE_ORDER = {
    "null": 0,
    "boolean": 1,
    "number": 2,
    "string": 3,
    "date": 4,
    "datetime": 4,
    "record": 5,
    "collection": 6,
    "node": 7,
}


def typename(value: Any) -> str:
    """Return the model type name of ``value``.

    >>> typename(3)
    'number'
    >>> typename(NULL)
    'null'
    """
    if isinstance(value, Null) or value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, datetime.datetime):
        return "datetime"
    if isinstance(value, datetime.date):
        return "date"
    if isinstance(value, Record):
        return "record"
    if isinstance(value, Collection):
        return "collection"
    # Element/Text live in nodes.py; avoid a circular import by duck-typing.
    if hasattr(value, "document_order"):
        return "node"
    raise TypeError(f"not a model value: {value!r}")


def _comparison_key(value: Any) -> tuple:
    kind = typename(value)
    rank = _TYPE_ORDER[kind]
    if kind == "null":
        return (rank, 0)
    if kind == "boolean":
        return (rank, int(value))
    if kind == "number":
        return (rank, float(value))
    if kind == "string":
        return (rank, value)
    if kind in ("date", "datetime"):
        if isinstance(value, datetime.datetime):
            return (rank, value.isoformat())
        return (rank, datetime.datetime.combine(value, datetime.time()).isoformat())
    if kind == "record":
        return (rank, tuple((k, _comparison_key(v)) for k, v in sorted(value.items())))
    if kind == "collection":
        return (rank, tuple(_comparison_key(v) for v in value))
    return (rank, value.document_order)


def compare_values(a: Any, b: Any) -> int:
    """Total order over all model values; returns -1, 0 or 1.

    Values of the same type compare naturally; values of different types
    compare by a fixed type rank (null < boolean < number < string < date
    < record < collection < node).  Having a *total* order keeps Sort and
    GroupBy deterministic over heterogeneous semi-structured data.
    """
    ka, kb = _comparison_key(a), _comparison_key(b)
    if ka < kb:
        return -1
    if ka > kb:
        return 1
    return 0


def values_equal(a: Any, b: Any) -> bool:
    """Model equality: NULL equals only NULL; 1 == 1.0; no string coercion."""
    return compare_values(a, b) == 0


def is_atomic(value: Any) -> bool:
    """True for null, boolean, number, string, date and datetime values."""
    return typename(value) in ("null", "boolean", "number", "string", "date", "datetime")


def atomize(value: Any) -> Any:
    """Reduce ``value`` to an atomic for predicate evaluation.

    Element and Text nodes atomize to their text content, records of one
    field to that field, collections of one item to that item.  Anything
    already atomic passes through.
    """
    kind = typename(value)
    if kind == "node":
        return value.text_content()
    if kind == "record" and len(value) == 1:
        return atomize(value[next(iter(value))])
    if kind == "collection" and len(value) == 1:
        return atomize(value[0])
    return value

"""Lenses: the packaged front-end objects of section 2.1.

"A lens is an object that contains a set of XML queries, parameters,
XSL formatting, and authentication information."  A lens here bundles
named parameterized XML-QL queries, a device-formatting choice, and the
roles allowed to invoke it; the :class:`LensServer` authenticates,
authorizes, substitutes parameters, runs the query and formats the
answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.auth import AccessController, User
from repro.core.engine import NimbleEngine, QueryResult
from repro.core.formatting import DEVICES, format_result
from repro.core.partial import PartialResultPolicy
from repro.errors import LensError
from repro.resilience.admission import Priority


@dataclass(frozen=True)
class LensParameter:
    """One declared parameter of a lens query."""

    name: str
    required: bool = True
    default: Any = None


@dataclass
class Lens:
    """A named bundle of queries + parameters + formatting + auth."""

    name: str
    queries: dict[str, str]  # query name -> XML-QL text with {param} holes
    parameters: tuple[LensParameter, ...] = ()
    default_device: str = "xml"
    required_roles: frozenset[str] = frozenset()
    description: str = ""
    #: admission priority of every query this lens runs; dashboards and
    #: interactive lenses ride above BACKGROUND reporting lenses, so the
    #: overload ladder sheds the right front-end traffic first
    priority: Priority = Priority.NORMAL

    def __post_init__(self) -> None:
        if not self.queries:
            raise LensError(f"lens {self.name!r} declares no queries")
        if self.default_device not in DEVICES:
            raise LensError(f"lens {self.name!r}: unknown device {self.default_device!r}")
        self.priority = Priority(self.priority)

    def resolve_parameters(self, supplied: Mapping[str, Any]) -> dict[str, Any]:
        values: dict[str, Any] = {}
        for parameter in self.parameters:
            if parameter.name in supplied:
                values[parameter.name] = supplied[parameter.name]
            elif parameter.required and parameter.default is None:
                raise LensError(
                    f"lens {self.name!r} requires parameter {parameter.name!r}"
                )
            else:
                values[parameter.name] = parameter.default
        unknown = set(supplied) - {p.name for p in self.parameters}
        if unknown:
            raise LensError(
                f"lens {self.name!r} got unknown parameters {sorted(unknown)}"
            )
        return values

    def instantiate(self, query_name: str, supplied: Mapping[str, Any]) -> str:
        """Substitute parameters into a query's text.

        ``{param}`` holes take the *literal* form of the value: strings
        are quoted and escaped, numbers appear bare — so substitution
        cannot change the query's structure.
        """
        if query_name not in self.queries:
            raise LensError(
                f"lens {self.name!r} has no query {query_name!r} "
                f"(has {sorted(self.queries)})"
            )
        text = self.queries[query_name]
        for name, value in self.resolve_parameters(supplied).items():
            text = text.replace("{" + name + "}", _literal(value))
        return text


def _literal(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


@dataclass
class LensInvocation:
    """The outcome of invoking a lens."""

    lens: str
    query_name: str
    result: QueryResult
    rendered: str
    device: str


class LensServer:
    """The front end: lens registry + auth + execution + formatting."""

    def __init__(self, engine: NimbleEngine, access: AccessController | None = None):
        self.engine = engine
        self.access = access or AccessController()
        self._lenses: dict[str, Lens] = {}

    def register(self, lens: Lens) -> Lens:
        if lens.name in self._lenses:
            raise LensError(f"lens {lens.name!r} already registered")
        self._lenses[lens.name] = lens
        return lens

    def get(self, name: str) -> Lens:
        lens = self._lenses.get(name)
        if lens is None:
            raise LensError(f"unknown lens {name!r}")
        return lens

    def lens_names(self) -> list[str]:
        return sorted(self._lenses)

    def invoke(
        self,
        lens_name: str,
        query_name: str,
        user: User,
        params: Mapping[str, Any] | None = None,
        device: str | None = None,
        policy: PartialResultPolicy | None = None,
    ) -> LensInvocation:
        """Authenticate-free invocation path (user already authenticated)."""
        lens = self.get(lens_name)
        self.access.authorize(user, lens.required_roles)
        text = lens.instantiate(query_name, params or {})
        result = self.engine.query(text, policy=policy,
                                   priority=lens.priority)
        chosen = device or lens.default_device
        rendered = format_result(result.elements, chosen)
        if not result.completeness.complete:
            rendered += f"\n<!-- {result.completeness.describe()} -->"
        return LensInvocation(lens_name, query_name, result, rendered, chosen)

    def login_and_invoke(
        self,
        lens_name: str,
        query_name: str,
        username: str,
        password: str,
        params: Mapping[str, Any] | None = None,
        device: str | None = None,
    ) -> LensInvocation:
        """Full path: authenticate, then invoke."""
        user = self.access.authenticate(username, password)
        return self.invoke(lens_name, query_name, user, params, device)

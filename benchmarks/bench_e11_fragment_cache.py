"""E11 — the on-demand fragment result cache.

The paper's compound architecture pairs federated access with "caching
of query results for future use" (section 2.1): most site traffic
re-reads the same handful of hot fragments, so the engine should pay a
source's latency once and serve repeats locally.  This experiment
drives a Zipf-repeated query workload (a few hot price filters, a long
tail of cold ones) against the web-site workload and measures:

* **cold vs warm, cache on/off** — the warm pass of the repeated
  workload runs entirely out of cache: virtual latency collapses by the
  sources' latency share while every result element stays
  byte-identical and the cold ``counters()`` match the cache-off run;
* **containment serving** — a narrower fragment (``$p > 300``) answered
  from a broader cached one (``$p > 0``) with *zero* remote calls, the
  residual predicate applied locally;
* **byte-budget sweep** — hit rate and evictions as the LRU budget
  shrinks below the working set.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, print_table, write_bench_json

from repro import NimbleEngine
from repro.workloads import make_website_workload

N_PRODUCTS = 50

#: distinct price filters; pushed to the ERP source, so each threshold
#: is its own fragment (its own cache entry)
THRESHOLDS = (40, 80, 120, 160, 200, 240, 280, 320)

QUERIES = {
    threshold: (
        'WHERE <t><sku>$s</sku><price>$p</price><quantity>$q</quantity></t> '
        f'IN "stock", $p > {threshold} '
        "CONSTRUCT <item sku=$s><price>$p</price><qty>$q</qty></item> "
        "ORDER BY $s"
    )
    for threshold in THRESHOLDS
}

BROAD_QUERY = (
    'WHERE <t><sku>$s</sku><price>$p</price><quantity>$q</quantity></t> '
    'IN "stock", $p > 0 '
    "CONSTRUCT <item sku=$s><price>$p</price><qty>$q</qty></item> "
    "ORDER BY $s"
)
NARROW_QUERY = QUERIES[320]


def zipf_sequence(length: int = 40, seed: int = 11) -> list[int]:
    """Zipf-weighted draws over the thresholds: few hot, many cold."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** 1.2 for rank in range(len(THRESHOLDS))]
    return rng.choices(range(len(THRESHOLDS)), weights=weights, k=length)


def _engine(cache_bytes: int, containment: bool = True) -> NimbleEngine:
    workload = make_website_workload(N_PRODUCTS, seed=23)
    return NimbleEngine(
        workload.catalog,
        fragment_cache_bytes=cache_bytes,
        fragment_cache_containment=containment,
    )


def _signature(result) -> tuple[str, ...]:
    from repro.xmldm.serializer import serialize

    return tuple(serialize(element) for element in result.elements)


BENCH_STATS = BenchStats()


def _run_pass(engine: NimbleEngine, sequence: list[int]):
    """One pass of the workload; returns (virtual ms, remote calls,
    hits, misses, per-query signatures)."""
    virtual_ms = remote_calls = hits = misses = 0.0
    signatures = []
    for index in sequence:
        result = BENCH_STATS.absorb(engine.query(QUERIES[THRESHOLDS[index]]))
        virtual_ms += result.stats.elapsed_virtual_ms
        remote_calls += result.stats.remote_calls
        cache = result.stats.cache_counters()
        hits += cache["fragment_cache_hits"] + cache["containment_hits"]
        misses += cache["fragment_cache_misses"]
        signatures.append(_signature(result))
    return virtual_ms, int(remote_calls), int(hits), int(misses), signatures


def run_experiment():
    BENCH_STATS.reset()
    sequence = zipf_sequence()
    repeat_rows, containment_rows, budget_rows = [], [], []

    # -- E11a: cold/warm passes, cache on vs off --------------------------
    passes = {}
    for label, cache_bytes in (("cache off", 0), ("cache on", 1 << 20)):
        engine = _engine(cache_bytes)
        for pass_name in ("cold", "warm"):
            virtual_ms, calls, hits, misses, signatures = _run_pass(
                engine, sequence
            )
            passes[(label, pass_name)] = (virtual_ms, signatures)
            lookups = hits + misses
            repeat_rows.append([
                label, pass_name, virtual_ms, calls, hits,
                round(hits / lookups, 2) if lookups else "-",
                len(signatures),
            ])
    warm_off = passes[("cache off", "warm")][0]
    warm_on = passes[("cache on", "warm")][0]
    warm_speedup = round(warm_off / warm_on, 1)

    # byte-identical elements for every query occurrence, all configs
    reference = passes[("cache off", "cold")][1]
    result_sets = {
        tuple(signatures) for _, signatures in passes.values()
    }
    identical_elements = all(
        signatures == reference for _, signatures in passes.values()
    )

    # cold counters() identity on a repeat-free prologue (containment
    # off, so every lookup genuinely misses): a cache that never hits
    # must be invisible to the invariant counters
    prologue = list(range(len(THRESHOLDS)))
    counter_sets = set()
    for cache_bytes in (0, 1 << 20):
        engine = _engine(cache_bytes, containment=False)
        totals: dict[str, int] = {}
        for index in prologue:
            result = BENCH_STATS.absorb(
                engine.query(QUERIES[THRESHOLDS[index]])
            )
            for name, value in result.stats.counters().items():
                totals[name] = totals.get(name, 0) + value
        counter_sets.add(tuple(sorted(totals.items())))
    cold_counters_identical = len(counter_sets) == 1

    # -- E11b: containment serving ---------------------------------------
    narrow_signatures = set()
    for label, containment in (("containment on", True),
                               ("containment off", False)):
        engine = _engine(1 << 20, containment=containment)
        prime = BENCH_STATS.absorb(engine.query(BROAD_QUERY))
        narrow = BENCH_STATS.absorb(engine.query(NARROW_QUERY))
        narrow_signatures.add(_signature(narrow))
        cache = narrow.stats.cache_counters()
        containment_rows.append([
            label, prime.stats.remote_calls, narrow.stats.remote_calls,
            narrow.stats.elapsed_virtual_ms, cache["containment_hits"],
            len(narrow.elements),
        ])
    # ground truth: the narrow query against a cache-less engine
    baseline_narrow = BENCH_STATS.absorb(_engine(0).query(NARROW_QUERY))
    narrow_signatures.add(_signature(baseline_narrow))
    containment_identical = len(narrow_signatures) == 1
    containment_remote_calls = containment_rows[0][2]

    # -- E11c: byte-budget sweep -----------------------------------------
    # containment off so the working set is the full 8 distinct entries
    # (~100 KiB) and the LRU actually has to choose victims
    for budget in (8_192, 32_768, 65_536, 131_072):
        engine = _engine(budget, containment=False)
        total_hits = total_misses = 0
        virtual_ms = 0.0
        for _ in range(2):
            pass_ms, _, hits, misses, _ = _run_pass(engine, sequence)
            virtual_ms += pass_ms
            total_hits += hits
            total_misses += misses
        cache = engine.fragment_cache
        budget_rows.append([
            budget,
            round(total_hits / (total_hits + total_misses), 2),
            cache.evictions,
            len(cache),
            virtual_ms,
        ])

    checks = {
        "warm_speedup": warm_speedup,
        "result_sets": len(result_sets),
        "identical_elements": identical_elements,
        "cold_counters_identical": cold_counters_identical,
        "containment_remote_calls": containment_remote_calls,
        "containment_identical": containment_identical,
    }
    return repeat_rows, containment_rows, budget_rows, checks


def report():
    repeat_rows, containment_rows, budget_rows, checks = run_experiment()
    print_table(
        "E11a: Zipf-repeated workload, cold vs warm, cache on/off",
        ["config", "pass", "virtual ms", "remote calls", "cache hits",
         "hit rate", "queries"],
        repeat_rows,
    )
    print_table(
        "E11b: narrower fragment served from a broader cached one",
        ["mode", "prime calls", "narrow calls", "narrow virtual ms",
         "containment hits", "elements"],
        containment_rows,
    )
    print_table(
        "E11c: LRU byte-budget sweep (two workload passes)",
        ["budget bytes", "hit rate", "evictions", "live entries",
         "virtual ms"],
        budget_rows,
    )
    write_bench_json(
        "e11_fragment_cache",
        ["config", "pass", "virtual ms", "remote calls", "cache hits",
         "hit rate", "queries"],
        repeat_rows,
        headline=checks,
        extra_tables={
            "containment": (["mode", "prime calls", "narrow calls",
                             "narrow virtual ms", "containment hits",
                             "elements"], containment_rows),
            "budget_sweep": (["budget bytes", "hit rate", "evictions",
                              "live entries", "virtual ms"], budget_rows),
        },
        stats=BENCH_STATS,
    )
    return repeat_rows, containment_rows, budget_rows, checks


def test_e11_fragment_cache(benchmark):
    repeat_rows, containment_rows, budget_rows, checks = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    # the warm repeated workload runs >= 5x faster out of cache, with
    # byte-identical elements and invariant counters untouched
    assert checks["warm_speedup"] >= 5.0
    assert checks["identical_elements"] and checks["result_sets"] == 1
    assert checks["cold_counters_identical"]
    # a containment hit answers the narrower fragment with no remote call
    assert checks["containment_remote_calls"] == 0
    assert checks["containment_identical"]
    # the largest budget holds the whole working set without evictions,
    # and starving the budget degrades the hit rate
    assert budget_rows[-1][2] == 0 and budget_rows[-1][1] >= 0.5
    assert budget_rows[0][1] < budget_rows[-1][1]
    report()


if __name__ == "__main__":
    report()

"""Navigation operators: tree-pattern matching and path evaluation."""

from __future__ import annotations

from typing import Iterator

from repro.algebra.operators import Operator
from repro.algebra.pattern import TreePattern, match_pattern
from repro.algebra.tuples import BindingTuple
from repro.xmldm.document import Document
from repro.xmldm.nodes import Element
from repro.xmldm.path import Path


class PatternMatch(Operator):
    """Match a tree pattern against the value bound to ``context_var``.

    For each input tuple and each way the pattern matches the context
    value, an extended tuple is produced.  Elements are searched at any
    depth below (and including) the context element, so a pattern rooted
    at ``<book>`` finds books wherever they live in the document — the
    convenient XML-QL behaviour.
    """

    def __init__(self, child: Operator, context_var: str, pattern: TreePattern):
        super().__init__(child)
        self.context_var = context_var
        self.pattern = pattern

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            context = row.get(self.context_var)
            if context is None:
                continue
            if isinstance(context, Document):
                context = context.root
            if isinstance(context, Element):
                tag = None if self.pattern.tag == "*" else self.pattern.tag
                for candidate in context.descendants_or_self(tag):
                    yield from match_pattern(self.pattern, candidate, row)
            else:
                yield from match_pattern(self.pattern, context, row)

    def describe(self) -> str:
        return f"PatternMatch(${self.context_var} ~ {self.pattern.describe()})"


class Navigate(Operator):
    """Bind ``out_var`` to each result of a path from ``context_var``."""

    def __init__(self, child: Operator, context_var: str, path: Path | str, out_var: str):
        super().__init__(child)
        self.context_var = context_var
        self.path = Path.parse(path) if isinstance(path, str) else path
        self.out_var = out_var

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            context = row.get(self.context_var)
            if context is None:
                continue
            for result in self.path.evaluate(context):
                extended = row.extend(self.out_var, result)
                if extended is not None:
                    yield extended

    def describe(self) -> str:
        return f"Navigate(${self.context_var} {self.path.text} -> ${self.out_var})"

"""Freshness policies for materialized views."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RefreshPolicy:
    """When a materialized copy is still acceptable.

    * ``ttl``    — fresh for ``ttl_ms`` of virtual time after (re)load;
    * ``manual`` — fresh until explicitly invalidated ("refreshed on
      demand", as the management tools in the paper allow);
    * ``always`` — never fresh: every use re-fetches (useful as a
      baseline: materialization bookkeeping without its benefit).
    """

    kind: str = "ttl"
    ttl_ms: float = 60_000.0

    _KINDS = ("ttl", "manual", "always")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown refresh policy {self.kind!r}")

    def is_fresh(self, age_ms: float, invalidated: bool) -> bool:
        if invalidated:
            return False
        if self.kind == "always":
            return False
        if self.kind == "manual":
            return True
        return age_ms <= self.ttl_ms

    @classmethod
    def ttl(cls, ttl_ms: float) -> "RefreshPolicy":
        return cls("ttl", ttl_ms)

    @classmethod
    def manual(cls) -> "RefreshPolicy":
        return cls("manual", 0.0)

    @classmethod
    def always_refresh(cls) -> "RefreshPolicy":
        return cls("always", 0.0)

"""Tokenizer for the XML-QL dialect.

The tricky part of lexing XML-QL is that ``<`` opens both tags and
comparisons.  The lexer resolves it locally: ``<`` directly followed by a
name character or ``/`` is tag punctuation; otherwise it is the less-than
operator.  (Write ``< ident`` with a space to force a comparison against
a variable-free identifier — in practice comparisons involve ``$vars``
and literals, so the ambiguity never bites.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuerySyntaxError

KEYWORDS = {
    "WHERE",
    "CONSTRUCT",
    "IN",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "AND",
    "OR",
    "NOT",
    "ELEMENT_AS",
    "LIMIT",
    "CONTENT_AS",
    "LIKE",
}

#: token kinds: TAGOPEN '<', TAGCLOSE '</', GT '>', SELFCLOSE '/>',
#: VAR, IDENT, KEYWORD, STRING, NUMBER, OP, PUNCT, EOF
_OPERATORS = ("<=", ">=", "!=", "<>", "=", "+", "-", "*", "/", "%")


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int
    #: for KEYWORD tokens, the original (case-preserved) spelling —
    #: needed because keywords double as tag names in patterns/templates
    original: str = ""


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i, n = 0, len(text)
    line, line_start = 1, 0

    def location(pos: int) -> tuple[int, int]:
        return line, pos - line_start + 1

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            line_start = i + 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if text.startswith("#", i):
            end = text.find("\n", i)
            i = n if end < 0 else end
            continue
        ln, col = location(i)
        if ch == "<":
            nxt = text[i + 1] if i + 1 < n else ""
            if nxt == "/" and text[i + 2 : i + 3] == "/":
                # <//tag opens a descendant pattern (matches at any depth)
                tokens.append(Token("TAGDESC", "<//", ln, col))
                i += 3
            elif nxt == "/":
                tokens.append(Token("TAGCLOSE", "</", ln, col))
                i += 2
            elif nxt.isalpha() or nxt in "_*":
                tokens.append(Token("TAGOPEN", "<", ln, col))
                i += 1
            elif nxt == "=":
                tokens.append(Token("OP", "<=", ln, col))
                i += 2
            elif nxt == ">":
                tokens.append(Token("OP", "<>", ln, col))
                i += 2
            else:
                tokens.append(Token("OP", "<", ln, col))
                i += 1
            continue
        if ch == ">":
            if i + 1 < n and text[i + 1] == "=":
                tokens.append(Token("OP", ">=", ln, col))
                i += 2
            else:
                tokens.append(Token("GT", ">", ln, col))
                i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == ">":
            tokens.append(Token("SELFCLOSE", "/>", ln, col))
            i += 2
            continue
        if ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise QuerySyntaxError("'$' must introduce a variable name", ln, col)
            tokens.append(Token("VAR", text[i + 1 : j], ln, col))
            i = j
            continue
        if ch in "\"'":
            j = i + 1
            parts: list[str] = []
            while j < n and text[j] != ch:
                if text[j] == "\\" and j + 1 < n:
                    parts.append(text[j + 1])
                    j += 2
                else:
                    parts.append(text[j])
                    j += 1
            if j >= n:
                raise QuerySyntaxError("unterminated string literal", ln, col)
            tokens.append(Token("STRING", "".join(parts), ln, col))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token("NUMBER", text[i:j], ln, col))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_-."):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), ln, col, original=word))
            else:
                tokens.append(Token("IDENT", word, ln, col))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, ln, col))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in "(),*=@":
            tokens.append(Token("PUNCT", ch, ln, col))
            i += 1
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", ln, col)
    tokens.append(Token("EOF", "", line, n - line_start + 1))
    return tokens

"""Join operators: hash (natural), nested-loop (theta) and dependent."""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.algebra.operators import Operator, Predicate
from repro.algebra.tuples import BindingTuple
from repro.algebra.vector import (
    DEFAULT_BATCH_ROWS,
    MISSING,
    RecordBatch,
    RowBuffer,
)
from repro.xmldm.values import _comparison_key, values_equal


def _key_for(row: BindingTuple, variables: tuple[str, ...]) -> tuple | None:
    parts = []
    for var in variables:
        if var not in row:
            return None
        parts.append(_comparison_key(row[var]))
    return tuple(parts)


def _batch_key_at(
    columns: Sequence[list | None], index: int
) -> tuple | None:
    """Join key of one batch row; None when any join variable is absent."""
    parts = []
    for column in columns:
        if column is None:
            return None
        value = column[index]
        if value is MISSING:
            return None
        parts.append(_comparison_key(value))
    return tuple(parts)


class HashJoin(Operator):
    """Natural join on explicitly named shared variables.

    Builds a hash table over the right child keyed by the join variables'
    values, then probes with the left.  Tuples lacking a join variable
    never match (NULL-like semantics).
    """

    def __init__(self, left: Operator, right: Operator, join_vars: tuple[str, ...] | list[str]):
        super().__init__(left, right)
        self.join_vars = tuple(join_vars)

    def _produce(self) -> Iterator[BindingTuple]:
        left, right = self.children
        buckets: dict[tuple, list[BindingTuple]] = {}
        for row in right:
            key = _key_for(row, self.join_vars)
            if key is not None:
                buckets.setdefault(key, []).append(row)
        for row in left:
            key = _key_for(row, self.join_vars)
            if key is None:
                continue
            for partner in buckets.get(key, ()):
                merged = row.merge(partner)
                if merged is not None:
                    yield merged

    def _produce_batches(self) -> Iterator[RecordBatch]:
        left, right = self.children
        join_vars = self.join_vars
        buckets: dict[tuple, list[dict[str, Any]]] = {}
        for batch in right.batches():
            join_columns = [batch.columns.get(var) for var in join_vars]
            for index in batch.live_indices():
                key = _batch_key_at(join_columns, index)
                if key is not None:
                    buckets.setdefault(key, []).append(batch.row_dict(index))
        buffer = RowBuffer(self._batch_rows or DEFAULT_BATCH_ROWS)
        for batch in left.batches():
            join_columns = [batch.columns.get(var) for var in join_vars]
            for index in batch.live_indices():
                key = _batch_key_at(join_columns, index)
                if key is None:
                    continue
                partners = buckets.get(key)
                if not partners:
                    continue
                row = batch.row_dict(index)
                for partner in partners:
                    # dict-level replay of BindingTuple.merge: every
                    # shared variable must agree, right adds the rest
                    merged = dict(row)
                    compatible = True
                    for var, value in partner.items():
                        if var in merged:
                            if not values_equal(merged[var], value):
                                compatible = False
                                break
                        else:
                            merged[var] = value
                    if compatible:
                        buffer.append(merged)
            yield from buffer.drain()
        yield from buffer.flush()

    def describe(self) -> str:
        return f"HashJoin({', '.join('$' + v for v in self.join_vars)})"


class NestedLoopJoin(Operator):
    """Theta join: cross product filtered by an optional predicate.

    Tuples that share variables must agree on them (merge unification);
    an extra predicate can express non-equi conditions.
    """

    def __init__(self, left: Operator, right: Operator, predicate: Predicate | None = None):
        super().__init__(left, right)
        self.predicate = predicate

    def _produce(self) -> Iterator[BindingTuple]:
        left, right = self.children
        right_rows = list(right)
        for row in left:
            for partner in right_rows:
                merged = row.merge(partner)
                if merged is None:
                    continue
                if self.predicate is None or self.predicate(merged):
                    yield merged

    def describe(self) -> str:
        return "NestedLoopJoin" + ("(θ)" if self.predicate else "")


class DependentJoin(Operator):
    """For each left tuple, run a right plan built from its bindings.

    This is the operator behind binding-pattern sources (web services
    that require input parameters): the optimizer places the dependent
    side so its required variables are bound by the time it runs.

    ``memo_key`` (optional) maps a left row to a hashable identity of
    its probe inputs; rows sharing an identity reuse the first row's
    partner list instead of re-running the right plan.  A key of None
    opts a row out of memoization (e.g. null inputs).
    """

    def __init__(
        self,
        left: Operator,
        right_factory: Callable[[BindingTuple], Operator],
        label: str = "",
        memo_key: Callable[[BindingTuple], object] | None = None,
    ):
        super().__init__(left)
        self.right_factory = right_factory
        self.label = label
        self.memo_key = memo_key
        self.probe_memo_hits = 0

    def _produce(self) -> Iterator[BindingTuple]:
        memo: dict[object, list[BindingTuple]] = {}
        for row in self.children[0]:
            key = self.memo_key(row) if self.memo_key is not None else None
            if key is not None and key in memo:
                partners = memo[key]
                self.probe_memo_hits += 1
            else:
                partners = list(self.right_factory(row))
                if key is not None:
                    memo[key] = partners
            for partner in partners:
                merged = row.merge(partner)
                if merged is not None:
                    yield merged

    def describe(self) -> str:
        return f"DependentJoin({self.label or 'parameterized'})"


#: resolves a buffered batch of left rows to one partner list per row
BatchProbe = Callable[[Sequence[BindingTuple]], Sequence[Sequence[BindingTuple]]]


class BatchedDependentJoin(Operator):
    """Dependent join that probes the right side one *batch* at a time.

    Left rows are buffered into groups of ``batch_size`` and handed to
    ``probe``, which answers all of them together (for batch-capable
    sources, in one remote call).  Output order is identical to the
    per-row :class:`DependentJoin`: partners are emitted in left-row
    order within each batch.
    """

    def __init__(
        self,
        left: Operator,
        probe: BatchProbe,
        batch_size: int,
        label: str = "",
    ):
        super().__init__(left)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.probe = probe
        self.batch_size = batch_size
        self.label = label
        self.batches_probed = 0

    def _produce(self) -> Iterator[BindingTuple]:
        buffer: list[BindingTuple] = []
        for row in self.children[0]:
            buffer.append(row)
            if len(buffer) >= self.batch_size:
                yield from self._flush(buffer)
                buffer = []
        if buffer:
            yield from self._flush(buffer)

    def _flush(self, rows: list[BindingTuple]) -> Iterator[BindingTuple]:
        self.batches_probed += 1
        partner_lists = self.probe(rows)
        for row, partners in zip(rows, partner_lists):
            for partner in partners:
                merged = row.merge(partner)
                if merged is not None:
                    yield merged

    def describe(self) -> str:
        name = self.label or "parameterized"
        return f"BatchedDependentJoin({name}, batch={self.batch_size})"

"""Mediation: mediated schemas as hierarchical GAV views (section 2.1).

"Users and applications interact with the system using a set of mediated
schemas.  These schemas are essentially definitions of views over the
schemas of the data sources (similar to the global-as-view approach) ...
these schemas can be built in a hierarchical fashion ... we can define
successive schemas as views over other underlying schemas."

Two kinds of mediated relation:

* a **mapping** (:class:`RelationMapping`) binds a mediated name directly
  to one source relation, with field renaming — the GAV base case the
  decomposer can push fragments through;
* a **view** (:class:`ViewDef`) defines a mediated name by an XML-QL
  query over *other* mediated names — composed incrementally, possibly
  across organizational layers.

The :class:`Catalog` is the paper's metadata server: it owns the source
registry, the mappings and views, cycle checking and the statistics the
optimizer's cost model reads.
"""

from repro.mediator.catalog import Catalog
from repro.mediator.mapping import RelationMapping
from repro.mediator.schema import MediatedSchema, ViewDef

__all__ = ["Catalog", "MediatedSchema", "RelationMapping", "ViewDef"]

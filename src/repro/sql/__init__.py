"""An embedded, from-scratch relational engine with a SQL subset.

The paper's integration engine compiles query fragments into "the
appropriate query language for the destination source; for example, if an
RDB is being queried, then the compiler generates SQL" (section 2.1).
This package is that destination: a small but real SQL engine with

* typed tables, NOT NULL / primary-key enforcement (:mod:`storage`);
* hash and sorted (range-capable) secondary indexes (:mod:`index`);
* a recursive-descent parser for SELECT / INSERT / UPDATE / DELETE /
  CREATE TABLE / CREATE INDEX / DROP TABLE (:mod:`parser`);
* a planner that picks index scans and hash joins (:mod:`planner`);
* an iterator executor with per-statement row-scan accounting
  (:mod:`executor`) — the accounting is what lets benchmark E5 measure
  how much work predicate pushdown saves.

The dialect accepted here is a superset of what the fragment compiler in
:mod:`repro.core.sqlgen` emits.
"""

from repro.sql.database import Database, ResultSet
from repro.sql.schema import Column, TableSchema
from repro.sql.types import SQLType

__all__ = ["Column", "Database", "ResultSet", "SQLType", "TableSchema"]

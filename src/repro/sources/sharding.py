"""Key-range partitioning: one logical source, N shard-local sources.

The paper's load-balancing story ("multiple instances of the
integration engine can be run simultaneously", section 2.1) only goes
horizontal when the *data* goes horizontal with it.  This module splits
a source's records by key range into N shard-local sources that share
one catalog schema, producing a :class:`ShardMap` (key -> range ->
shard) the mediator catalog registers for routing:

* relational tables carrying the shard-key column are range-partitioned
  row-by-row; tables without the column are broadcast (replicated) so
  shard-local joins against them stay complete;
* XML documents are split on the root's child elements, keyed by an
  attribute or a flat child element named after the key;
* call-only sources (web services) are replicated per shard — dependent
  probes are per-key, so each shard answers exactly its own keys.

All shards share one :class:`~repro.simtime.SimClock`, so a scatter
wave across shard engines composes on virtual time exactly like the
engine's own prefetch waves.

The partitioning contract for bit-identical ordering: base data is
clustered by the shard key (the natural physical layout for
key-partitioned data), so concatenating shard outputs in range order
reproduces the unsharded row order.  Unclustered data still yields the
same result *multiset* — only the interleave differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import SourceError
from repro.simtime import SimClock
from repro.sources.base import DataSource, Fragment, NetworkModel
from repro.sources.registry import SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sources.webservice import WebServiceSource
from repro.sources.xmlfile import XMLSource
from repro.sql.database import Database
from repro.xmldm.document import Document
from repro.xmldm.nodes import Element
from repro.xmldm.values import compare_values


@dataclass(frozen=True)
class KeyRange:
    """A half-open key interval ``[low, high)``; ``None`` = unbounded."""

    low: Any = None
    high: Any = None

    def contains(self, value: Any) -> bool:
        if self.low is not None and compare_values(value, self.low) < 0:
            return False
        if self.high is not None and compare_values(value, self.high) >= 0:
            return False
        return True

    def describe(self) -> str:
        low = "-inf" if self.low is None else repr(self.low)
        high = "+inf" if self.high is None else repr(self.high)
        return f"[{low}, {high})"


@dataclass(frozen=True)
class ShardMap:
    """key -> range -> shard for one partitioned source.

    ``relations`` names the relations/documents actually split by the
    key; anything else the source exports was broadcast to every shard,
    which the router must treat as unpartitioned.
    """

    source: str
    key: str
    ranges: tuple[KeyRange, ...]
    relations: tuple[str, ...] = ()

    @property
    def shard_count(self) -> int:
        return len(self.ranges)

    def shard_for(self, value: Any) -> int:
        for index, key_range in enumerate(self.ranges):
            if key_range.contains(value):
                return index
        raise SourceError(
            f"shard map for {self.source!r} has no range for {value!r}"
        )

    def partitions(self, relation: str) -> bool:
        return relation in self.relations

    def describe(self) -> str:
        spans = ", ".join(r.describe() for r in self.ranges)
        return f"ShardMap({self.source}.{self.key}: {spans})"


def make_ranges(keys: Iterable[Any], n_shards: int) -> tuple[KeyRange, ...]:
    """Split the observed key population into N contiguous ranges.

    Boundaries land on actual key values (quantiles of the sorted
    distinct keys), the first/last ranges are unbounded so unseen keys
    still map somewhere.  Fewer distinct keys than shards leaves the
    tail ranges empty — harmless, those shards just hold nothing.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    from repro.xmldm.values import _comparison_key

    distinct = sorted(set(keys), key=_comparison_key)
    if n_shards == 1 or len(distinct) < 2:
        # fewer distinct keys than boundaries need: shard 0 takes the
        # whole axis, the tail shards hold nothing (first match wins)
        return tuple(KeyRange() for _ in range(n_shards))
    boundaries: list[Any] = []
    for index in range(1, n_shards):
        position = (index * len(distinct)) // n_shards
        boundary = distinct[min(position, len(distinct) - 1)]
        if not boundaries or compare_values(boundary, boundaries[-1]) > 0:
            boundaries.append(boundary)
    ranges: list[KeyRange] = []
    previous: Any = None
    for boundary in boundaries:
        ranges.append(KeyRange(previous, boundary))
        previous = boundary
    ranges.append(KeyRange(previous, None))
    while len(ranges) < n_shards:
        ranges.append(KeyRange(ranges[-1].high, ranges[-1].high))
    return tuple(ranges)


def access_key_var(access, key: str) -> str | None:
    """The query variable one access binds to the shard-key field.

    Looks at attribute bindings (``@key=$v``) and flat child bindings
    (``<key>$v</key>``) — the two shapes relational/XML rewrites
    produce.  ``None`` when the access never binds the key.
    """
    pattern = access.pattern
    for attribute in pattern.attributes:
        if attribute.name == key and attribute.var is not None:
            return attribute.var
    for child in pattern.children:
        if child.tag == key and child.text_var is not None:
            return child.text_var
    return None


def shard_key_var(fragment: Fragment, key: str) -> str | None:
    """The query variable a fragment binds to the shard-key field.

    First binding across the fragment's access patterns; ``None`` when
    the fragment never binds the key (it cannot be pruned, only
    scattered).
    """
    for access in fragment.accesses:
        var = access_key_var(access, key)
        if var is not None:
            return var
    return None


def range_admits(key_range: KeyRange, key_var: str, conditions) -> bool:
    """Can any row with the key inside ``key_range`` satisfy ``conditions``?

    Sound pruning via :func:`repro.materialize.matching.implies`: a
    shard is skippable when some condition *implies* the key lies
    entirely below the range's low bound or at/above its high bound.
    Incompleteness only costs a wasted (empty) shard visit.
    """
    from repro.materialize.matching import implies
    from repro.query import ast as qast

    var = qast.Var(key_var)
    for condition in conditions:
        if key_range.low is not None and implies(
            condition, qast.BinOp("<", var, qast.Literal(key_range.low))
        ):
            return False
        if key_range.high is not None and implies(
            condition, qast.BinOp(">=", var, qast.Literal(key_range.high))
        ):
            return False
    return True


# -- physical partitioning ---------------------------------------------------


def _clone_network(network: NetworkModel) -> NetworkModel:
    return NetworkModel(latency_ms=network.latency_ms,
                        per_row_ms=network.per_row_ms)


def partition_relational(
    source: RelationalSource, key: str, ranges: tuple[KeyRange, ...]
) -> tuple[list[RelationalSource], tuple[str, ...]]:
    """Range-partition a relational source's tables on the key column.

    Tables without the key column are broadcast to every shard (the
    dimension-table treatment); returns the shard sources plus the
    names of the relations that were genuinely partitioned.
    """
    shards: list[RelationalSource] = []
    partitioned: list[str] = []
    databases = [
        Database(f"{source.database.name}") for _ in ranges
    ]
    for table_name in source.database.table_names():
        table = source.database.table(table_name)
        schema = table.schema
        for database in databases:
            database.create_table(schema)
        names = schema.column_names
        if key in names:
            partitioned.append(table_name)
            position = schema.column_index(key)
            for _, values in table.scan():
                shard = _range_index(ranges, values[position])
                databases[shard].table(table_name).insert(list(values))
        else:
            for _, values in table.scan():
                for database in databases:
                    database.table(table_name).insert(list(values))
    for database in databases:
        shards.append(
            RelationalSource(
                source.name,
                database,
                network=_clone_network(source.network),
            )
        )
    return shards, tuple(partitioned)


def partition_xml(
    source: XMLSource, key: str, ranges: tuple[KeyRange, ...]
) -> tuple[list[XMLSource], tuple[str, ...]]:
    """Split each document's root children by key into N documents.

    A child element's key is its ``key`` attribute, or the text of a
    flat ``<key>`` child.  Documents whose children never carry the key
    are broadcast whole (and excluded from the partitioned relations).
    """
    shard_docs: list[dict[str, Document]] = [dict() for _ in ranges]
    partitioned: list[str] = []
    for doc_name, document in source.documents.items():
        keyed = [
            _element_key(child, key)
            for child in document.root.child_elements()
        ]
        if not any(value is not None for value in keyed):
            for docs in shard_docs:
                docs[doc_name] = Document(document.root.copy(), name=doc_name)
            continue
        partitioned.append(doc_name)
        roots = [
            Element(document.root.tag, dict(document.root.attributes))
            for _ in ranges
        ]
        for child, value in zip(document.root.child_elements(), keyed):
            shard = 0 if value is None else _range_index(ranges, value)
            roots[shard].append(child.copy())
        for docs, root in zip(shard_docs, roots):
            docs[doc_name] = Document(root, name=doc_name)
    shards = [
        XMLSource(source.name, docs, network=_clone_network(source.network))
        for docs in shard_docs
    ]
    return shards, tuple(partitioned)


def replicate_source(source: DataSource, count: int) -> list[DataSource]:
    """One copy of a call-only/unpartitionable source per shard.

    Web services are rebuilt around the same endpoint handlers;
    anything else shares the wrapper object across shards (safe because
    every shard registry runs on the same clock).
    """
    if isinstance(source, WebServiceSource):
        copies: list[DataSource] = []
        for _ in range(count):
            copy = WebServiceSource(
                source.name, network=_clone_network(source.network)
            )
            copy.faults = source.faults
            for endpoint in source.endpoints.values():
                copy.add_endpoint(
                    endpoint.name,
                    endpoint.required_inputs,
                    endpoint.record_type,
                    endpoint.handler,
                    endpoint.estimated_rows,
                )
            copies.append(copy)
        return copies
    return [source for _ in range(count)]


def partition_source(
    source: DataSource, key: str, ranges: tuple[KeyRange, ...]
) -> tuple[list[DataSource], tuple[str, ...]]:
    """Type-dispatched partitioning; falls back to replication."""
    if isinstance(source, RelationalSource):
        shards, relations = partition_relational(source, key, ranges)
        for shard in shards:
            shard.faults = source.faults
        return list(shards), relations
    if isinstance(source, XMLSource):
        shards, relations = partition_xml(source, key, ranges)
        for shard in shards:
            shard.faults = source.faults
        return list(shards), relations
    return replicate_source(source, len(ranges)), ()


def _range_index(ranges: tuple[KeyRange, ...], value: Any) -> int:
    for index, key_range in enumerate(ranges):
        if key_range.contains(value):
            return index
    raise SourceError(f"no shard range covers key {value!r}")


def _element_key(element: Element, key: str) -> Any:
    if key in element.attributes:
        return element.attributes[key]
    child = element.first_child(key)
    if child is not None:
        return child.text_content().strip()
    return None


def _source_keys(source: DataSource, key: str) -> list[Any]:
    """Every shard-key value a source holds (for boundary selection)."""
    values: list[Any] = []
    if isinstance(source, RelationalSource):
        for table_name in source.database.table_names():
            table = source.database.table(table_name)
            if key not in table.schema.column_names:
                continue
            position = table.schema.column_index(key)
            for _, row in table.scan():
                values.append(row[position])
    elif isinstance(source, XMLSource):
        for document in source.documents.values():
            for child in document.root.child_elements():
                value = _element_key(child, key)
                if value is not None:
                    values.append(value)
    return values


# -- deployment assembly -----------------------------------------------------


@dataclass
class ShardedDeployment:
    """N shard-local registries sharing one clock, plus the shard maps."""

    clock: SimClock
    registries: list[SourceRegistry]
    shard_maps: dict[str, ShardMap] = field(default_factory=dict)

    @property
    def shard_count(self) -> int:
        return len(self.registries)


def partition_registry(
    registry: SourceRegistry,
    keys: dict[str, str],
    n_shards: int,
    ranges: tuple[KeyRange, ...] | None = None,
) -> ShardedDeployment:
    """Split a deployment's keyed sources into N shard-local registries.

    ``keys`` maps source name -> shard-key field.  All keyed sources
    are co-partitioned on one shared range vector (computed from the
    union of their key populations unless ``ranges`` is given), so
    shard-local joins on the key stay aligned.  Unkeyed sources are
    replicated.  Every shard registry shares the original registry's
    clock — a scatter wave across shard engines then composes on
    virtual time like any other parallel wave.
    """
    for name in keys:
        if name not in registry:
            raise SourceError(f"shard key names unknown source {name!r}")
    if ranges is None:
        population: list[Any] = []
        for name, key in keys.items():
            population.extend(_source_keys(registry.get(name), key))
        ranges = make_ranges(population, n_shards)
    if len(ranges) != n_shards:
        raise ValueError("ranges length must equal n_shards")
    registries = [SourceRegistry(registry.clock) for _ in range(n_shards)]
    shard_maps: dict[str, ShardMap] = {}
    for source in registry:
        key = keys.get(source.name)
        if key is None:
            copies = replicate_source(source, n_shards)
            relations: tuple[str, ...] = ()
        else:
            copies, relations = partition_source(source, key, ranges)
        if key is not None:
            shard_maps[source.name] = ShardMap(
                source.name, key, ranges, relations
            )
        for shard_registry, copy in zip(registries, copies):
            shard_registry.register(copy)
    return ShardedDeployment(registry.clock, registries, shard_maps)

"""A deterministic virtual clock for the simulated distributed system.

All "remote" behaviour in the reproduction — source latency, transfer
time, engine service time, outage windows — advances a :class:`SimClock`
instead of sleeping.  Benchmarks therefore measure the *modelled* cost
(milliseconds of virtual time) deterministically and instantly, which is
what makes the latency experiments (E1, E4, E6) reproducible run to run.

Concurrency over virtual time
-----------------------------

The engine overlaps independent remote fetches the way the paper's
integration engine did ("facilities for parallel execution of query
operators", section 3.1) — but the simulation stays single-threaded and
deterministic.  The trick is per-task *timelines*:

* a :class:`Timeline` is a private clock that forks from the shared
  clock's current instant and accumulates the cost of one task;
* a :class:`TaskGroup` runs several tasks, each on its own timeline
  (the tasks execute sequentially in Python, so all side effects happen
  in a fixed order), and :meth:`TaskGroup.join` advances the shared
  clock by the **max** of the member timelines — concurrent work costs
  the slowest task, not the sum;
* while a timeline is *active* (see :meth:`SimClock.running`), every
  ``clock.advance``/``clock.now`` anywhere in the call stack — network
  charges, fault-injection penalties, retry backoff — transparently
  lands on that timeline instead of the shared clock.  Code that was
  written for the serial clock needs no changes to be scheduled.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class Timeline:
    """One task's private virtual clock, forked from a shared instant.

    A timeline starts at ``start_ms`` (the shared clock's now at fork
    time) and accumulates the task's own cost; ``elapsed`` is what the
    task would have taken running alone.
    """

    def __init__(self, start_ms: float, label: str = ""):
        self.start_ms = float(start_ms)
        self._now = float(start_ms)
        self.label = label

    @property
    def now(self) -> float:
        return self._now

    @property
    def elapsed(self) -> float:
        """Virtual milliseconds this task has accumulated."""
        return self._now - self.start_ms

    def advance(self, delta_ms: float) -> float:
        if delta_ms < 0:
            raise ValueError(f"cannot move time backwards ({delta_ms} ms)")
        self._now += delta_ms
        return self._now

    def advance_to(self, timestamp_ms: float) -> float:
        if timestamp_ms > self._now:
            self._now = timestamp_ms
        return self._now

    def __repr__(self) -> str:
        name = f" {self.label!r}" if self.label else ""
        return f"Timeline({self._now:.3f} ms{name})"


class SimClock:
    """Virtual time in milliseconds.

    When a :class:`Timeline` is active (``with clock.running(timeline)``)
    all reads and advances are routed to that timeline; the shared time
    only moves when a :class:`TaskGroup` joins.
    """

    def __init__(self, start_ms: float = 0.0):
        self._now = float(start_ms)
        #: stack of active timelines; the innermost one receives charges
        self._timelines: list[Timeline] = []

    @property
    def now(self) -> float:
        """Current virtual time (of the active timeline, if any)."""
        if self._timelines:
            return self._timelines[-1].now
        return self._now

    @property
    def base_now(self) -> float:
        """The shared (joined) virtual time, ignoring active timelines."""
        return self._now

    def advance(self, delta_ms: float) -> float:
        """Move time forward; negative deltas are rejected."""
        if self._timelines:
            return self._timelines[-1].advance(delta_ms)
        if delta_ms < 0:
            raise ValueError(f"cannot move time backwards ({delta_ms} ms)")
        self._now += delta_ms
        return self._now

    def advance_to(self, timestamp_ms: float) -> float:
        """Move time forward to an absolute timestamp (no-op if passed)."""
        if self._timelines:
            return self._timelines[-1].advance_to(timestamp_ms)
        if timestamp_ms > self._now:
            self._now = timestamp_ms
        return self._now

    def elapsed_since(self, timestamp_ms: float) -> float:
        return self.now - timestamp_ms

    @contextmanager
    def running(self, timeline: Timeline) -> Iterator[Timeline]:
        """Route all clock traffic to ``timeline`` for the block's duration."""
        self._timelines.append(timeline)
        try:
            yield timeline
        finally:
            popped = self._timelines.pop()
            assert popped is timeline, "timeline stack corrupted"

    def __repr__(self) -> str:
        return f"SimClock({self.now:.3f} ms)"


class TaskGroup:
    """A fork/join scope: member tasks cost the max, not the sum.

    >>> group = TaskGroup(clock)                    # doctest: +SKIP
    >>> for unit in wave:                           # doctest: +SKIP
    ...     with group.task(unit.source.name):      # doctest: +SKIP
    ...         fetch(unit)   # charges its own timeline
    >>> group.join()          # clock += max(task elapsed)

    Tasks run sequentially in Python (results and side-effect order are
    deterministic); only the virtual-time accounting is concurrent.
    """

    def __init__(self, clock: SimClock):
        self.clock = clock
        self.fork_ms = clock.now
        self.timelines: list[Timeline] = []
        self._joined = False

    @contextmanager
    def task(self, label: str = "") -> Iterator[Timeline]:
        """Run one member task on a fresh timeline forked at group start."""
        if self._joined:
            raise RuntimeError("cannot add tasks to a joined TaskGroup")
        timeline = Timeline(self.fork_ms, label)
        self.timelines.append(timeline)
        with self.clock.running(timeline):
            yield timeline

    def join(self) -> float:
        """Advance the shared clock past the slowest task; returns its cost."""
        self._joined = True
        if not self.timelines:
            return 0.0
        slowest = max(timeline.now for timeline in self.timelines)
        self.clock.advance_to(slowest)
        return slowest - self.fork_ms

    @property
    def elapsed_serial(self) -> float:
        """What the same tasks would have cost run back to back."""
        return sum(timeline.elapsed for timeline in self.timelines)


class Stopwatch:
    """Measures spans of virtual time on a clock."""

    def __init__(self, clock: SimClock):
        self.clock = clock
        self._start = clock.now

    def restart(self) -> None:
        self._start = self.clock.now

    @property
    def elapsed(self) -> float:
        return self.clock.now - self._start

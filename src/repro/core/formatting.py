"""Device-targeted result formatting for lenses.

"Result formatting can be targeted to specific devices (e.g., web
interface, wireless device)" (section 2.1).  In place of XSL, a small
set of renderers turns result elements into device-appropriate text:

* ``xml``      — canonical serialization (the lower-level interface);
* ``web``      — nested HTML definition lists;
* ``wireless`` — terse WML-era card text, hard-capped line width;
* ``text``     — indented plain text for terminals/logs.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import LensError
from repro.xmldm.nodes import Element, Text
from repro.xmldm.serializer import escape_text, serialize

DEVICES = ("xml", "web", "wireless", "text")


def format_result(elements: Iterable[Element], device: str = "xml") -> str:
    """Render result elements for a device."""
    elements = list(elements)
    if device == "xml":
        return "\n".join(serialize(element) for element in elements)
    if device == "web":
        return _format_web(elements)
    if device == "wireless":
        return _format_wireless(elements)
    if device == "text":
        return "\n".join(_format_text(element, 0) for element in elements)
    raise LensError(f"unknown device {device!r} (choose from {DEVICES})")


class DeviceFormatter:
    """A reusable formatter bound to one device."""

    def __init__(self, device: str = "xml"):
        if device not in DEVICES:
            raise LensError(f"unknown device {device!r} (choose from {DEVICES})")
        self.device = device

    def render(self, elements: Iterable[Element]) -> str:
        return format_result(elements, self.device)


def _format_web(elements: list[Element]) -> str:
    parts = ["<div class=\"results\">"]
    for element in elements:
        parts.append(_web_element(element))
    parts.append("</div>")
    return "\n".join(parts)


def _web_element(element: Element) -> str:
    children = [c for c in element.children if isinstance(c, Element)]
    title_bits = [f"<dt>{escape_text(element.tag)}"]
    for name, value in element.attributes.items():
        title_bits.append(f" <em>{escape_text(name)}={escape_text(value)}</em>")
    title_bits.append("</dt>")
    if not children:
        body = escape_text(element.text_content().strip())
        return f"<dl>{''.join(title_bits)}<dd>{body}</dd></dl>"
    inner = "".join(_web_element(child) for child in children)
    return f"<dl>{''.join(title_bits)}<dd>{inner}</dd></dl>"


_WIRELESS_WIDTH = 40


def _format_wireless(elements: list[Element]) -> str:
    lines: list[str] = []
    for element in elements:
        lines.append(_truncate(_flatten(element)))
    return "\n".join(lines)


def _flatten(element: Element) -> str:
    bits: list[str] = []
    for name, value in element.attributes.items():
        bits.append(f"{name}:{value}")
    for child in element.children:
        if isinstance(child, Element):
            text = child.text_content().strip()
            if text:
                bits.append(f"{child.tag}:{text}")
            else:
                bits.append(_flatten(child))
        elif isinstance(child, Text) and child.value.strip():
            bits.append(child.value.strip())
    return " | ".join(bit for bit in bits if bit)


def _truncate(line: str) -> str:
    if len(line) <= _WIRELESS_WIDTH:
        return line
    return line[: _WIRELESS_WIDTH - 1] + "…"


def _format_text(element: Element, depth: int) -> str:
    pad = "  " * depth
    lines = [f"{pad}{element.tag}"]
    for name, value in element.attributes.items():
        lines.append(f"{pad}  @{name}: {value}")
    for child in element.children:
        if isinstance(child, Element):
            lines.append(_format_text(child, depth + 1))
        elif isinstance(child, Text) and child.value.strip():
            lines.append(f"{pad}  {child.value.strip()}")
    return "\n".join(lines)

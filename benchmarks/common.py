"""Shared helpers for the experiment benchmarks.

Each ``bench_e*.py`` module reproduces one experiment from DESIGN.md's
index: a ``run_experiment()`` returning rows, a table printer, a
pytest-benchmark hook, and a ``__main__`` entry so the table can be
produced with ``python benchmarks/bench_eN_*.py`` directly.

Besides the printed table, every bench emits a machine-readable
``BENCH_<name>.json`` (see :func:`write_bench_json`) so the perf
trajectory can be tracked across PRs and by CI artifacts.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Sequence

from repro.observability.metrics import percentile as _nearest_rank_percentile

#: where BENCH_<name>.json files land; override with BENCH_RESULTS_DIR
RESULTS_DIR = Path(
    os.environ.get("BENCH_RESULTS_DIR", Path(__file__).parent / "results")
)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Format and print an experiment table; returns the text."""
    widths = [len(str(h)) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [_cell(value) for value in row]
        rendered_rows.append(rendered)
        for i, cell in enumerate(rendered):
            widths[i] = max(widths[i], len(cell))
    lines = [f"\n== {title} =="]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for rendered in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(rendered))
        )
    text = "\n".join(lines)
    print(text)
    return text


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (canonical implementation lives in
    :func:`repro.observability.metrics.percentile`; re-exported here so
    benchmarks keep their historical import path)."""
    return _nearest_rank_percentile(values, fraction)


class BenchStats:
    """Accumulates every query's ``EngineStats`` across one experiment.

    Benches keep one module-level instance, ``reset()`` it at the top of
    ``run_experiment()``, ``absorb()`` each ``QueryResult`` (or bare
    ``EngineStats``), and pass the instance to
    ``write_bench_json(stats=...)`` — so every ``BENCH_*.json`` carries
    the counter union behind its headline numbers.  Benches that run no
    engine queries still pass their (all-zero) instance for a uniform
    artifact schema.
    """

    def __init__(self) -> None:
        from repro.core.engine import EngineStats

        self._make = EngineStats
        self.stats = EngineStats()

    def reset(self) -> None:
        self.stats = self._make()

    def absorb(self, result: Any) -> Any:
        """Fold in a ``QueryResult`` or ``EngineStats``; returns it."""
        self.stats.absorb(getattr(result, "stats", result))
        return result

    def as_dict(self) -> dict[str, int]:
        return self.stats.as_dict()


def write_bench_json(
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    headline: dict[str, Any] | None = None,
    extra_tables: dict[str, tuple[Sequence[str], Sequence[Sequence[Any]]]]
    | None = None,
    stats: Any = None,
) -> Path:
    """Emit ``BENCH_<name>.json`` next to the printed table.

    The payload carries the raw table (as header-keyed row dicts) plus a
    ``headline`` dict of the experiment's key metrics, so cross-PR
    tooling can diff numbers without re-parsing tables.  Experiments
    with several tables pass the secondary ones via ``extra_tables``
    (table name -> (headers, rows)).  ``stats`` is an optional
    ``EngineStats`` (anything with ``as_dict()``); its counters land
    under an ``engine_stats`` key so artifact diffs can see the call
    profile behind the headline numbers.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    payload = {
        "bench": name,
        "headers": list(headers),
        "rows": _row_dicts(headers, rows),
        "headline": {k: _jsonable(v) for k, v in (headline or {}).items()},
    }
    if stats is not None:
        payload["engine_stats"] = _stats_union(stats.as_dict())
    if extra_tables:
        payload["tables"] = {
            table: {"headers": list(t_headers), "rows": _row_dicts(t_headers, t_rows)}
            for table, (t_headers, t_rows) in extra_tables.items()
        }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {path}")
    return path


def _stats_union(counters: dict[str, Any]) -> dict[str, Any]:
    """Zero-fill ``counters`` to the full ``EngineStats`` counter union.

    Every ``BENCH_*.json`` then carries the same ``engine_stats`` key
    set regardless of which counters a given bench exercised — so
    cross-PR diff tooling never sees keys appear and vanish when new
    counter groups are added.  The union is derived from
    ``EngineStats().as_dict()``, so it tracks new groups (per-column
    transfer, scatter-gather routing, CDC maintenance) automatically:
    a bench that never syncs a change feed still emits every
    ``cdc_counters()`` key as zero.
    """
    from repro.core.engine import EngineStats

    union = {name: 0 for name in EngineStats().as_dict()}
    union.update(counters)
    return {k: _jsonable(v) for k, v in union.items()}


def _row_dicts(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> list[dict[str, Any]]:
    return [
        {str(header): _jsonable(value) for header, value in zip(headers, row)}
        for row in rows
    ]


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else str(value)
    return str(value)

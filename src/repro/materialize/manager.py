"""The materialization runtime: serve-or-fetch, refresh, adaptation."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import MaterializationError
from repro.materialize.matching import fragment_key, matches, project_records
from repro.materialize.policy import RefreshPolicy
from repro.materialize.selection import SelectionResult, greedy_select
from repro.materialize.statistics import WorkloadStats
from repro.materialize.store import LocalStore, MaterializedView
from repro.optimizer.costs import CostModel
from repro.query.exprs import compile_predicate
from repro.algebra.tuples import BindingTuple
from repro.simtime import SimClock
from repro.sources.base import DataSource, Fragment
from repro.xmldm.values import Record

Fetcher = Callable[[Fragment], list[Record]]


class MaterializedViewResult:
    """A materialized *mediated view*: its constructed elements.

    Fragments cache source-side data; this caches the other unit the
    paper names — "one materializes views over the mediated schema" —
    whole view results, constructed elements and all.
    """

    def __init__(self, name: str, elements: list, loaded_at: float,
                 policy: RefreshPolicy):
        self.name = name
        self.elements = elements
        self.loaded_at = loaded_at
        self.policy = policy
        self.invalidated = False
        self.hits = 0
        self.refreshes = 0

    def is_fresh(self, now_ms: float) -> bool:
        return self.policy.is_fresh(now_ms - self.loaded_at, self.invalidated)

    def reload(self, elements: list, now_ms: float) -> None:
        self.elements = elements
        self.loaded_at = now_ms
        self.invalidated = False
        self.refreshes += 1


class MaterializationManager:
    """Owns the local store, serving decisions, refresh and selection.

    The engine asks :meth:`serve` before every remote fragment; a fresh
    matching view answers locally (charging only local processing time
    to the clock).  :meth:`record_remote` feeds the workload stats that
    :meth:`adapt` turns into a new set of materialized views.
    """

    def __init__(
        self,
        clock: SimClock,
        store: LocalStore | None = None,
        stats: WorkloadStats | None = None,
        cost_model: CostModel | None = None,
        default_policy: RefreshPolicy | None = None,
    ):
        self.clock = clock
        # an empty LocalStore is falsy (len 0) but still the caller's store
        self.store = store if store is not None else LocalStore()
        self.stats = stats if stats is not None else WorkloadStats()
        self.cost_model = cost_model or CostModel()
        self.default_policy = default_policy or RefreshPolicy.ttl(60_000.0)
        self.hits = 0
        self.misses = 0
        #: times a *stale* view answered a degraded read (allow_stale)
        self.stale_hits = 0
        #: materialized mediated views, by view name
        self.views: dict[str, MaterializedViewResult] = {}
        #: lineage of the most recent *hit* from :meth:`serve` /
        #: :meth:`serve_view` — ``{"key", "loaded_at", "stale"}``; the
        #: provenance layer reads it right after a successful serve
        #: (the virtual-time world is single-threaded), None after a miss
        self.last_serve: dict[str, Any] | None = None

    # -- serving -------------------------------------------------------------

    def serve(self, fragment: Fragment,
              allow_stale: bool = False) -> list[Record] | None:
        """Answer ``fragment`` from the store, or None on miss/stale.

        ``allow_stale=True`` is the degraded-read mode: when no fresh
        view matches, a matching *stale* view still answers (the engine
        uses this as a last resort when the source itself is gone,
        annotating the result as served-stale).
        """
        stale_match: tuple[MaterializedView, list] | None = None
        for view in self.store:
            if view.fragment.source != fragment.source:
                continue
            answers, residual = matches(view.fragment, fragment)
            if not answers:
                continue
            if not view.is_fresh(self.clock.now):
                if allow_stale and stale_match is None:
                    stale_match = (view, residual)
                continue
            self.hits += 1
            view.hits += 1
            self.last_serve = {"key": view.key,
                               "loaded_at": view.loaded_at, "stale": False}
            return self._filtered(view.records, residual, fragment)
        if stale_match is not None:
            view, residual = stale_match
            self.stale_hits += 1
            view.hits += 1
            self.last_serve = {"key": view.key,
                               "loaded_at": view.loaded_at, "stale": True}
            return self._filtered(view.records, residual, fragment)
        self.misses += 1
        self.last_serve = None
        return None

    def _filtered(
        self,
        records: list[Record],
        residual: list,
        fragment: Fragment | None = None,
    ) -> list[Record]:
        if residual:
            predicates = [compile_predicate(c) for c in residual]
            records = [
                record
                for record in records
                if all(p(BindingTuple(record.as_dict())) for p in predicates)
            ]
        if fragment is not None:
            # broader stored view answering a projected fragment: narrow
            # the served records as the source would have
            records = project_records(list(records), fragment)
        self.clock.advance(self.cost_model.local_cost(len(records)))
        return list(records)

    def serve_view(self, name: str, allow_stale: bool = False) -> list | None:
        """Answer a mediated view from its materialized elements."""
        cached = self.views.get(name)
        if cached is None:
            self.last_serve = None
            return None
        if not cached.is_fresh(self.clock.now):
            if not allow_stale:
                self.last_serve = None
                return None
            self.stale_hits += 1
            stale = True
        else:
            self.hits += 1
            stale = False
        cached.hits += 1
        self.last_serve = {"key": name, "loaded_at": cached.loaded_at,
                           "stale": stale}
        self.clock.advance(self.cost_model.local_cost(len(cached.elements)))
        return cached.elements

    def materialize_view(
        self,
        name: str,
        fetch: Callable[[], list],
        policy: RefreshPolicy | None = None,
    ) -> MaterializedViewResult:
        """Load (or reload) one mediated view's elements into the cache."""
        elements = list(fetch())
        cached = self.views.get(name)
        if cached is None:
            cached = MaterializedViewResult(
                name, elements, self.clock.now, policy or self.default_policy
            )
            self.views[name] = cached
        else:
            cached.reload(elements, self.clock.now)
            if policy is not None:
                cached.policy = policy
        return cached

    def drop_view(self, name: str) -> None:
        if name not in self.views:
            raise MaterializationError(f"view {name!r} is not materialized")
        del self.views[name]

    def refresh_stale_views(self, fetch: Callable[[str], list]) -> int:
        """Re-execute every stale materialized view; returns the count."""
        refreshed = 0
        for cached in self.views.values():
            if not cached.is_fresh(self.clock.now):
                cached.reload(list(fetch(cached.name)), self.clock.now)
                refreshed += 1
        return refreshed

    # -- learning ----------------------------------------------------------------

    def record_remote(self, fragment: Fragment, source: DataSource,
                      cost_ms: float, rows: int) -> None:
        """Observe one remote execution for the selector."""
        self.stats.record(
            fragment_key(fragment), fragment, source.name, cost_ms, rows,
            self.clock.now,
        )

    # -- management ------------------------------------------------------------------

    def materialize(
        self,
        fragment: Fragment,
        fetcher: Fetcher,
        policy: RefreshPolicy | None = None,
    ) -> MaterializedView:
        """Load a fragment's result into the store."""
        records = fetcher(fragment)
        view = MaterializedView(
            fragment=fragment,
            records=list(records),
            loaded_at=self.clock.now,
            policy=policy or self.default_policy,
        )
        return self.store.add(view)

    def drop(self, fragment: Fragment) -> None:
        self.store.remove(fragment_key(fragment))

    def refresh_stale(self, fetcher: Fetcher) -> int:
        """Re-fetch every stale view; returns how many were refreshed."""
        refreshed = 0
        for view in self.store:
            if not view.is_fresh(self.clock.now):
                view.reload(list(fetcher(view.fragment)), self.clock.now)
                refreshed += 1
        return refreshed

    def adapt(
        self,
        budget_rows: int,
        fetcher: Fetcher,
        policy: RefreshPolicy | None = None,
        min_uses: int = 2,
    ) -> SelectionResult:
        """Re-run view selection over the observed workload.

        Views that fall out of the selection are dropped; newly chosen
        fragments are loaded.  This is the "adjust the set of
        materialized views over time depending on the query load" loop.
        """
        selection = greedy_select(
            self.stats.profiles(), budget_rows, self.cost_model, min_uses
        )
        chosen = selection.chosen_keys
        for view in list(self.store):
            if view.key not in chosen:
                self.store.remove(view.key)
        for candidate in selection.chosen:
            if self.store.get(candidate.profile.key) is None:
                self.materialize(candidate.profile.fragment, fetcher, policy)
        return selection

    # -- reporting --------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        return {
            "views": len(self.store),
            "rows": self.store.total_rows,
            "hits": self.hits,
            "misses": self.misses,
            "stale_hits": self.stale_hits,
            "mediated_views": len(self.views),
        }

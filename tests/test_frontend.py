"""Unit tests for lenses, auth, formatting and load balancing."""

import pytest

from repro.core import (
    AccessController,
    EngineCluster,
    Lens,
    LensServer,
    NimbleEngine,
    format_result,
)
from repro.core.lens import LensParameter
from repro.errors import AuthError, LensError, PlanningError
from repro.xmldm import parse_element


@pytest.fixture
def engine(catalog):
    return NimbleEngine(catalog)


@pytest.fixture
def server(engine):
    server = LensServer(engine)
    server.access.add_user("webapp", "s3cret", {"viewer"})
    server.access.add_user("nobody", "guest", set())
    server.register(
        Lens(
            name="customers_by_city",
            queries={
                "list": (
                    'WHERE <c><name>$n</name><city>$c</city></c> IN "customers", '
                    "$c = {city} CONSTRUCT <customer><name>$n</name></customer> "
                    "ORDER BY $n"
                )
            },
            parameters=(LensParameter("city"),),
            default_device="xml",
            required_roles=frozenset({"viewer"}),
        )
    )
    return server


class TestAuth:
    def test_authenticate_success(self):
        access = AccessController()
        access.add_user("ann", "pw", {"admin"})
        assert access.authenticate("ann", "pw").roles == {"admin"}

    def test_authenticate_bad_password(self):
        access = AccessController()
        access.add_user("ann", "pw")
        with pytest.raises(AuthError):
            access.authenticate("ann", "wrong")

    def test_authenticate_unknown_user(self):
        with pytest.raises(AuthError):
            AccessController().authenticate("ghost", "x")

    def test_authorize_role_check(self):
        access = AccessController()
        user = access.add_user("ann", "pw", {"viewer"})
        access.authorize(user, frozenset({"viewer", "admin"}))
        with pytest.raises(AuthError):
            access.authorize(user, frozenset({"admin"}))

    def test_no_required_roles_open(self):
        access = AccessController()
        user = access.add_user("ann", "pw")
        access.authorize(user, frozenset())

    def test_duplicate_user(self):
        access = AccessController()
        access.add_user("ann", "pw")
        with pytest.raises(AuthError):
            access.add_user("ann", "pw2")

    def test_passwords_stored_hashed(self):
        access = AccessController()
        user = access.add_user("ann", "pw")
        assert "pw" not in user.password_hash


class TestLens:
    def test_invoke_full_path(self, server):
        invocation = server.login_and_invoke(
            "customers_by_city", "list", "webapp", "s3cret",
            params={"city": "Seattle"},
        )
        assert "<name>Ann</name>" in invocation.rendered
        assert invocation.result.completeness.complete

    def test_parameter_quoting_is_safe(self, server):
        invocation = server.login_and_invoke(
            "customers_by_city", "list", "webapp", "s3cret",
            params={"city": 'Sea" CONSTRUCT <hacked/>'},
        )
        assert invocation.result.elements == []  # treated as a literal city

    def test_missing_required_parameter(self, server):
        with pytest.raises(LensError):
            server.login_and_invoke(
                "customers_by_city", "list", "webapp", "s3cret", params={}
            )

    def test_unknown_parameter(self, server):
        with pytest.raises(LensError):
            server.login_and_invoke(
                "customers_by_city", "list", "webapp", "s3cret",
                params={"city": "Seattle", "bogus": 1},
            )

    def test_default_parameter(self, engine):
        server = LensServer(engine)
        server.access.add_user("u", "p")
        server.register(
            Lens(
                name="l",
                queries={"q": (
                    'WHERE <c><name>$n</name><tier>$t</tier></c> IN "customers", '
                    "$t = {tier} CONSTRUCT <r>$n</r>"
                )},
                parameters=(LensParameter("tier", required=False, default=1),),
            )
        )
        invocation = server.login_and_invoke("l", "q", "u", "p")
        assert len(invocation.result.elements) == 2

    def test_role_denied(self, server):
        with pytest.raises(AuthError):
            server.login_and_invoke(
                "customers_by_city", "list", "nobody", "guest",
                params={"city": "Seattle"},
            )

    def test_unknown_lens_and_query(self, server):
        user = server.access.authenticate("webapp", "s3cret")
        with pytest.raises(LensError):
            server.invoke("ghost", "list", user)
        with pytest.raises(LensError):
            server.invoke("customers_by_city", "ghost", user,
                          params={"city": "x"})

    def test_device_override(self, server):
        invocation = server.login_and_invoke(
            "customers_by_city", "list", "webapp", "s3cret",
            params={"city": "Seattle"}, device="text",
        )
        assert invocation.device == "text"
        assert "<" not in invocation.rendered.splitlines()[0]

    def test_lens_requires_queries(self):
        with pytest.raises(LensError):
            Lens(name="empty", queries={})


class TestFormatting:
    @pytest.fixture
    def elements(self):
        return [
            parse_element(
                '<deal sku="S1"><price>9.5</price><name>widget</name></deal>'
            )
        ]

    def test_xml_device(self, elements):
        assert format_result(elements, "xml").startswith('<deal sku="S1">')

    def test_web_device_escapes(self):
        elements = [parse_element("<x>a &amp; b</x>")]
        rendered = format_result(elements, "web")
        assert "a &amp; b" in rendered
        assert rendered.startswith('<div class="results">')

    def test_wireless_truncates(self):
        long_text = "x" * 100
        elements = [parse_element(f"<m><t>{long_text}</t></m>")]
        rendered = format_result(elements, "wireless")
        assert len(rendered) <= 41

    def test_text_device_indents(self, elements):
        rendered = format_result(elements, "text")
        lines = rendered.splitlines()
        assert lines[0] == "deal"
        assert any(line.startswith("  ") for line in lines[1:])

    def test_unknown_device(self, elements):
        with pytest.raises(LensError):
            format_result(elements, "fax")


class TestLoadBalancing:
    QUERY = 'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'

    def test_queueing_single_instance(self, engine):
        cluster = EngineCluster(engine, instances=1)
        schedule = [(0.0, self.QUERY), (0.0, self.QUERY), (0.0, self.QUERY)]
        completed = cluster.run_schedule(schedule)
        # with one instance, later queries queue behind earlier ones
        assert completed[1].queue_ms > 0
        assert completed[2].queue_ms > completed[1].queue_ms

    def test_more_instances_cut_latency(self, catalog):
        engine = NimbleEngine(catalog)
        one = EngineCluster(engine, instances=1)
        schedule = [(0.0, self.QUERY)] * 4
        one.run_schedule(schedule)
        many = EngineCluster(engine, instances=4)
        many.run_schedule(schedule)
        assert many.percentile_latency(0.95) < one.percentile_latency(0.95)

    def test_round_robin_distributes(self, engine):
        cluster = EngineCluster(engine, instances=2, strategy="round_robin")
        cluster.run_schedule([(float(i), self.QUERY) for i in range(4)])
        served = [i.queries_served for i in cluster.instances]
        assert served == [2, 2]

    def test_least_loaded_picks_idle(self, engine):
        cluster = EngineCluster(engine, instances=2, strategy="least_loaded")
        cluster.run_schedule([(0.0, self.QUERY), (0.0, self.QUERY)])
        assert all(i.queries_served == 1 for i in cluster.instances)

    def test_throughput_reported(self, engine):
        cluster = EngineCluster(engine, instances=2)
        cluster.run_schedule([(float(i * 10), self.QUERY) for i in range(5)])
        assert cluster.throughput_qps() > 0
        assert cluster.makespan_ms() > 0

    def test_invalid_configuration(self, engine):
        with pytest.raises(PlanningError):
            EngineCluster(engine, instances=0)
        with pytest.raises(PlanningError):
            EngineCluster(engine, strategy="bogus")

"""E6 — load balancing across engine instances.

Paper claim (section 2.1): "Load balancing is provided; multiple
instances of the integration engine can be run simultaneously on one or
more servers" — the mechanism behind "high-performance, scalable query
processing".

The bench drives a bursty arrival schedule of mediated-view queries at
clusters of 1..8 instances and reports throughput and latency
percentiles per dispatch strategy.

Expected shape: throughput scales near-linearly until arrival rate is
absorbed; p95 latency collapses going 1 -> 2 -> 4 instances;
least-loaded dispatch beats random under skewed service times.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, percentile, print_table, write_bench_json

from repro import EngineCluster, NimbleEngine
from repro.workloads import make_website_workload

N_QUERIES = 48

BENCH_STATS = BenchStats()

#: a mix of cheap (stock-only) and expensive (view join) page queries
QUERY_MIX = [
    'WHERE <s><sku>$s</sku><price>$p</price></s> IN "stock" '
    "CONSTRUCT <r>$p</r>",
    'WHERE <page sku=$s><name>$n</name><price>$p</price></page> '
    'IN "product_page" CONSTRUCT <row><n>$n</n><p>$p</p></row>',
]


def schedule(seed: int = 9) -> list[tuple[float, str]]:
    rng = random.Random(seed)
    arrivals = []
    t = 0.0
    for i in range(N_QUERIES):
        t += rng.expovariate(1 / 30.0)  # ~1 arrival / 30 ms
        arrivals.append((t, QUERY_MIX[i % len(QUERY_MIX)]))
    return arrivals


def run_point(instances: int, strategy: str) -> list:
    workload = make_website_workload(30, seed=44)
    engine = NimbleEngine(workload.catalog)
    cluster = EngineCluster(engine, instances=instances, strategy=strategy)
    for record in cluster.run_schedule(schedule()):
        BENCH_STATS.absorb(record.result)
    latencies = cluster.latencies()
    return [
        instances,
        strategy,
        cluster.throughput_qps(),
        percentile(latencies, 0.50),
        percentile(latencies, 0.95),
    ]


def run_experiment() -> list[list]:
    BENCH_STATS.reset()
    rows = []
    for instances in (1, 2, 4, 8):
        rows.append(run_point(instances, "least_loaded"))
    for strategy in ("round_robin", "random"):
        rows.append(run_point(4, strategy))
    return rows


def report():
    rows = run_experiment()
    print_table(
        "E6: engine instances vs throughput and latency (paper section 2.1)",
        ["instances", "dispatch", "throughput (q/s)", "p50 latency (ms)",
         "p95 latency (ms)"],
        rows,
    )
    write_bench_json(
        "e6_load_balancing",
        ["instances", "dispatch", "throughput (q/s)", "p50 latency (ms)",
         "p95 latency (ms)"],
        rows,
        headline={"max_throughput_qps": max(row[2] for row in rows)},
        stats=BENCH_STATS,
    )
    return rows


def test_e6_load_balancing(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    least = {row[0]: row for row in rows if row[1] == "least_loaded"}
    # scaling: more instances -> strictly better tail latency until
    # arrivals are absorbed
    assert least[2][4] < least[1][4]
    assert least[4][4] < least[2][4]
    assert least[8][4] <= least[4][4]
    # throughput improves with instances
    assert least[4][2] > least[1][2]
    # least-loaded beats random at the tail with 4 instances
    random_row = next(row for row in rows if row[1] == "random")
    assert least[4][4] <= random_row[4]
    report()


if __name__ == "__main__":
    report()

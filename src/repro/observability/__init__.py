"""Observability: tracing, metrics, and the query log.

Section 4 of the paper calls for "configuration and management tools
that make it possible for administrators to set up, monitor, and
understand, the system".  This package is the *understand* part:

* :mod:`tracing` — per-query span trees over virtual + wall time with
  structured events (retries, breaker trips, cache hits, single-flight
  joins); a no-op :data:`~repro.observability.tracing.NULL_TRACER`
  keeps the off path free;
* :mod:`metrics` — counters/gauges/histograms with deterministic
  snapshots and nearest-rank percentiles;
* :mod:`querylog` — a bounded log of recent queries with elapsed
  times, completeness, and a slow-query flag;
* :mod:`export` — JSON trace dumps and Chrome ``trace_event`` files
  for visual inspection of prefetch fan-out.
"""

from repro.observability.export import (
    chrome_trace_events,
    trace_to_dict,
    traces_to_json,
    write_chrome_trace,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.observability.querylog import QueryLog, QueryLogRecord, query_hash
from repro.observability.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    format_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QueryLog",
    "QueryLogRecord",
    "Span",
    "SpanEvent",
    "Tracer",
    "chrome_trace_events",
    "format_trace",
    "percentile",
    "query_hash",
    "trace_to_dict",
    "traces_to_json",
    "write_chrome_trace",
]

"""Unit tests for mediation (catalog, mappings, views) and the optimizer."""

import pytest

from repro.errors import MediationError, PlanningError
from repro.mediator.catalog import Catalog, DocumentTarget
from repro.mediator.mapping import RelationMapping
from repro.mediator.schema import MediatedSchema, ViewDef
from repro.optimizer import CostModel, decompose
from repro.optimizer.costs import condition_selectivity
from repro.optimizer.decomposer import FragmentUnit, ViewUnit
from repro.query import ast as qast
from repro.query.binder import bind_query
from repro.query.parser import parse_query


def bound(text):
    return bind_query(parse_query(text))


class TestMapping:
    def test_field_renaming(self):
        mapping = RelationMapping("orders", "crm", "orders", {"customer": "cust_id"})
        assert mapping.source_field("customer") == "cust_id"
        assert mapping.source_field("total") == "total"

    def test_rewrite_pattern(self):
        mapping = RelationMapping("orders", "crm", "orders", {"customer": "cust_id"})
        pattern = parse_query(
            'WHERE <o><customer>$c</customer><total>$t</total></o> IN "orders" '
            "CONSTRUCT <r>$c</r>"
        ).pattern_clauses[0].pattern
        tree = mapping.rewrite_pattern(pattern)
        assert tree.tag == "orders"
        assert [child.tag for child in tree.children] == ["cust_id", "total"]
        assert [child.text_var for child in tree.children] == ["c", "t"]

    def test_nested_pattern_rejected(self):
        mapping = RelationMapping("m", "s", "t")
        pattern = parse_query(
            'WHERE <o><a><b>$x</b></a></o> IN "m" CONSTRUCT <r>$x</r>'
        ).pattern_clauses[0].pattern
        with pytest.raises(MediationError):
            mapping.rewrite_pattern(pattern)


class TestCatalog:
    def test_resolution_order(self, catalog):
        assert isinstance(catalog.resolve("customers"), RelationMapping)
        assert isinstance(catalog.resolve("library.books"), DocumentTarget)
        with pytest.raises(MediationError):
            catalog.resolve("nope")

    def test_views_shadow_mappings(self, catalog):
        schema = MediatedSchema("layer")
        schema.define_view(
            "customers",
            'WHERE <c><name>$n</name></c> IN "crm.customers" CONSTRUCT <x>$n</x>',
        )
        catalog.add_schema(schema)
        assert isinstance(catalog.resolve("customers"), ViewDef)

    def test_mapping_to_unknown_source_rejected(self, catalog):
        with pytest.raises(MediationError):
            catalog.map_relation("m", "ghost", "t")

    def test_duplicate_mapping_rejected(self, catalog):
        with pytest.raises(MediationError):
            catalog.map_relation("customers", "crm", "customers")

    def test_cycle_detection(self, catalog):
        schema = MediatedSchema("cyclic")
        schema.define_view(
            "v1", 'WHERE <a>$x</a> IN "v2" CONSTRUCT <r>$x</r>'
        )
        schema.define_view(
            "v2", 'WHERE <a>$x</a> IN "v1" CONSTRUCT <r>$x</r>'
        )
        with pytest.raises(MediationError):
            catalog.add_schema(schema)

    def test_cardinality_of_mapping(self, catalog):
        assert catalog.cardinality("customers") == 4

    def test_known_names(self, catalog):
        assert "customers" in catalog.known_names()

    def test_schema_duplicate_view(self):
        schema = MediatedSchema("s")
        schema.define_view("v", 'WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</r>')
        with pytest.raises(MediationError):
            schema.define_view("v", 'WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</r>')


class TestDecomposer:
    def test_same_source_clauses_merge(self, catalog):
        decomposed = decompose(
            bound(
                'WHERE <c><id>$i</id><name>$n</name></c> IN "customers", '
                '<o><cust_id>$i</cust_id><total>$t</total></o> IN "orders" '
                "CONSTRUCT <r>$n</r>"
            ),
            catalog,
        )
        fragments = [u for u in decomposed.units if isinstance(u, FragmentUnit)]
        assert len(fragments) == 1
        assert len(fragments[0].fragment.accesses) == 2

    def test_disconnected_same_source_not_merged(self, catalog):
        decomposed = decompose(
            bound(
                'WHERE <c><name>$n</name></c> IN "customers", '
                '<o><total>$t</total></o> IN "orders" '
                "CONSTRUCT <r><n>$n</n><t>$t</t></r>"
            ),
            catalog,
        )
        assert len(decomposed.units) == 2

    def test_condition_pushed_to_capable_source(self, catalog):
        decomposed = decompose(
            bound(
                'WHERE <c><name>$n</name><tier>$t</tier></c> IN "customers", '
                "$t > 1 CONSTRUCT <r>$n</r>"
            ),
            catalog,
        )
        assert not decomposed.residual_conditions
        unit = decomposed.units[0]
        assert len(unit.fragment.conditions) == 1

    def test_cross_source_condition_stays_residual(self, catalog):
        decomposed = decompose(
            bound(
                'WHERE <c><name>$n</name></c> IN "customers", '
                '<b><author>$a</author></b> IN "library.books", '
                "$n != $a CONSTRUCT <r>$n</r>"
            ),
            catalog,
        )
        assert len(decomposed.residual_conditions) == 1

    def test_pushdown_disabled(self, catalog):
        decomposed = decompose(
            bound(
                'WHERE <c><id>$i</id></c> IN "customers", '
                '<o><cust_id>$i</cust_id></o> IN "orders", $i > 1 '
                "CONSTRUCT <r>$i</r>"
            ),
            catalog,
            pushdown=False,
        )
        assert len(decomposed.units) == 2
        assert len(decomposed.residual_conditions) == 1

    def test_webservice_becomes_dependent(self, catalog):
        decomposed = decompose(
            bound(
                'WHERE <c><name>$n</name></c> IN "customers", '
                '<s><name>$n</name><score>$sc</score></s> IN "credit_scores" '
                "CONSTRUCT <r><n>$n</n><s>$sc</s></r>"
            ),
            catalog,
        )
        dependent = [
            u for u in decomposed.units
            if isinstance(u, FragmentUnit) and u.dependent
        ]
        assert len(dependent) == 1
        assert dependent[0].fragment.input_vars == ("n",)

    def test_dependent_without_provider_rejected(self, catalog):
        with pytest.raises(PlanningError):
            decompose(
                bound(
                    'WHERE <s><name>$n</name><score>$sc</score></s> '
                    'IN "credit_scores" CONSTRUCT <r>$sc</r>'
                ),
                catalog,
            )

    def test_view_clause_becomes_view_unit(self, catalog):
        schema = MediatedSchema("layer")
        schema.define_view(
            "top_customers",
            'WHERE <c><name>$n</name><tier>$t</tier></c> IN "customers", '
            "$t = 1 CONSTRUCT <tc><name>$n</name></tc>",
        )
        catalog.add_schema(schema)
        decomposed = decompose(
            bound(
                'WHERE <tc><name>$n</name></tc> IN "top_customers" '
                "CONSTRUCT <r>$n</r>"
            ),
            catalog,
        )
        assert isinstance(decomposed.units[0], ViewUnit)


class TestCostModel:
    def test_selectivity_guesses(self):
        eq = qast.BinOp("=", qast.Var("x"), qast.Literal(1))
        rng = qast.BinOp(">", qast.Var("x"), qast.Literal(1))
        assert condition_selectivity(eq) == 0.1
        assert condition_selectivity(rng) == 0.3
        both = qast.BinOp("AND", eq, rng)
        assert condition_selectivity(both) == pytest.approx(0.03)

    def test_or_selectivity_bounded(self):
        eq = qast.BinOp("=", qast.Var("x"), qast.Literal(1))
        either = qast.BinOp("OR", eq, eq)
        assert condition_selectivity(either) <= 1.0

    def test_estimate_rows_applies_selectivity(self, catalog):
        decomposed = decompose(
            bound(
                'WHERE <c><name>$n</name><tier>$t</tier></c> IN "customers", '
                "$t = 1 CONSTRUCT <r>$n</r>"
            ),
            catalog,
        )
        unit = decomposed.units[0]
        model = CostModel()
        rows = model.estimate_rows(unit.fragment, unit.source)
        assert rows == pytest.approx(0.4)  # 4 rows * 0.1

    def test_noise_is_deterministic(self, catalog):
        decomposed = decompose(
            bound('WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'),
            catalog,
        )
        unit = decomposed.units[0]
        noisy = CostModel(noise=0.5, seed=1)
        first = noisy.estimate(unit.fragment, unit.source)
        second = noisy.estimate(unit.fragment, unit.source)
        assert first.cost_ms == second.cost_ms
        clean = CostModel().estimate(unit.fragment, unit.source)
        assert first.cost_ms != clean.cost_ms

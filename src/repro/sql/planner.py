"""Plans SELECT statements into physical node trees.

Planning is deliberately classical and deterministic:

* WHERE is split into conjuncts; single-table conjuncts move down to
  their table's scan, where an equality or range conjunct over an indexed
  column upgrades the scan to an index scan;
* joins stay in FROM order (left-deep); each join that has an extractable
  equi-condition becomes a hash join, the rest nested loops;
* aggregates are detected anywhere in the SELECT list / HAVING / ORDER BY
  and computed by one Aggregate node; non-grouped columns evaluate
  against the group's representative row (documented subset behaviour);
* ORDER BY resolves output aliases and 1-based positions to their
  underlying expressions before the Sort node is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import PlanningError, SQLSchemaError
from repro.sql import ast
from repro.sql.executor import (
    AggregateNode,
    FilterNode,
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    NestedLoopJoinNode,
    PlanNode,
    SeqScanNode,
    SortNode,
)
from repro.sql.functions import AGGREGATE_NAMES
from repro.sql.index import SortedIndex
from repro.sql.storage import Table


@dataclass
class PreparedSelect:
    """A planned SELECT: the plan plus the projection recipe."""

    root: PlanNode
    output_exprs: tuple[ast.Expr, ...]
    column_names: tuple[str, ...]
    distinct: bool


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten nested ANDs into a conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    """Inverse of :func:`split_conjuncts`."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.BinaryOp("AND", result, conjunct)
    return result


def referenced_bindings(expr: ast.Expr, default_binding: str | None = None) -> set[str]:
    """Bindings (table aliases) an expression touches.

    Unqualified column references are attributed to ``default_binding``
    when given, else reported as '?' (meaning "unknown/any").
    """
    found: set[str] = set()

    def walk(node: ast.Expr) -> None:
        if isinstance(node, ast.ColumnRef):
            if node.table is not None:
                found.add(node.table)
            else:
                found.add(default_binding if default_binding else "?")
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.Like):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)

    walk(expr)
    return found


def collect_column_refs(expr: ast.Expr | None) -> list[ast.ColumnRef]:
    """All ColumnRef nodes inside ``expr`` (depth-first)."""
    if expr is None:
        return []
    refs: list[ast.ColumnRef] = []

    def walk(node: ast.Expr) -> None:
        if isinstance(node, ast.ColumnRef):
            refs.append(node)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.Like):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)

    walk(expr)
    return refs


def find_aggregate_calls(expr: ast.Expr | None) -> list[ast.FuncCall]:
    """All aggregate FuncCall nodes inside ``expr`` (depth-first)."""
    if expr is None:
        return []
    calls: list[ast.FuncCall] = []

    def walk(node: ast.Expr) -> None:
        if isinstance(node, ast.FuncCall):
            if node.name in AGGREGATE_NAMES:
                calls.append(node)
                return  # no nested aggregates
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.Like):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)

    walk(expr)
    return calls


def is_constant(expr: ast.Expr) -> bool:
    """True when the expression references no columns (params count as constant)."""
    return not referenced_bindings(expr)


class Planner:
    """Plans one SELECT against a catalog of tables."""

    def __init__(self, tables: dict[str, Table], counters: dict[str, int]):
        self.tables = tables
        self.counters = counters

    def plan(self, stmt: ast.SelectStmt) -> PreparedSelect:
        bindings, binding_tables = self._resolve_from(stmt)
        conjuncts = split_conjuncts(stmt.where)

        items = self._expand_stars(stmt.items, bindings, binding_tables)
        needed = self._needed_columns(stmt, items, bindings, binding_tables)
        root = self._plan_joins(stmt, bindings, binding_tables, conjuncts, needed)
        if conjuncts:
            root = FilterNode(root, conjoin(conjuncts))  # type: ignore[arg-type]

        output_exprs = tuple(item.expr for item in items)
        column_names = tuple(self._output_name(item, i) for i, item in enumerate(items))
        alias_map = {
            item.alias: item.expr for item in items if item.alias is not None
        }

        aggregate_calls = []
        for item in items:
            aggregate_calls.extend(find_aggregate_calls(item.expr))
        aggregate_calls.extend(find_aggregate_calls(stmt.having))
        for order in stmt.order_by:
            aggregate_calls.extend(find_aggregate_calls(order.expr))
        # Dedup while keeping order (frozen dataclasses hash by content).
        unique_calls = tuple(dict.fromkeys(aggregate_calls))

        if unique_calls or stmt.group_by:
            having = self._resolve_aliases(stmt.having, alias_map)
            root = AggregateNode(root, stmt.group_by, unique_calls, having)
        elif stmt.having is not None:
            raise PlanningError("HAVING requires GROUP BY or aggregates")

        if stmt.order_by:
            resolved = tuple(
                ast.OrderItem(
                    self._resolve_order_expr(order.expr, output_exprs, alias_map),
                    order.descending,
                )
                for order in stmt.order_by
            )
            root = SortNode(root, resolved)
        if stmt.limit is not None or stmt.offset is not None:
            root = LimitNode(root, stmt.limit, stmt.offset)
        return PreparedSelect(root, output_exprs, column_names, stmt.distinct)

    # -- FROM clause -------------------------------------------------------

    def _resolve_from(
        self, stmt: ast.SelectStmt
    ) -> tuple[list[str], dict[str, Table]]:
        if stmt.table is None:
            raise PlanningError("SELECT without FROM is not supported")
        refs = [stmt.table] + [join.table for join in stmt.joins]
        bindings: list[str] = []
        binding_tables: dict[str, Table] = {}
        for ref in refs:
            table = self.tables.get(ref.name)
            if table is None:
                raise SQLSchemaError(f"unknown table {ref.name!r}")
            if ref.binding in binding_tables:
                raise PlanningError(f"duplicate table binding {ref.binding!r}")
            bindings.append(ref.binding)
            binding_tables[ref.binding] = table
        return bindings, binding_tables

    def _plan_joins(
        self,
        stmt: ast.SelectStmt,
        bindings: list[str],
        binding_tables: dict[str, Table],
        conjuncts: list[ast.Expr],
        needed: dict[str, tuple[str, ...] | None],
    ) -> PlanNode:
        assert stmt.table is not None
        first = stmt.table.binding
        root = self._plan_scan(first, binding_tables[first], conjuncts, bindings,
                               needed.get(first))
        joined = {first}
        for join in stmt.joins:
            binding = join.table.binding
            if join.kind == "LEFT":
                # LEFT joins keep their full ON condition at the join.
                right = self._plan_scan(binding, binding_tables[binding], [],
                                        bindings, needed.get(binding))
                root = self._make_join(
                    root, right, join.condition, "LEFT", binding,
                    binding_tables, needed,
                )
            else:
                join_conjuncts = split_conjuncts(join.condition)
                # Pull in applicable WHERE conjuncts referencing the new table.
                available = joined | {binding}
                pulled = [
                    c
                    for c in conjuncts
                    if referenced_bindings(c) <= available
                    and binding in referenced_bindings(c)
                ]
                for c in pulled:
                    conjuncts.remove(c)
                all_conjuncts = join_conjuncts + pulled
                local = [
                    c
                    for c in all_conjuncts
                    if referenced_bindings(c) <= {binding} or is_constant(c)
                ]
                cross = [c for c in all_conjuncts if c not in local]
                right = self._plan_scan(
                    binding, binding_tables[binding], local, bindings,
                    needed.get(binding),
                )
                if local:
                    residual_local = conjoin(local)
                    if residual_local is not None:
                        right = FilterNode(right, residual_local)
                root = self._make_join(
                    root, right, conjoin(cross), "INNER", binding,
                    binding_tables, needed,
                )
            joined.add(binding)
        return root

    def _needed_columns(
        self,
        stmt: ast.SelectStmt,
        items: list[ast.SelectItem],
        bindings: list[str],
        binding_tables: dict[str, Table],
    ) -> dict[str, tuple[str, ...] | None]:
        """Per-binding column subsets the query actually reads.

        None means "all columns" (no projection determined) — the
        conservative answer whenever an unqualified reference cannot be
        attributed, or a binding is never referenced (COUNT(*) style).
        Values keep schema order so scan output is deterministic.
        """
        refs: list[ast.ColumnRef] = []
        for item in items:
            refs.extend(collect_column_refs(item.expr))
        refs.extend(collect_column_refs(stmt.where))
        refs.extend(collect_column_refs(stmt.having))
        for expr in stmt.group_by:
            refs.extend(collect_column_refs(expr))
        for order in stmt.order_by:
            refs.extend(collect_column_refs(order.expr))
        for join in stmt.joins:
            refs.extend(collect_column_refs(join.condition))
        wanted: dict[str, set[str]] = {binding: set() for binding in bindings}
        for ref in refs:
            if ref.table is not None:
                if ref.table in wanted:
                    wanted[ref.table].add(ref.column)
                continue
            owners = [
                binding for binding in bindings
                if ref.column in binding_tables[binding].schema.column_names
            ]
            # 0 owners: a select alias (its underlying expression is
            # already collected) or an unknown column (errors later
            # either way).  >1 owners: keep the column everywhere so
            # the ambiguity error surfaces unchanged at evaluation.
            for owner in owners:
                wanted[owner].add(ref.column)
        needed: dict[str, tuple[str, ...] | None] = {}
        for binding in bindings:
            names = binding_tables[binding].schema.column_names
            columns = tuple(name for name in names if name in wanted[binding])
            needed[binding] = (
                columns if columns and len(columns) < len(names) else None
            )
        return needed

    def _make_join(
        self,
        left: PlanNode,
        right: PlanNode,
        condition: ast.Expr | None,
        kind: str,
        right_binding: str,
        binding_tables: dict[str, Table],
        needed: dict[str, tuple[str, ...] | None],
    ) -> PlanNode:
        # the LEFT-join null side must mirror the scan's (possibly
        # projected) width, or matched and unmatched rows would disagree
        right_columns = {
            right_binding: (
                needed.get(right_binding)
                or binding_tables[right_binding].schema.column_names
            )
        }
        equi, residual = self._extract_equi_key(condition, right_binding)
        if equi is not None:
            left_key, right_key = equi
            return HashJoinNode(
                left,
                right,
                left_key,
                right_key,
                residual,
                kind,
                (right_binding,),
                right_columns,
            )
        return NestedLoopJoinNode(
            left, right, condition, kind, (right_binding,), right_columns
        )

    def _extract_equi_key(
        self, condition: ast.Expr | None, right_binding: str
    ) -> tuple[tuple[ast.Expr, ast.Expr] | None, ast.Expr | None]:
        """Find one `left = right` conjunct split across the join."""
        conjuncts = split_conjuncts(condition)
        for i, conjunct in enumerate(conjuncts):
            if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
                continue
            left_refs = referenced_bindings(conjunct.left)
            right_refs = referenced_bindings(conjunct.right)
            if "?" in left_refs or "?" in right_refs:
                continue  # unqualified columns: stay conservative
            if right_binding in right_refs and right_binding not in left_refs:
                rest = conjoin(conjuncts[:i] + conjuncts[i + 1 :])
                return (conjunct.left, conjunct.right), rest
            if right_binding in left_refs and right_binding not in right_refs:
                rest = conjoin(conjuncts[:i] + conjuncts[i + 1 :])
                return (conjunct.right, conjunct.left), rest
        return None, None

    # -- scans ---------------------------------------------------------------

    def _plan_scan(
        self,
        binding: str,
        table: Table,
        conjuncts: list[ast.Expr],
        all_bindings: list[str],
        columns: tuple[str, ...] | None = None,
    ) -> PlanNode:
        """Scan ``table``, consuming applicable conjuncts from the list."""
        single_binding = len(all_bindings) == 1
        local: list[ast.Expr] = []
        for conjunct in list(conjuncts):
            refs = referenced_bindings(conjunct)
            if "?" in refs:
                refs = (refs - {"?"}) | ({binding} if single_binding else {"?"})
            if refs <= {binding}:
                local.append(conjunct)
                conjuncts.remove(conjunct)
        scan = self._choose_scan(binding, table, local, columns)
        predicate = conjoin(local)
        if predicate is not None:
            scan = FilterNode(scan, predicate)
        return scan

    def _choose_scan(
        self,
        binding: str,
        table: Table,
        local: list[ast.Expr],
        columns: tuple[str, ...] | None,
    ) -> PlanNode:
        """Upgrade to an index scan when a local conjunct allows it.

        The matched conjunct stays in ``local`` (re-checked by the filter);
        correctness never depends on the index, only speed.
        """
        for conjunct in local:
            access = self._index_access(binding, table, conjunct, columns)
            if access is not None:
                return access
        return SeqScanNode(table, binding, self.counters, columns=columns)

    def _index_access(
        self,
        binding: str,
        table: Table,
        conjunct: ast.Expr,
        columns: tuple[str, ...] | None,
    ) -> PlanNode | None:
        if not isinstance(conjunct, ast.BinaryOp):
            return None
        if conjunct.op not in ("=", "<", "<=", ">", ">="):
            return None
        column, constant, op = self._column_vs_constant(
            conjunct, binding
        )
        if column is None or constant is None:
            return None
        indexes = table.indexes_on(column)
        if not indexes:
            return None
        if op == "=":
            index = indexes[0]
            return IndexScanNode(
                table, binding, index.name, self.counters, equals=constant,
                columns=columns,
            )
        ordered = [ix for ix in indexes if isinstance(ix, SortedIndex)]
        if not ordered:
            return None
        index = ordered[0]
        if op in (">", ">="):
            return IndexScanNode(
                table,
                binding,
                index.name,
                self.counters,
                low=constant,
                low_inclusive=(op == ">="),
                columns=columns,
            )
        return IndexScanNode(
            table,
            binding,
            index.name,
            self.counters,
            high=constant,
            high_inclusive=(op == "<="),
            columns=columns,
        )

    def _column_vs_constant(
        self, conjunct: ast.BinaryOp, binding: str
    ) -> tuple[str | None, ast.Expr | None, str]:
        """Normalize `col OP const` / `const OP col` to (col, const, op)."""
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(left, ast.ColumnRef) and is_constant(right):
            if left.table in (None, binding):
                return left.column, right, op
        if isinstance(right, ast.ColumnRef) and is_constant(left):
            if right.table in (None, binding):
                return right.column, left, flipped[op]
        return None, None, op

    # -- projection ----------------------------------------------------------

    def _expand_stars(
        self,
        items: tuple[ast.SelectItem, ...],
        bindings: list[str],
        binding_tables: dict[str, Table],
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if not item.star:
                expanded.append(item)
                continue
            targets = [item.star_table] if item.star_table else bindings
            for binding in targets:
                table = binding_tables.get(binding)
                if table is None:
                    raise SQLSchemaError(f"unknown table binding {binding!r}")
                for column in table.schema.column_names:
                    expanded.append(
                        ast.SelectItem(ast.ColumnRef(column, table=binding))
                    )
        return expanded

    def _output_name(self, item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.column
        if isinstance(item.expr, ast.FuncCall):
            return item.expr.name.lower()
        return f"column{index + 1}"

    def _resolve_aliases(
        self, expr: ast.Expr | None, alias_map: dict[str, ast.Expr]
    ) -> ast.Expr | None:
        if expr is None:
            return None
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            return alias_map.get(expr.column, expr)
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                expr.op,
                self._resolve_aliases(expr.left, alias_map),  # type: ignore[arg-type]
                self._resolve_aliases(expr.right, alias_map),  # type: ignore[arg-type]
            )
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(
                expr.op, self._resolve_aliases(expr.operand, alias_map)  # type: ignore[arg-type]
            )
        return expr

    def _resolve_order_expr(
        self,
        expr: ast.Expr,
        output_exprs: tuple[ast.Expr, ...],
        alias_map: dict[str, ast.Expr],
    ) -> ast.Expr:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(output_exprs):
                raise PlanningError(f"ORDER BY position {position} out of range")
            return output_exprs[position - 1]
        resolved = self._resolve_aliases(expr, alias_map)
        assert resolved is not None
        return resolved

"""Scoping a change to the fragments it can actually affect.

The old invalidation story was a catalog-epoch bump: any write anywhere
killed every cached fragment.  This module gives each change a *scope*:

* :func:`change_key_var` — which query variable a fragment binds to the
  changed relation's key field (the ``access_key_var`` idiom from
  sharding);
* :func:`key_affected` — sound exclusion via
  :func:`repro.materialize.matching.implies`: a fragment whose pushed
  conditions imply the key lies strictly below or above the changed key
  cannot contain the changed row, so its cached results are *retained*;
* :func:`fragment_patch` / :func:`patch_records` — when the fragment is
  simple enough to reconstruct the changed row exactly as the source
  scan would have produced it, the cached records are *patched* in
  place instead of evicted.

Every helper is conservative: when a shape is not provably patchable or
excludable the answer is "affected, evict" — correctness never rides on
completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.pattern import TreePattern, match_pattern
from repro.algebra.tuples import BindingTuple
from repro.cdc.changelog import ChangeRecord
from repro.materialize.matching import implies
from repro.query import ast as qast
from repro.query.exprs import compile_predicate
from repro.sources.base import Fragment
from repro.xmldm.nodes import Element
from repro.xmldm.values import NULL, Record


def pattern_bindings(pattern: TreePattern) -> dict[str, str] | None:
    """field -> variable map of a *flat* access pattern, or None.

    Covers the two shapes source rewrites produce: attribute bindings
    (``@field=$v``) and flat text-binding children (``<field>$v</field>``).
    Anything richer — literals, nested or descendant children, element
    or text variables on the row itself — returns None: the row record
    cannot be rebuilt from a field dict alone.
    """
    bindings: dict[str, str] = {}
    if pattern.element_var is not None or pattern.text_var is not None:
        return None
    if pattern.text_literal is not None:
        return None
    for attribute in pattern.attributes:
        if attribute.var is None:
            return None  # attribute literal: a hidden filter
        bindings[attribute.name] = attribute.var
    for child in pattern.children:
        if (
            child.children
            or child.attributes
            or child.descendant
            or child.element_var is not None
            or child.text_literal is not None
            or child.text_var is None
            or child.tag == "*"
        ):
            return None
        bindings[child.tag] = child.text_var
    return bindings


def change_key_var(fragment: Fragment, relation: str,
                   key_field: str) -> str | None:
    """The variable the fragment binds to ``relation``'s key field."""
    for access in fragment.accesses:
        if access.relation != relation:
            continue
        pattern = access.pattern
        for attribute in pattern.attributes:
            if attribute.name == key_field and attribute.var is not None:
                return attribute.var
        for child in pattern.children:
            if child.tag == key_field and child.text_var is not None:
                return child.text_var
    return None


def key_affected(conditions, key_var: str, key) -> bool:
    """Can a row with ``key_var = key`` satisfy the pushed conditions?

    False only when some condition provably excludes the key — it
    implies ``$key_var < key`` or ``$key_var > key``.  Equality
    conditions on other values exclude through the same implication
    (``$k = 5`` implies ``$k < 7``).
    """
    if not isinstance(key, (int, float, str)) or isinstance(key, bool):
        return True  # no total order to reason over
    var = qast.Var(key_var)
    literal = qast.Literal(key)
    for condition in conditions:
        if implies(condition, qast.BinOp("<", var, literal)):
            return False
        if implies(condition, qast.BinOp(">", var, literal)):
            return False
    return True


@dataclass(frozen=True)
class FragmentPatch:
    """How one change lands on one fragment's cached records.

    ``rows`` are the after-image records exactly as the source scan
    would produce them (conditions applied, columns projected);
    ``before_rows`` the before-image ones.  ``key_var`` locates the
    affected records inside the cached result.
    """

    op: str  # insert | update | delete
    key_var: str
    key: object
    rows: tuple[Record, ...] = ()
    before_rows: tuple[Record, ...] = ()


def _relational_rows(
    fragment: Fragment,
    bindings: dict[str, str],
    row: Record | None,
) -> tuple[Record, ...] | None:
    """The fragment-level records one relational row produces (0 or 1)."""
    if row is None:
        return ()
    values: dict[str, object] = {}
    for field_name, var in bindings.items():
        if field_name not in row.fields:
            return None  # pattern binds a field the row does not carry
        values[var] = row.get(field_name)
    match = BindingTuple(values)
    for condition in fragment.conditions:
        if not compile_predicate(condition)(match):
            return ()
    output_vars = fragment.output_variables()
    return (Record({var: match.get(var, NULL) for var in output_vars}),)


def _xml_rows(
    fragment: Fragment,
    pattern: TreePattern,
    node: Element | None,
) -> tuple[Record, ...] | None:
    """The records one row subtree produces, mirroring XMLSource scan."""
    if node is None:
        return ()
    parent = node.parent
    if pattern.tag == "*" or parent is None or parent.tag == pattern.tag:
        # the pattern could match the document root too; matches there
        # are not attributable to any single row
        return None
    predicates = [compile_predicate(c) for c in fragment.conditions]
    variables = pattern.variables()
    if fragment.columns:
        keep = set(fragment.columns)
        output_vars = [var for var in variables if var in keep]
    else:
        output_vars = list(variables)
    seed = BindingTuple()
    rows: list[Record] = []
    for candidate in node.descendants_or_self(pattern.tag):
        for match in match_pattern(pattern, candidate, seed):
            if all(predicate(match) for predicate in predicates):
                rows.append(
                    Record({var: match.get(var, NULL) for var in output_vars})
                )
    return tuple(rows)


def fragment_patch(
    fragment: Fragment, change: ChangeRecord, key_field: str
) -> FragmentPatch | None:
    """An in-place patch for ``change`` against ``fragment``, or None.

    None means "not patchable — evict".  Requires a single access over
    the changed relation that binds the key field to an *output*
    variable (so patched records can be located), and a change whose
    row images reconstruct exactly.
    """
    if change.op == "reset":
        return None
    if len(fragment.accesses) != 1 or fragment.input_vars:
        return None
    access = fragment.accesses[0]
    if access.relation != change.relation:
        return None
    key_var = change_key_var(fragment, change.relation, key_field)
    if key_var is None or key_var not in fragment.output_variables():
        return None

    if change.node is not None or change.before_node is not None:
        rows = _xml_rows(fragment, access.pattern, change.node)
        before_rows = _xml_rows(fragment, access.pattern, change.before_node)
    else:
        bindings = pattern_bindings(access.pattern)
        if bindings is None or key_field not in bindings:
            return None
        rows = _relational_rows(fragment, bindings, change.row)
        before_rows = _relational_rows(fragment, bindings, change.before)
    if rows is None or before_rows is None:
        return None
    return FragmentPatch(change.op, key_var, change.key,
                         rows=rows, before_rows=before_rows)


def patch_records(records: list[Record],
                  patch: FragmentPatch) -> list[Record] | None:
    """Apply a patch to a cached record list, or None when unsound.

    Inserts append (scans emit new rows last: rowids grow, the differ
    rejects mid-document inserts).  Deletes remove the key's records.
    Updates replace them *in place* — positions are stable because the
    underlying row kept its rowid / document position — but an update
    that changes how many records the row produces, or that flips a row
    *into* the result (its position is unknowable), returns None.
    """
    positions = [
        index
        for index, record in enumerate(records)
        if record.get(patch.key_var) == patch.key
    ]
    if patch.op == "insert":
        if positions:
            return None  # duplicate key: the feed and the cache disagree
        return records + list(patch.rows)
    if patch.op == "delete":
        if not positions:
            return list(records)  # filtered out before; nothing to do
        keep = set(positions)
        return [
            record
            for index, record in enumerate(records)
            if index not in keep
        ]
    # update
    if not positions:
        if not patch.rows:
            return list(records)  # out before, out after: untouched
        return None  # flips INTO the result: position unknown
    if not patch.rows:
        # flips OUT of the result: an in-place delete
        keep = set(positions)
        return [
            record
            for index, record in enumerate(records)
            if index not in keep
        ]
    if len(positions) != len(patch.rows):
        return None  # fan-out changed: positions ambiguous
    patched = list(records)
    for index, row in zip(positions, patch.rows):
        patched[index] = row
    return patched


__all__ = [
    "FragmentPatch",
    "change_key_var",
    "fragment_patch",
    "key_affected",
    "pattern_bindings",
    "patch_records",
]

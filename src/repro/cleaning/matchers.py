"""Record matchers: weighted field comparison with a three-way verdict."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.cleaning.similarity import string_similarity
from repro.errors import CleaningError
from repro.xmldm.values import Null, Record

Metric = Callable[[str, str], float]
Normalizer = Callable[[str], str]


class MatchDecision(enum.Enum):
    """The matcher's verdict on a record pair."""

    MATCH = "match"
    POSSIBLE = "possible"  # ambiguous: needs human disambiguation
    NONMATCH = "nonmatch"


@dataclass(frozen=True)
class FieldRule:
    """Compare one field pair with a metric, a weight and a normalizer."""

    field_a: str
    field_b: str | None = None  # defaults to field_a
    metric: Metric = string_similarity
    weight: float = 1.0
    normalizer: Normalizer | None = None

    @property
    def right_field(self) -> str:
        return self.field_b if self.field_b is not None else self.field_a


@dataclass
class MatchScore:
    """The scored comparison of one record pair."""

    score: float
    decision: MatchDecision
    per_field: dict[str, float] = field(default_factory=dict)


class RecordMatcher:
    """Weighted-average field similarity with match/possible thresholds.

    Fields missing (or NULL) on either side are excluded from the
    average rather than counted as mismatches — absent data is absent
    evidence.
    """

    def __init__(
        self,
        rules: list[FieldRule],
        match_threshold: float = 0.85,
        possible_threshold: float = 0.65,
    ):
        if not rules:
            raise CleaningError("a matcher needs at least one field rule")
        if not 0.0 <= possible_threshold <= match_threshold <= 1.0:
            raise CleaningError(
                "thresholds must satisfy 0 <= possible <= match <= 1"
            )
        self.rules = list(rules)
        self.match_threshold = match_threshold
        self.possible_threshold = possible_threshold

    def score(self, a: Record, b: Record) -> MatchScore:
        total = 0.0
        weight_sum = 0.0
        per_field: dict[str, float] = {}
        for rule in self.rules:
            value_a = _text(a.get(rule.field_a))
            value_b = _text(b.get(rule.right_field))
            if value_a is None or value_b is None:
                continue
            if rule.normalizer is not None:
                value_a = rule.normalizer(value_a)
                value_b = rule.normalizer(value_b)
            similarity = rule.metric(value_a, value_b)
            per_field[rule.field_a] = similarity
            total += rule.weight * similarity
            weight_sum += rule.weight
        score = total / weight_sum if weight_sum else 0.0
        if score >= self.match_threshold:
            decision = MatchDecision.MATCH
        elif score >= self.possible_threshold:
            decision = MatchDecision.POSSIBLE
        else:
            decision = MatchDecision.NONMATCH
        return MatchScore(score, decision, per_field)

    def decide(self, a: Record, b: Record) -> MatchDecision:
        return self.score(a, b).decision


def _text(value) -> str | None:
    if value is None or isinstance(value, Null):
        return None
    text = str(value).strip()
    return text if text else None

"""Degraded reads: serve a registered replica when the source is gone.

The paper's availability story ends at partial results; production
mediators keep one more rung on the ladder — a *replica* of the source
data, maintained offline (see :mod:`repro.admin.replication`), served
when retries and the circuit breaker have given up.  The registry uses
the same containment test as the materialization store, so a replica of
a broader fragment answers narrower queries with residual conditions
re-applied locally.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.algebra.tuples import BindingTuple
from repro.materialize.matching import matches
from repro.query.exprs import compile_predicate
from repro.sources.base import Fragment
from repro.xmldm.values import Record

ReplicaProvider = Callable[[], "Iterable[Record] | None"]


class FallbackRegistry:
    """Fragment -> replica provider, consulted on terminal source failure."""

    def __init__(self) -> None:
        self._entries: list[tuple[Fragment, ReplicaProvider]] = []
        self.hits = 0
        self.misses = 0

    def register(self, fragment: Fragment, provider: ReplicaProvider) -> None:
        """Offer ``provider``'s records as a stand-in for ``fragment``."""
        self._entries.append((fragment, provider))

    def __len__(self) -> int:
        return len(self._entries)

    def has_replica(self, fragment: Fragment) -> bool:
        """True when some registered entry could answer ``fragment``.

        A pure containment probe: does not invoke providers and does not
        move the ``hits``/``misses`` counters, so hedging can test for a
        backup target without disturbing degraded-read accounting.
        """
        for registered, _provider in self._entries:
            if registered.source != fragment.source:
                continue
            answers, _residual = matches(registered, fragment)
            if answers:
                return True
        return False

    def resolve(self, fragment: Fragment) -> list[Record] | None:
        """Records answering ``fragment`` from a replica, or None."""
        for registered, provider in self._entries:
            if registered.source != fragment.source:
                continue
            answers, residual = matches(registered, fragment)
            if not answers:
                continue
            records = provider()
            if records is None:
                continue
            rows = list(records)
            if residual:
                predicates = [compile_predicate(c) for c in residual]
                rows = [
                    record for record in rows
                    if all(p(BindingTuple(record.as_dict())) for p in predicates)
                ]
            self.hits += 1
            return rows
        self.misses += 1
        return None

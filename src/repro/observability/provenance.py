"""Answer provenance: where each piece of a result actually came from.

Nimble's promise is answers assembled from autonomous, partially
available, possibly stale sources — which means "here are your rows"
is only half an answer.  The other half is lineage: which fragment was
served live, which from the fragment cache (exact or by containment),
which from a stale rung of the degraded-read ladder, which from a
materialized view and at what high-water mark, and how far behind its
feeds each piece was in virtual time.

A :class:`Provenance` record carries that lineage per query result:

* a **version vector** — per CDC-enabled source, the last change
  sequence this engine has applied to its local state
  (``engine._cdc_cache_seq``), next to the feed's head sequence, so
  ``feed_lag()`` is the exact number of unapplied changes;
* one :class:`FragmentOrigin` per served fragment — the source (or
  view) name, the origin kind, rows served, and the virtual-time age
  of the data at serve time;
* the ``snapshot_epoch`` (catalog version) the answer was planned
  under, and the ``trace_id`` linking it to the span tree.

Recording is strictly observational: building these records never
advances the virtual clock and never touches the determinism-checked
counters, so results are bit-identical with provenance on or off —
the same contract tracing and the SLO layer honour, enforced by the
hypothesis suite in ``tests/test_provenance.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

#: origin kinds a fragment (or view) serve can carry
ORIGIN_LIVE = "live"                 #: fresh remote fetch
ORIGIN_CACHE = "cache"               #: exact fragment-cache hit
ORIGIN_CONTAINMENT = "containment"   #: broader cached entry, filtered
ORIGIN_STALE_CACHE = "stale_cache"   #: expired cache entry (brownout/degraded)
ORIGIN_STALE_MATERIALIZED = "stale_materialized"  #: stale local view (degraded)
ORIGIN_REPLICA = "replica"           #: registered replica fallback
ORIGIN_HEDGED = "hedged"             #: hedge backup beat the primary
ORIGIN_MATERIALIZED = "materialized"  #: fresh materialized fragment
ORIGIN_VIEW = "view"                 #: materialized mediated view
ORIGIN_SHED = "shed"                 #: brownout shed the optional source
ORIGIN_SKIPPED = "skipped"           #: source failed, SKIP policy applied

ORIGIN_KINDS = (
    ORIGIN_LIVE, ORIGIN_CACHE, ORIGIN_CONTAINMENT, ORIGIN_STALE_CACHE,
    ORIGIN_STALE_MATERIALIZED, ORIGIN_REPLICA, ORIGIN_HEDGED,
    ORIGIN_MATERIALIZED, ORIGIN_VIEW, ORIGIN_SHED, ORIGIN_SKIPPED,
)

#: origins whose rows are known (or suspected) to be behind the source
STALE_ORIGINS = frozenset(
    {ORIGIN_STALE_CACHE, ORIGIN_STALE_MATERIALIZED, ORIGIN_REPLICA}
)


@dataclass(frozen=True)
class FragmentOrigin:
    """Where one served fragment's rows came from."""

    source: str
    kind: str
    rows: int = 0
    #: virtual-time age of the served data (0 for a live fetch)
    staleness_ms: float = 0.0
    #: kind-specific context: view key, high-water marks, probe counts
    detail: str = ""
    #: which shard served it, for scatter-gather answers
    shard: int | None = None

    def describe(self) -> str:
        parts = [f"{self.source}: {self.kind}", f"{self.rows} rows"]
        if self.staleness_ms > 0:
            parts.append(f"{self.staleness_ms:.1f} ms old")
        if self.shard is not None:
            parts.append(f"shard {self.shard}")
        if self.detail:
            parts.append(self.detail)
        return ", ".join(parts)


def origin_counts(origins: list[FragmentOrigin]) -> dict[str, int]:
    """Serve counts per origin kind, e.g. ``{"cache": 3, "live": 1}``."""
    counts: dict[str, int] = {}
    for origin in origins:
        counts[origin.kind] = counts.get(origin.kind, 0) + 1
    return counts


def render_origin_counts(counts: dict[str, int]) -> str:
    """``{"cache": 3, "live": 1}`` as the stable ``cache=3 live=1`` form."""
    return " ".join(f"{kind}={counts[kind]}" for kind in sorted(counts))


@dataclass
class Provenance:
    """The lineage record attached to a query answer."""

    trace_id: str = ""
    #: source -> last CDC sequence this engine has applied locally
    version_vector: dict[str, int] = field(default_factory=dict)
    #: source -> the feed's head sequence at answer time
    feed_heads: dict[str, int] = field(default_factory=dict)
    #: the catalog version epoch the answer was planned under
    snapshot_epoch: Any = None
    origins: list[FragmentOrigin] = field(default_factory=list)
    #: shard coverage of a scatter-gather answer (empty when unsharded)
    shards: list[int] = field(default_factory=list)

    # -- reading -------------------------------------------------------------

    def origin_counts(self) -> dict[str, int]:
        return origin_counts(self.origins)

    def stale_origins(self) -> list[FragmentOrigin]:
        """The origins whose data was behind the source when served."""
        return [o for o in self.origins if o.kind in STALE_ORIGINS]

    def worst_staleness_ms(self) -> float:
        return max((o.staleness_ms for o in self.origins), default=0.0)

    def feed_lag(self) -> dict[str, int]:
        """Per source, how many emitted changes this answer predates."""
        return {
            source: max(0, head - self.version_vector.get(source, 0))
            for source, head in self.feed_heads.items()
        }

    # -- merging (sub-queries, shard gather) ---------------------------------

    def absorb(self, other: "Provenance", shard: int | None = None) -> None:
        """Fold another execution's lineage into this one.

        Version vectors merge pessimistically (the *least* applied
        sequence wins — the answer is only as fresh as its most
        behind contributor); feed heads merge optimistically (the
        furthest head observed).  ``shard`` tags the absorbed origins
        with the shard that served them.
        """
        for source, seq in other.version_vector.items():
            mine = self.version_vector.get(source)
            self.version_vector[source] = (
                seq if mine is None else min(mine, seq)
            )
        for source, seq in other.feed_heads.items():
            self.feed_heads[source] = max(
                self.feed_heads.get(source, 0), seq
            )
        if shard is None:
            self.origins.extend(other.origins)
        else:
            self.origins.extend(
                replace(origin, shard=shard) for origin in other.origins
            )
        self.shards.extend(other.shards)

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form (the ``PROVENANCE_*.json`` artifact shape)."""
        return {
            "trace_id": self.trace_id,
            "version_vector": dict(self.version_vector),
            "feed_heads": dict(self.feed_heads),
            "feed_lag": self.feed_lag(),
            "snapshot_epoch": (
                self.snapshot_epoch
                if isinstance(self.snapshot_epoch, (int, str, float,
                                                    type(None)))
                else str(self.snapshot_epoch)
            ),
            "shards": list(self.shards),
            "origin_counts": self.origin_counts(),
            "origins": [
                {
                    "source": o.source,
                    "kind": o.kind,
                    "rows": o.rows,
                    "staleness_ms": o.staleness_ms,
                    "detail": o.detail,
                    "shard": o.shard,
                }
                for o in self.origins
            ],
        }

    def describe(self) -> str:
        """One compact line per lineage fact."""
        lines = [f"provenance trace={self.trace_id or '-'} "
                 f"epoch={self.snapshot_epoch}"]
        counts = self.origin_counts()
        if counts:
            lines.append(f"  origins: {render_origin_counts(counts)}")
        for source in sorted(self.version_vector):
            head = self.feed_heads.get(source, self.version_vector[source])
            lag = head - self.version_vector[source]
            suffix = f" (lag {lag})" if lag > 0 else ""
            lines.append(
                f"  feed {source}: applied @{self.version_vector[source]}, "
                f"head @{head}{suffix}"
            )
        if self.shards:
            lines.append(
                "  shards: " + ", ".join(str(s) for s in self.shards)
            )
        return "\n".join(lines)


def explain_provenance(
    provenance: Provenance,
    completeness: Any = None,
    breakers: dict[str, dict[str, Any]] | None = None,
    view_lag: dict[str, dict[str, Any]] | None = None,
    now_ms: float = 0.0,
) -> str:
    """Render the causal chain behind an answer's lineage.

    ``breakers`` maps source name to ``{"state", "opened_at_ms",
    "times_opened"}`` (the engine's resilient executor's view);
    ``view_lag`` is :meth:`IncrementalMaterializer.lag` output.  The
    chain names the *reason* for each degraded serve: an open breaker
    explains a stale rung, a lagging feed explains a behind view.
    """
    breakers = breakers or {}
    view_lag = view_lag or {}
    lines = [provenance.describe()]
    why: list[str] = []
    for origin in provenance.origins:
        if origin.kind not in STALE_ORIGINS:
            continue
        line = f"  - {origin.describe()}"
        breaker = breakers.get(origin.source)
        if breaker is not None and breaker.get("state") in ("open",
                                                           "half-open"):
            opened = breaker.get("opened_at_ms")
            since = f" since virtual t={opened:.1f} ms" if opened is not None \
                else ""
            line += (
                f" — because breaker '{origin.source}' is "
                f"{breaker['state'].upper()}{since} "
                f"({breaker.get('times_opened', 0)} trips)"
            )
        why.append(line)
    for source, lag in sorted(provenance.feed_lag().items()):
        if lag <= 0:
            continue
        why.append(
            f"  - feed '{source}' is {lag} changes ahead of this answer "
            f"(applied @{provenance.version_vector.get(source, 0)}, "
            f"head @{provenance.feed_heads.get(source, 0)})"
        )
    for name, entry in sorted(view_lag.items()):
        if entry.get("seq_lag", 0) <= 0:
            continue
        feeds = ", ".join(
            source for source, lag in sorted(provenance.feed_lag().items())
            if lag > 0
        ) or "its feeds"
        why.append(
            f"  - view '{name}' [{entry.get('mode', '?')}] lags feed "
            f"{feeds} by {entry['seq_lag']} seqs "
            f"(stale {entry.get('staleness_ms', 0.0):.1f} ms)"
        )
    if why:
        lines.append("why:")
        lines.extend(why)
    else:
        lines.append("why: every fragment served fresh and in sync")
    if completeness is not None:
        verdict = "complete" if completeness.complete else "INCOMPLETE"
        extras = []
        if completeness.missing_sources:
            extras.append(
                "missing: " + ", ".join(completeness.missing_sources)
            )
        if completeness.stale_sources:
            extras.append("stale: " + ", ".join(completeness.stale_sources))
        if completeness.hedged_sources:
            extras.append("hedged: " + ", ".join(completeness.hedged_sources))
        suffix = f" ({'; '.join(extras)})" if extras else ""
        lines.append(f"completeness: {verdict}{suffix}")
    return "\n".join(lines)


__all__ = [
    "FragmentOrigin",
    "ORIGIN_CACHE",
    "ORIGIN_CONTAINMENT",
    "ORIGIN_HEDGED",
    "ORIGIN_KINDS",
    "ORIGIN_LIVE",
    "ORIGIN_MATERIALIZED",
    "ORIGIN_REPLICA",
    "ORIGIN_SHED",
    "ORIGIN_SKIPPED",
    "ORIGIN_STALE_CACHE",
    "ORIGIN_STALE_MATERIALIZED",
    "ORIGIN_VIEW",
    "Provenance",
    "STALE_ORIGINS",
    "explain_provenance",
    "origin_counts",
    "render_origin_counts",
]

"""The XML-QL dialect: the system's query language (paper, section 2.1).

"XML-QL was the only existing expressive query language for XML when we
started designing our system" — queries here follow the WHERE / CONSTRUCT
shape of the W3C XML-QL note:

    WHERE  <bib><book year=$y>
             <title>$t</title>
             <author>$a</author>
           </book></bib> IN "books",
           $y > 1995
    CONSTRUCT <result><title>$t</title><author>$a</author></result>

A query is parsed (:mod:`parser`), semantically checked (:mod:`binder`)
and translated directly to a physical-algebra plan (:mod:`translate`) —
there is no intermediate logical algebra, exactly as section 3.1
describes.
"""

from repro.query.ast import Query
from repro.query.binder import BoundQuery, bind_query
from repro.query.flwor import parse_flwor, translate_flwor
from repro.query.parser import parse_query
from repro.query.translate import SourceResolver, translate_query

__all__ = [
    "BoundQuery",
    "Query",
    "SourceResolver",
    "bind_query",
    "parse_flwor",
    "parse_query",
    "translate_flwor",
    "translate_query",
]

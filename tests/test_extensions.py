"""Tests for the extension features: wholesale access, full-replay
concordance mode, cross-language agreement, misc engine surfaces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cleaning import (
    CleaningFlow,
    ConcordanceDB,
    FieldRule,
    FlowMode,
    LinkStep,
    MatchStep,
    RecordMatcher,
    jaro_winkler,
)
from repro.cleaning.sortedneighborhood import first_letters_key, reversed_field_key
from repro.core import NimbleEngine
from repro.errors import CapabilityError, SourceUnavailableError
from repro.sources import DirectoryEntry, HierarchicalSource, XMLSource
from repro.sources.base import DataSource
from repro.xmldm import Document
from repro.xmldm.values import Record


class TestFetchAll:
    def test_relational_returns_records(self, registry):
        items = registry.get("crm").fetch_all("customers")
        assert len(items) == 4
        assert isinstance(items[0], Record)
        assert set(items[0].fields) == {"id", "name", "city", "tier"}

    def test_xml_returns_document(self, registry):
        items = registry.get("library").fetch_all("books")
        assert len(items) == 1
        assert isinstance(items[0], Document)

    def test_hierarchical_returns_entries(self, clock):
        source = HierarchicalSource("dir", clock)
        root = DirectoryEntry("org")
        root.add_child("person", uid="u1")
        source.add_tree("people", root, "person")
        items = source.fetch_all("people")
        assert items[0]["uid"] == "u1"
        assert items[0]["path"] == "org/person"

    def test_charges_network(self, registry, clock):
        source = registry.get("crm")
        before = clock.now
        source.fetch_all("customers")
        assert clock.now > before
        assert source.network.rows_transferred >= 4

    def test_unavailable_source_raises(self, clock):
        class Down(XMLSource):
            def available(self):
                return False

        source = Down("down", {"d": "<r/>"}, clock)
        with pytest.raises(SourceUnavailableError):
            source.fetch_all("d")

    def test_unknown_relation(self, registry):
        with pytest.raises(CapabilityError):
            registry.get("library").fetch_all("ghost")

    def test_base_class_declines(self, clock):
        source = DataSource("raw", clock)
        with pytest.raises(NotImplementedError):
            source._fetch_all("x")


class TestFullReplayConcordance:
    def datasets(self):
        return {
            "a": [Record({"id": "1", "name": "john smith"}),
                  Record({"id": "2", "name": "rosa garcia"})],
            "b": [Record({"id": "9", "name": "john smith"}),
                  Record({"id": "8", "name": "zelda fitz"})],
        }

    def flow(self, concordance, record_nonmatches):
        # possible threshold above the ~0.5 scores of the cross pairs,
        # so unrelated names are clean NONMATCHes
        matcher = RecordMatcher([FieldRule("name", metric=jaro_winkler)],
                                match_threshold=0.9, possible_threshold=0.7)
        return CleaningFlow(
            "t",
            [MatchStep(matcher, blocking="naive",
                       record_nonmatches=record_nonmatches), LinkStep()],
            concordance=concordance,
        )

    def test_nonmatches_recorded_when_enabled(self):
        concordance = ConcordanceDB()
        self.flow(concordance, True).run(self.datasets())
        counts = concordance.counts()
        assert counts["nonmatch"] > 0
        assert counts["match"] >= 1

    def test_warm_run_scores_nothing(self):
        concordance = ConcordanceDB()
        flow = self.flow(concordance, True)
        cold = flow.run(self.datasets())
        warm = flow.run(self.datasets())
        assert warm.pairs_compared == 0
        assert warm.pairs_replayed > 0
        assert sorted(map(sorted, warm.matched_pairs)) == sorted(
            map(sorted, cold.matched_pairs)
        )

    def test_default_keeps_concordance_small(self):
        concordance = ConcordanceDB()
        self.flow(concordance, False).run(self.datasets())
        assert concordance.counts()["nonmatch"] == 0


class TestBlockingKeys:
    def test_letters_parameter(self):
        key = first_letters_key("name", letters=2)
        assert key(Record({"name": "abcdef"})) == "ab"

    def test_reversed_key(self):
        key = reversed_field_key("name", letters=3)
        assert key(Record({"name": "abcdef"})) == "fed"

    def test_missing_field_empty_key(self):
        assert first_letters_key("name")(Record({})) == ""


class TestCrossLanguageAgreement:
    """XML-QL and FLWOR compile to the same algebra: answers must agree."""

    @given(st.integers(min_value=0, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_tier_filters_agree(self, threshold):
        # hypothesis can't use fixtures: build a deployment inline
        from .conftest import build_crm_database
        from repro.mediator.catalog import Catalog
        from repro.simtime import SimClock
        from repro.sources.registry import SourceRegistry
        from repro.sources.relational import RelationalSource

        registry = SourceRegistry(SimClock())
        registry.register(RelationalSource("crm", build_crm_database()))
        catalog = Catalog(registry)
        catalog.map_relation("customers", "crm", "customers")
        engine = NimbleEngine(catalog)
        xmlql = engine.query(
            'WHERE <c><name>$n</name><tier>$t</tier></c> IN "customers", '
            f"$t >= {threshold} CONSTRUCT <r>$n</r> ORDER BY $n"
        )
        flwor = engine.flwor_query(
            f'FOR $c IN "customers" WHERE $c/tier >= {threshold} '
            "ORDER BY $c/name RETURN <r>{$c/name}</r>"
        )
        assert [e.text_content() for e in xmlql.elements] == [
            e.text_content() for e in flwor.elements
        ]


class TestEngineSurfaces:
    def test_explain_flwor_plan_text(self, catalog):
        engine = NimbleEngine(catalog)
        result = engine.flwor_query(
            'FOR $c IN "customers" RETURN <r>{$c/name}</r>'
        )
        assert "CallbackScan" in result.stats.plan_text
        assert "Compute($result" in result.stats.plan_text

    def test_materialize_without_manager_raises(self, catalog):
        from repro.errors import MediationError

        engine = NimbleEngine(catalog)
        with pytest.raises(MediationError):
            engine.materialize_query_fragments(
                'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
            )

    def test_materialize_is_idempotent(self, catalog, clock):
        from repro.materialize import MaterializationManager

        engine = NimbleEngine(
            catalog, materializer=MaterializationManager(clock)
        )
        query = 'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>'
        assert engine.materialize_query_fragments(query) == 1
        assert engine.materialize_query_fragments(query) == 0  # already there

    def test_queries_run_counter(self, catalog):
        engine = NimbleEngine(catalog)
        engine.query('WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>')
        engine.flwor_query('FOR $c IN "customers" RETURN <r>{$c/name}</r>')
        assert engine.queries_run == 2

"""The byte-budgeted LRU store of fragment results.

Sits between the execution context and the sources: every successful
remote fragment execution is inserted; later identical executions are
served locally, charging :meth:`CostModel.local_cost` instead of network
latency.  Three mechanisms bound staleness and size:

* **TTL** — each entry carries a :class:`RefreshPolicy` (per-source
  override, engine-wide default) evaluated on the virtual clock;
* **epoch invalidation** — entries remember the catalog version epoch
  they were loaded under and die when it moves (same mechanism as the
  compiled-plan cache);
* **byte budget** — entry sizes are estimated deterministically and the
  least-recently-used entries are evicted once the budget is exceeded.

**Containment serving**: a requested fragment that equals a cached
fragment plus extra pushed conditions (same accesses, conditions
subsumed per :func:`repro.materialize.matching.matches`) is answered by
filtering the cached rows locally with the residual predicates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.algebra.tuples import BindingTuple
from repro.cache.keys import result_key
from repro.materialize.matching import access_key, matches, project_records
from repro.materialize.policy import RefreshPolicy
from repro.observability.tracing import NULL_TRACER, Tracer
from repro.optimizer.costs import CostModel
from repro.query.exprs import compile_predicate
from repro.simtime import SimClock
from repro.sources.base import Fragment
from repro.xmldm.values import Null, Record


def _value_bytes(value: Any) -> int:
    """Deterministic size estimate of one model value (bytes)."""
    if isinstance(value, str):
        return 56 + len(value)
    if isinstance(value, bool):
        return 28
    if isinstance(value, (int, float)):
        return 32
    if isinstance(value, Null):
        return 16
    if isinstance(value, Record):
        return record_bytes(value)
    if isinstance(value, (list, tuple)):
        return 56 + sum(_value_bytes(item) for item in value)
    return 56 + len(str(value))


def record_bytes(record: Record) -> int:
    """Deterministic size estimate of one record (bytes)."""
    return 64 + sum(
        56 + len(name) + _value_bytes(record.get(name))
        for name in record.fields
    )


def estimate_result_bytes(records: list[Record]) -> int:
    """Size estimate of a whole result (entry overhead included)."""
    return 96 + sum(record_bytes(record) for record in records)


@dataclass
class CacheEntry:
    """One cached fragment result with its freshness lineage."""

    key: str
    fragment: Fragment
    parameterized: bool
    records: list[Record]
    loaded_at: float
    epoch: Any
    policy: RefreshPolicy
    size_bytes: int
    hits: int = 0

    def is_fresh(self, now_ms: float) -> bool:
        return self.policy.is_fresh(now_ms - self.loaded_at, False)


@dataclass
class CachedResult:
    """What a lookup returns: the rows and how they were found."""

    records: list[Record]
    containment: bool = False
    residual_conditions: int = 0
    #: the entry had outlived its TTL and was served anyway (brownout)
    stale: bool = False
    #: virtual-time age of the served entry (now - loaded_at); feeds
    #: the provenance layer's per-origin staleness annotation
    age_ms: float = 0.0


class FragmentResultCache:
    """On-demand cache of fragment results under a byte budget.

    ``policies`` maps source names to :class:`RefreshPolicy` overrides;
    everything else uses ``default_policy``.  ``containment=False``
    restricts serving to exact key matches (the ablation knob).
    Serving charges local processing time to the clock via
    ``cost_model.local_cost`` — never network latency.
    """

    def __init__(
        self,
        clock: SimClock,
        cost_model: CostModel | None = None,
        max_bytes: int = 4_000_000,
        default_policy: RefreshPolicy | None = None,
        policies: Mapping[str, RefreshPolicy] | None = None,
        containment: bool = True,
        keep_expired: bool = False,
        scope: str = "",
    ):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.clock = clock
        #: key namespace prefix: shard-local engines run over sources
        #: whose *names* coincide across shards, so each shard's cache
        #: scopes its keys to keep fragment identities disjoint
        self.scope = scope
        self.cost_model = cost_model or CostModel()
        self.max_bytes = max_bytes
        self.default_policy = default_policy or RefreshPolicy.ttl(60_000.0)
        self.policies = dict(policies or {})
        self.containment = containment
        #: keep TTL-expired entries resident (LRU/epoch still evict) so
        #: :meth:`lookup_stale` can serve them as degraded reads; off by
        #: default — expired entries are dropped the moment a lookup
        #: touches them
        self.keep_expired = keep_expired
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        #: access_key -> entry keys, for containment scans (param-less only)
        self._by_access: dict[str, list[str]] = {}
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.containment_hits = 0
        self.evictions = 0
        self.insertions = 0
        self.oversize_rejects = 0
        self.stale_hits = 0
        #: set by the owning engine's ``use_tracer``; lookup outcomes
        #: land as events on the enclosing fetch span
        self.tracer: Tracer = NULL_TRACER

    # -- keys ----------------------------------------------------------------

    def _key(self, fragment: Fragment,
             params: Mapping[str, Any] | None = None) -> str:
        key = result_key(fragment, params)
        return f"{self.scope}::{key}" if self.scope else key

    def _akey(self, fragment: Fragment) -> str:
        key = access_key(fragment)
        return f"{self.scope}::{key}" if self.scope else key

    # -- serving -------------------------------------------------------------

    def lookup(
        self,
        fragment: Fragment,
        params: Mapping[str, Any] | None,
        epoch: Any,
    ) -> CachedResult | None:
        """Serve ``fragment`` from the cache, or None on miss.

        Exact key first; then, for parameter-free fragments, a
        containment scan over entries with the same accesses.
        """
        key = self._key(fragment, params)
        entry = self._entries.get(key)
        if entry is not None:
            if not self._live(entry, epoch):
                if entry.epoch != epoch or not self.keep_expired:
                    self._drop(key)
            else:
                self._entries.move_to_end(key)
                entry.hits += 1
                self.hits += 1
                self._charge_local(len(entry.records))
                self.tracer.event("cache_hit", source=fragment.source,
                                  rows=len(entry.records))
                return CachedResult(
                    list(entry.records),
                    age_ms=self.clock.now - entry.loaded_at,
                )
        if self.containment and not params and not fragment.input_vars:
            served = self._serve_by_containment(fragment, epoch)
            if served is not None:
                return served
        self.misses += 1
        self.tracer.event("cache_miss", source=fragment.source)
        return None

    def lookup_stale(
        self,
        fragment: Fragment,
        params: Mapping[str, Any] | None,
        epoch: Any,
    ) -> CachedResult | None:
        """Serve an *expired* exact entry (brownout serve-stale rung).

        The normal :meth:`lookup` runs first and has already counted its
        miss; this second chance ignores the TTL — only the catalog
        epoch still invalidates (a schema change makes old rows wrong,
        not merely old).  Hits count in ``stale_hits``, never in
        ``hits``/``misses``, so cache-efficiency accounting is
        undisturbed by brownout serving.
        """
        key = self._key(fragment, params)
        entry = self._entries.get(key)
        if entry is None or entry.epoch != epoch:
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.stale_hits += 1
        self._charge_local(len(entry.records))
        self.tracer.event("cache_stale_serve", source=fragment.source,
                          rows=len(entry.records))
        return CachedResult(list(entry.records),
                            stale=not entry.is_fresh(self.clock.now),
                            age_ms=self.clock.now - entry.loaded_at)

    def _serve_by_containment(
        self, fragment: Fragment, epoch: Any
    ) -> CachedResult | None:
        for key in list(self._by_access.get(self._akey(fragment), ())):
            entry = self._entries.get(key)
            if entry is None:
                continue
            if not self._live(entry, epoch):
                if entry.epoch != epoch or not self.keep_expired:
                    self._drop(key)
                continue
            answers, residual = matches(entry.fragment, fragment)
            if not answers:
                continue
            records = list(entry.records)
            if residual:
                predicates = [compile_predicate(c) for c in residual]
                records = [
                    record
                    for record in records
                    if all(p(BindingTuple(record.as_dict())) for p in predicates)
                ]
            # a broader entry answering a projected fragment must look
            # exactly like a source-side projection
            records = project_records(records, fragment)
            self._entries.move_to_end(key)
            entry.hits += 1
            self.containment_hits += 1
            self._charge_local(len(records))
            self.tracer.event("containment_serve", source=fragment.source,
                              rows=len(records), residual=len(residual))
            return CachedResult(records, containment=True,
                                residual_conditions=len(residual),
                                age_ms=self.clock.now - entry.loaded_at)
        return None

    def resident_rows(self, fragment: Fragment, epoch: Any) -> int | None:
        """Row count of a fresh exact entry, for cache-aware planning.

        Read-only: does not touch LRU order or hit counters, so cost
        estimation never perturbs eviction behaviour.
        """
        entry = self._entries.get(self._key(fragment))
        if entry is None or not self._live(entry, epoch):
            return None
        return len(entry.records)

    # -- loading -------------------------------------------------------------

    def insert(
        self,
        fragment: Fragment,
        params: Mapping[str, Any] | None,
        records: list[Record],
        epoch: Any,
    ) -> int:
        """Store one execution's result; returns how many entries were
        evicted to make room (0 when the result itself was too large)."""
        size = estimate_result_bytes(records)
        if size > self.max_bytes:
            self.oversize_rejects += 1
            return 0
        key = self._key(fragment, params)
        if key in self._entries:
            self._drop(key)
        entry = CacheEntry(
            key=key,
            fragment=fragment,
            parameterized=bool(params) or bool(fragment.input_vars),
            records=list(records),
            loaded_at=self.clock.now,
            epoch=epoch,
            policy=self.policies.get(fragment.source, self.default_policy),
            size_bytes=size,
        )
        self._entries[key] = entry
        self.current_bytes += size
        self.insertions += 1
        if not entry.parameterized:
            self._by_access.setdefault(self._akey(fragment), []).append(key)
        evicted = 0
        while self.current_bytes > self.max_bytes:
            oldest_key = next(iter(self._entries))
            self._drop(oldest_key)
            evicted += 1
        self.evictions += evicted
        return evicted

    # -- invalidation --------------------------------------------------------

    def invalidate_source(self, source_name: str) -> int:
        """Drop every entry over one source (data changed upstream)."""
        doomed = [
            key for key, entry in self._entries.items()
            if entry.fragment.source == source_name
        ]
        for key in doomed:
            self._drop(key)
        return len(doomed)

    def apply_change(self, change, key_field: str | None,
                     patch: bool = True) -> tuple[int, int, int]:
        """Scoped invalidation: touch only entries the change can reach.

        Replaces the old epoch-bump story (every write killed every
        entry) with a per-entry decision:

        * a different relation, or pushed conditions that provably
          exclude the changed key (:func:`repro.cdc.scope.key_affected`)
          — **retained**, untouched;
        * a patchable shape (:func:`repro.cdc.scope.fragment_patch`) —
          records **patched** in place, sizes and ``loaded_at``
          refreshed;
        * everything else (resets, parameterized entries, flip-ins) —
          **evicted**.

        Returns ``(patched, evicted, retained)`` entry counts.
        """
        from repro.cdc.scope import (
            change_key_var,
            fragment_patch,
            key_affected,
            patch_records,
        )

        patched = evicted = retained = 0
        for key in list(self._entries):
            entry = self._entries.get(key)
            if entry is None or entry.fragment.source != change.source:
                continue
            fragment = entry.fragment
            if all(
                access.relation != change.relation
                for access in fragment.accesses
            ):
                retained += 1
                continue
            if change.op != "reset" and key_field is not None:
                key_var = change_key_var(fragment, change.relation, key_field)
                if key_var is not None and not key_affected(
                    fragment.conditions, key_var, change.key
                ):
                    retained += 1
                    self.tracer.event("cache_change_excluded",
                                      source=change.source, key=change.key)
                    continue
            applied = None
            if patch and change.op != "reset" and key_field is not None:
                plan = fragment_patch(fragment, change, key_field)
                if plan is not None:
                    applied = patch_records(entry.records, plan)
            if applied is not None:
                size = estimate_result_bytes(applied)
                self.current_bytes += size - entry.size_bytes
                entry.records = applied
                entry.size_bytes = size
                entry.loaded_at = self.clock.now
                patched += 1
                self.tracer.event("cache_change_patched",
                                  source=change.source, key=change.key,
                                  rows=len(applied))
                continue
            self._drop(key)
            evicted += 1
            self.tracer.event("cache_change_evicted", source=change.source,
                              key=change.key)
        while self.current_bytes > self.max_bytes and self._entries:
            oldest_key = next(iter(self._entries))
            self._drop(oldest_key)
            self.evictions += 1
        return patched, evicted, retained

    def clear(self) -> None:
        self._entries.clear()
        self._by_access.clear()
        self.current_bytes = 0

    # -- internals -----------------------------------------------------------

    def _live(self, entry: CacheEntry, epoch: Any) -> bool:
        return entry.epoch == epoch and entry.is_fresh(self.clock.now)

    def _drop(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self.current_bytes -= entry.size_bytes
        if not entry.parameterized:
            siblings = self._by_access.get(self._akey(entry.fragment))
            if siblings is not None:
                try:
                    siblings.remove(key)
                except ValueError:
                    pass
                if not siblings:
                    del self._by_access[self._akey(entry.fragment)]

    def _charge_local(self, rows: int) -> None:
        self.clock.advance(self.cost_model.local_cost(rows))

    # -- reporting -----------------------------------------------------------

    def entries_by_source(self) -> dict[str, int]:
        """Live entry counts per source name (monitoring)."""
        counts: dict[str, int] = {}
        for entry in self._entries.values():
            counts[entry.fragment.source] = (
                counts.get(entry.fragment.source, 0) + 1
            )
        return counts

    def summary(self) -> dict[str, Any]:
        lookups = self.hits + self.containment_hits + self.misses
        return {
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "budget_bytes": self.max_bytes,
            "hits": self.hits,
            "containment_hits": self.containment_hits,
            "misses": self.misses,
            "hit_rate": (
                (self.hits + self.containment_hits) / lookups if lookups else 0.0
            ),
            "evictions": self.evictions,
            "insertions": self.insertions,
            "oversize_rejects": self.oversize_rejects,
            "stale_hits": self.stale_hits,
        }

    def __len__(self) -> int:
        return len(self._entries)

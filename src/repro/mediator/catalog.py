"""The metadata server: names, mappings, views, statistics.

"The metadata server contains the mappings that allow XML-QL to be split
apart and translated appropriately; mappings are set via the management
tools" (section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # runtime import would cycle through repro.sources
    from repro.cdc.changelog import ChangeLog
    from repro.sources.sharding import ShardMap

from repro.errors import MediationError
from repro.mediator.mapping import RelationMapping
from repro.mediator.schema import MediatedSchema, ViewDef
from repro.sources.base import DataSource
from repro.sources.registry import SourceRegistry


@dataclass(frozen=True)
class DocumentTarget:
    """A name resolving to a raw document/collection on a source."""

    source_name: str
    relation: str


Resolution = Union[RelationMapping, ViewDef, DocumentTarget]


class Catalog:
    """Name resolution plus the statistics the cost model consumes.

    A query's ``IN "name"`` resolves, in order, to: a view in one of the
    registered mediated schemas (later schemas shadow earlier — the
    hierarchy), a direct relation mapping, or a ``source.relation``
    document target.
    """

    def __init__(self, registry: SourceRegistry):
        self.registry = registry
        self.mappings: dict[str, RelationMapping] = {}
        self.schemas: list[MediatedSchema] = []
        #: source name -> ShardMap (key -> range -> shard); consulted by
        #: the scatter-gather router for pruning and key routing
        self.shard_maps: dict[str, "ShardMap"] = {}
        self._epoch = 0

    @property
    def version(self) -> tuple[int, int, int, int]:
        """Catalog version epoch for compiled-plan cache invalidation.

        Moves whenever anything name resolution depends on changes: a
        source registration, a relation mapping, a schema addition, or a
        view defined on an already-added schema (the view count term
        catches late ``define_view`` calls the catalog never sees).

        *Data* changes never move the epoch.  An epoch bump evicts every
        compiled plan and cached fragment — the right hammer for schema
        drift, a disastrous one for a row update.  Row-level changes
        flow through the sources' change feeds (:meth:`changefeeds`) and
        are applied with per-fragment scope by the engine's
        ``sync_changes``: retained where the change provably misses,
        patched in place where reconstructable, evicted only otherwise.
        """
        return (
            self._epoch,
            self.registry.version,
            len(self.mappings),
            sum(len(schema.views) for schema in self.schemas),
        )

    def changefeeds(self) -> dict[str, "ChangeLog"]:
        """Every CDC-enabled source's change feed, keyed by source name."""
        return {
            source.name: source.changelog
            for source in self.registry
            if source.changelog is not None
        }

    # -- registration -------------------------------------------------------

    def add_mapping(self, mapping: RelationMapping) -> RelationMapping:
        if mapping.source_name not in self.registry:
            raise MediationError(
                f"mapping {mapping.mediated_name!r} targets unknown source "
                f"{mapping.source_name!r}"
            )
        if mapping.mediated_name in self.mappings:
            raise MediationError(
                f"mediated relation {mapping.mediated_name!r} already mapped"
            )
        self.mappings[mapping.mediated_name] = mapping
        self._epoch += 1
        return mapping

    def map_relation(
        self,
        mediated_name: str,
        source_name: str,
        source_relation: str,
        field_map: dict[str, str] | None = None,
    ) -> RelationMapping:
        return self.add_mapping(
            RelationMapping(mediated_name, source_name, source_relation,
                            dict(field_map or {}))
        )

    def add_schema(self, schema: MediatedSchema) -> MediatedSchema:
        self.schemas.append(schema)
        self._check_cycles()
        self._epoch += 1
        return schema

    def register_shard_map(self, shard_map: "ShardMap") -> "ShardMap":
        """Declare how one source's data is key-range partitioned.

        Routing metadata changes which physical shards answer a query,
        so registration bumps the epoch like any other catalog change —
        compiled-plan cache entries carrying stale routing are dropped.
        """
        if shard_map.source not in self.registry:
            raise MediationError(
                f"shard map targets unknown source {shard_map.source!r}"
            )
        self.shard_maps[shard_map.source] = shard_map
        self._epoch += 1
        return shard_map

    # -- resolution --------------------------------------------------------------

    def resolve(self, name: str) -> Resolution:
        for schema in reversed(self.schemas):
            if name in schema.views:
                return schema.views[name]
        if name in self.mappings:
            return self.mappings[name]
        if "." in name:
            source_name, _, relation = name.partition(".")
            if source_name in self.registry:
                return DocumentTarget(source_name, relation)
        raise MediationError(f"unknown mediated name {name!r}")

    def source_for(self, name: str) -> DataSource:
        resolved = self.resolve(name)
        if isinstance(resolved, RelationMapping):
            return self.registry.get(resolved.source_name)
        if isinstance(resolved, DocumentTarget):
            return self.registry.get(resolved.source_name)
        raise MediationError(f"{name!r} is a view, not a source-backed relation")

    def is_view(self, name: str) -> bool:
        try:
            return isinstance(self.resolve(name), ViewDef)
        except MediationError:
            return False

    def known_names(self) -> list[str]:
        names = set(self.mappings)
        for schema in self.schemas:
            names.update(schema.views)
        return sorted(names)

    # -- statistics -----------------------------------------------------------------

    def cardinality(self, name: str) -> int:
        """Estimated cardinality of a mediated relation (views: crude sum)."""
        resolved = self.resolve(name)
        if isinstance(resolved, RelationMapping):
            return self.registry.get(resolved.source_name).cardinality(
                resolved.source_relation
            )
        if isinstance(resolved, DocumentTarget):
            return self.registry.get(resolved.source_name).cardinality(
                resolved.relation
            )
        total = 0
        for referenced in resolved.referenced_names():
            try:
                total += self.cardinality(referenced)
            except MediationError:
                total += 100  # unknowable reference: a guess, as the paper laments
        return max(total, 1)

    # -- hygiene ----------------------------------------------------------------------

    def _check_cycles(self) -> None:
        """Reject view definitions that reference themselves (even via others)."""
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                raise MediationError(f"cyclic view definition through {name!r}")
            try:
                resolved = self.resolve(name)
            except MediationError:
                return  # dangling names surface at query time
            if not isinstance(resolved, ViewDef):
                done.add(name)
                return
            visiting.add(name)
            for referenced in resolved.referenced_names():
                visit(referenced)
            visiting.discard(name)
            done.add(name)

        for schema in self.schemas:
            for view_name in schema.views:
                visit(view_name)

"""Shared fixtures: a small federated deployment used across tests."""

import os

import pytest

try:
    from hypothesis import HealthCheck, settings as _hypothesis_settings

    _hypothesis_settings.register_profile("default", max_examples=100)
    # CI's fault-matrix job runs the property suites with a tighter
    # example budget and no deadline (virtual-clock tests do a lot of
    # work per example); select with HYPOTHESIS_PROFILE=ci
    _hypothesis_settings.register_profile(
        "ci",
        max_examples=25,
        deadline=None,
        suppress_health_check=(HealthCheck.too_slow,),
    )
    _hypothesis_settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE", "default")
    )
except ImportError:  # hypothesis is optional; property tests skip themselves
    pass

from repro.mediator.catalog import Catalog
from repro.simtime import SimClock
from repro.sources.base import NetworkModel
from repro.sources.registry import SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sources.webservice import WebServiceSource
from repro.sources.xmlfile import XMLSource
from repro.sql.database import Database
from repro.xmldm.schema import RecordType

BOOKS_XML = (
    '<bib>'
    '<book year="1994"><title>TCP Illustrated</title><author>Stevens</author>'
    "<price>65.95</price></book>"
    '<book year="2000"><title>Data on the Web</title><author>Abiteboul</author>'
    "<author>Buneman</author><price>39.95</price></book>"
    '<book year="1999"><title>XML Handbook</title><author>Goldfarb</author>'
    "<price>49.99</price></book>"
    "</bib>"
)


def build_crm_database() -> Database:
    db = Database("crm")
    db.execute_script(
        """
        CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT, city TEXT,
                                tier INTEGER);
        CREATE TABLE orders (oid INTEGER PRIMARY KEY, cust_id INTEGER,
                             total REAL, status TEXT);
        CREATE INDEX idx_city ON customers (city);
        INSERT INTO customers VALUES
          (1,'Ann','Seattle',1),(2,'Bob','Portland',2),
          (3,'Cam','Seattle',1),(4,'Dee','Boise',3);
        INSERT INTO orders VALUES
          (10,1,99.5,'open'),(11,1,15.0,'closed'),(12,2,42.0,'open'),
          (13,3,7.25,'open');
        """
    )
    return db


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def registry(clock):
    registry = SourceRegistry(clock)
    registry.register(
        RelationalSource(
            "crm",
            build_crm_database(),
            network=NetworkModel(latency_ms=40.0, per_row_ms=0.5),
        )
    )
    registry.register(
        XMLSource(
            "library",
            {"books": BOOKS_XML},
            network=NetworkModel(latency_ms=25.0, per_row_ms=0.2),
        )
    )
    scores = WebServiceSource(
        "scores", network=NetworkModel(latency_ms=60.0, per_row_ms=0.1)
    )
    scores.add_endpoint(
        "credit",
        ["name"],
        RecordType.of("credit", name="string", score="number"),
        lambda inputs: [{"score": 500 + len(str(inputs["name"])) * 10}],
        estimated_rows=1,
    )
    registry.register(scores)
    return registry


@pytest.fixture
def catalog(registry):
    catalog = Catalog(registry)
    catalog.map_relation("customers", "crm", "customers")
    catalog.map_relation("orders", "crm", "orders")
    catalog.map_relation("credit_scores", "scores", "credit")
    return catalog

"""Greedy benefit/cost view selection under a storage budget.

The paper poses this as the open research problem of its architecture:
"there is a need for algorithms that decide which data (and over which
sources) need to be materialized", complicated by (1) source autonomy
and overlap, (2) drifting query load, (3) bad remote cost estimates.
The algorithm here is the classical greedy knapsack over observed
workload profiles — benefit per stored row — evaluated in benchmark E2
against an oracle and against no caching, with the cost-estimate noise
knob of :class:`repro.optimizer.costs.CostModel` exposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.materialize.statistics import FragmentProfile
from repro.optimizer.costs import CostModel


@dataclass
class Candidate:
    """One candidate view with its estimated economics."""

    profile: FragmentProfile
    benefit_ms: float  # saved virtual time per window if materialized
    size_rows: float

    @property
    def density(self) -> float:
        """Benefit per stored row — the greedy ranking key."""
        return self.benefit_ms / max(self.size_rows, 1.0)


@dataclass
class SelectionResult:
    """The selector's decision."""

    chosen: list[Candidate] = field(default_factory=list)
    rejected: list[Candidate] = field(default_factory=list)
    budget_rows: int = 0

    @property
    def chosen_keys(self) -> set[str]:
        return {candidate.profile.key for candidate in self.chosen}

    @property
    def used_rows(self) -> float:
        return sum(candidate.size_rows for candidate in self.chosen)


def greedy_select(
    profiles: list[FragmentProfile],
    budget_rows: int,
    cost_model: CostModel | None = None,
    min_uses: int = 2,
) -> SelectionResult:
    """Pick fragments to materialize.

    Benefit of materializing a fragment = (observed uses in the window)
    x (estimated remote cost - local cost).  The cost model's noise
    perturbs the remote-cost estimate, modelling the paper's "no good
    cost estimates" complaint; observed mean cost anchors the estimate
    when available, so noise matters most for cold candidates.
    """
    cost_model = cost_model or CostModel()
    candidates: list[Candidate] = []
    for profile in profiles:
        if profile.uses < min_uses:
            continue
        if profile.fragment.input_vars:
            continue  # parameterized fragments cannot be materialized
        rows = profile.mean_rows
        remote = cost_model._perturb(profile.mean_cost_ms, profile.fragment)
        local = cost_model.local_cost(rows)
        benefit = profile.uses * max(remote - local, 0.0)
        if benefit <= 0:
            continue
        candidates.append(Candidate(profile, benefit, rows))
    candidates.sort(key=lambda c: c.density, reverse=True)
    result = SelectionResult(budget_rows=budget_rows)
    used = 0.0
    for candidate in candidates:
        if used + candidate.size_rows <= budget_rows:
            result.chosen.append(candidate)
            used += candidate.size_rows
        else:
            result.rejected.append(candidate)
    return result

"""The physical algebra: executable operators over binding tuples.

Following section 3.1 of the paper, this is deliberately a *physical*
algebra — "a set of physical operators that are implemented by the query
processor" — not a logical one: XML-QL queries are translated to an
internal representation and "from there directly to query execution plans
in the physical algebra".

Operators are Python iterators over :class:`BindingTuple` (variable ->
model value maps).  The operator set covers both relational shapes
(scan/select/project/join/group) and the XML-specific features the
paper's conclusion lists: document order (Sort over document positions),
tree-pattern navigation (:class:`PatternMatch`, :class:`Navigate`),
element construction with grouping (:class:`Construct`) and recursion
(:class:`FixPoint`).
"""

from repro.algebra.construct import (
    Construct,
    ConstructTemplate,
    TemplateText,
    TemplateVar,
    build_elements,
)
from repro.algebra.joins import (
    BatchedDependentJoin,
    DependentJoin,
    HashJoin,
    NestedLoopJoin,
)
from repro.algebra.operators import (
    Compute,
    Distinct,
    Limit,
    Operator,
    Project,
    Select,
    Sort,
    TopK,
    Union,
    fuse_sort_limit,
)
from repro.algebra.vector import (
    MISSING,
    BatchCursor,
    ColumnPredicate,
    ColumnStats,
    ColumnStatsRepository,
    ColumnVector,
    RecordBatch,
    TableStats,
    batches_from_rows,
    from_tuples,
    shred_records,
)
from repro.algebra.merge import (
    PartialGroups,
    dedup_rows,
    merge_sorted,
    sort_rows,
    topk_rows,
)
from repro.algebra.grouping import Aggregate, AggregateSpec, GroupBy
from repro.algebra.pattern import AttributePattern, TreePattern
from repro.algebra.navigate import Navigate, PatternMatch
from repro.algebra.plan import Plan
from repro.algebra.recursion import FixPoint
from repro.algebra.scans import BindingsSource, CallbackScan, CollectionScan
from repro.algebra.tuples import BindingTuple, EMPTY_TUPLE

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "AttributePattern",
    "BatchCursor",
    "BatchedDependentJoin",
    "BindingTuple",
    "BindingsSource",
    "CallbackScan",
    "CollectionScan",
    "ColumnPredicate",
    "ColumnStats",
    "ColumnStatsRepository",
    "ColumnVector",
    "Compute",
    "Construct",
    "ConstructTemplate",
    "DependentJoin",
    "Distinct",
    "EMPTY_TUPLE",
    "FixPoint",
    "GroupBy",
    "HashJoin",
    "Limit",
    "MISSING",
    "Navigate",
    "NestedLoopJoin",
    "Operator",
    "PartialGroups",
    "PatternMatch",
    "Plan",
    "Project",
    "RecordBatch",
    "Select",
    "Sort",
    "TableStats",
    "TemplateText",
    "TemplateVar",
    "TopK",
    "TreePattern",
    "Union",
    "batches_from_rows",
    "build_elements",
    "dedup_rows",
    "from_tuples",
    "fuse_sort_limit",
    "merge_sorted",
    "shred_records",
    "sort_rows",
    "topk_rows",
]
